//! Persistent columnar segment store.
//!
//! Fact partitions are written to disk as fixed-row-count **segments**: each
//! segment holds one compressed chunk per column (run-length encoding for
//! sorted or low-cardinality columns, dictionary encoding for strings, raw
//! typed vectors as fallback — smallest encoding wins, chosen per column per
//! segment). A footer carries a per-segment *zone map* — the exact
//! [`ColumnStats`] (min/max/distinct/null-count) of every column, collected
//! by the same machinery the warehouse catalog uses — so scans can skip
//! whole segments whose value ranges provably cannot satisfy a predicate,
//! before a single byte of the body is decoded.
//!
//! File layout (format v2; all integers little-endian):
//!
//! ```text
//! "SKSEG2\0\0"                                  header magic
//! u64 ncols; per column: u16 name_len, name, u8 dtype
//! u32 header_crc                                 CRC32C of all bytes above
//! segment bodies, back to back
//! footer: u64 total_rows, u64 nsegs,
//!         per segment: u64 offset, u64 byte_len, u64 rows,
//!                      per column: opt min, opt max, u64 distinct, u64 nulls
//! u32 footer_crc                                 CRC32C of the footer bytes
//! u64 footer_len                                 (bytes, footer only)
//! "SKSEGEND"                                     tail magic
//! ```
//!
//! Each segment body is one *framed chunk* per column: `u64` chunk length,
//! `u32` CRC32C of the chunk bytes, then the chunk (`u8` encoding tag, `u8`
//! has-nulls flag + bit-packed null bitmap, payload). Every chunk's CRC is
//! verified *before* its bytes are decoded, so a flipped bit or a short
//! read surfaces as a typed [`SkallaError::SegmentCorrupt`] — never a panic
//! or a silently wrong column. NULL rows keep their in-memory default slots
//! (`0`/`0.0`/`""`/`false`) in the payload so decode reproduces the
//! in-memory [`Column`] bit for bit.
//!
//! **Atomic publication:** the writer streams to `<path>.tmp` and
//! [`SegmentWriter::finish`] fsyncs, renames over the final path, and
//! fsyncs the parent directory — a crash mid-generation can leave a stale
//! `.tmp` behind but never a torn file at the published name.
//!
//! Reads go through positioned I/O (`pread`): a [`SegmentFile`] is cheap to
//! open (header + footer only, both CRC-verified) and can be shared across
//! site threads behind an `Arc`; [`SegmentFile::read_segment`] materializes
//! exactly one segment's rows as a [`Table`], which is the unit of
//! out-of-core scanning. [`SegmentFile::verify`] checks every chunk CRC
//! without materializing anything — the scrub path.
//!
//! Deterministic disk-fault injection (bit-flips, torn writes, short
//! reads, stale footers) hooks into the write and read paths here; see
//! [`crate::fault`].

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::os::unix::fs::FileExt as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use skalla_expr::Interval;
use skalla_types::{cmp_int_float, DataType, Result, Schema, SkallaError, Value};

use crate::column::Column;
use crate::crc::crc32c;
use crate::fault::disk_faults_for;
use crate::stats::ColumnStats;
use crate::table::Table;

/// Default rows per segment: small enough that a handful of segments cover a
/// TPC-R partition (so pruning has granularity), large enough that the
/// compiled 1024-row batch kernels amortize decode.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

const HEADER_MAGIC: &[u8; 8] = b"SKSEG2\0\0";
const TAIL_MAGIC: &[u8; 8] = b"SKSEGEND";

/// Tail frame: u32 footer CRC + u64 footer length + 8-byte magic.
const TAIL_LEN: u64 = 4 + 8 + 8;

const ENC_RAW: u8 = 0;
const ENC_RLE: u8 = 1;
const ENC_DICT: u8 = 2;

fn io_err(op: &str, path: &Path, e: std::io::Error) -> SkallaError {
    SkallaError::exec(format!("segment {op} {}: {e}", path.display()))
}

/// A read-path I/O failure: the file is unreadable or shorter than its own
/// metadata claims — both are integrity failures, typed as such so the
/// coordinator never wastes retries on them.
fn read_err(path: &Path, e: std::io::Error) -> SkallaError {
    SkallaError::corrupt(format!("segment read {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// Little-endian byte helpers.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked cursor over a byte buffer.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| SkallaError::corrupt("segment file truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn get_i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_len(&mut self, what: &str) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .ok()
            .filter(|&n| n <= self.buf.len())
            .ok_or_else(|| SkallaError::corrupt(format!("segment {what} count {v} out of range")))
    }
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i >> 3] |= 1 << (i & 7);
        }
    }
    out
}

fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n)
        .map(|i| bytes[i >> 3] & (1 << (i & 7)) != 0)
        .collect()
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int64),
        1 => Ok(DataType::Float64),
        2 => Ok(DataType::Utf8),
        3 => Ok(DataType::Bool),
        t => Err(SkallaError::corrupt(format!(
            "unknown segment dtype tag {t}"
        ))),
    }
}

fn put_opt_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => out.push(0),
        Some(Value::Int(i)) => {
            out.push(1);
            put_i64(out, *i);
        }
        Some(Value::Float(f)) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Some(Value::Str(s)) => {
            out.push(3);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        Some(Value::Bool(b)) => {
            out.push(4);
            out.push(u8::from(*b));
        }
        // Null never appears as a min/max (stats skip NULLs).
        Some(Value::Null) => out.push(0),
    }
}

fn get_opt_value(r: &mut ByteReader) -> Result<Option<Value>> {
    Ok(match r.get_u8()? {
        0 => None,
        1 => Some(Value::Int(r.get_i64()?)),
        2 => Some(Value::Float(f64::from_bits(r.get_u64()?))),
        3 => {
            let n = r.get_u32()? as usize;
            let bytes = r.take(n)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| SkallaError::corrupt("segment zone map holds invalid utf8"))?;
            Some(Value::str(s))
        }
        4 => Some(Value::Bool(r.get_u8()? != 0)),
        t => return Err(SkallaError::corrupt(format!("unknown zone value tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Column chunk encode/decode.

/// Number of runs of equal adjacent elements under `eq`.
fn run_count<T>(vs: &[T], eq: impl Fn(&T, &T) -> bool) -> usize {
    let mut runs = 0;
    let mut i = 0;
    while i < vs.len() {
        let mut j = i + 1;
        while j < vs.len() && eq(&vs[i], &vs[j]) {
            j += 1;
        }
        runs += 1;
        i = j;
    }
    runs
}

fn for_each_run<T>(vs: &[T], eq: impl Fn(&T, &T) -> bool, mut f: impl FnMut(u64, &T)) {
    let mut i = 0;
    while i < vs.len() {
        let mut j = i + 1;
        while j < vs.len() && eq(&vs[i], &vs[j]) {
            j += 1;
        }
        f((j - i) as u64, &vs[i]);
        i = j;
    }
}

fn encode_nulls(out: &mut Vec<u8>, col: &Column) {
    match col.null_mask() {
        None => out.push(0),
        Some(mask) => {
            out.push(1);
            out.extend_from_slice(&pack_bits(mask));
        }
    }
}

/// Append one column chunk (encoding tag, null bitmap, payload) to `out`.
fn encode_column(col: &Column, out: &mut Vec<u8>) {
    let rows = col.len();
    if let Some(vs) = col.raw_i64s() {
        let runs = run_count(vs, |a, b| a == b);
        if 8 + 16 * runs < 8 * rows {
            out.push(ENC_RLE);
            encode_nulls(out, col);
            put_u64(out, runs as u64);
            for_each_run(
                vs,
                |a, b| a == b,
                |count, v| {
                    put_u64(out, count);
                    put_i64(out, *v);
                },
            );
        } else {
            out.push(ENC_RAW);
            encode_nulls(out, col);
            for &v in vs {
                put_i64(out, v);
            }
        }
    } else if let Some(vs) = col.raw_f64s() {
        // Runs compare by bit pattern so -0.0/0.0 and NaN payloads round-trip
        // exactly.
        let beq = |a: &f64, b: &f64| a.to_bits() == b.to_bits();
        let runs = run_count(vs, beq);
        if 8 + 16 * runs < 8 * rows {
            out.push(ENC_RLE);
            encode_nulls(out, col);
            put_u64(out, runs as u64);
            for_each_run(vs, beq, |count, v| {
                put_u64(out, count);
                put_u64(out, v.to_bits());
            });
        } else {
            out.push(ENC_RAW);
            encode_nulls(out, col);
            for &v in vs {
                put_u64(out, v.to_bits());
            }
        }
    } else if let Some(vs) = col.raw_strs() {
        // Dictionary: unique strings in first-seen order, then per-row codes
        // (themselves RLE'd when that is smaller).
        let mut codes: Vec<u32> = Vec::with_capacity(rows);
        let mut index: HashMap<&str, u32> = HashMap::new();
        let mut entries: Vec<&Arc<str>> = Vec::new();
        for s in vs {
            let next = entries.len() as u32;
            let code = *index.entry(&**s).or_insert_with(|| {
                entries.push(s);
                next
            });
            codes.push(code);
        }
        let raw_size: usize = vs.iter().map(|s| 4 + s.len()).sum();
        let entries_size: usize = 4 + entries.iter().map(|s| 4 + s.len()).sum::<usize>();
        let code_runs = run_count(&codes, |a, b| a == b);
        let codes_rle = 8 + 12 * code_runs;
        let codes_raw = 4 * rows;
        let dict_size = entries_size + 1 + codes_raw.min(codes_rle);
        if dict_size < raw_size {
            out.push(ENC_DICT);
            encode_nulls(out, col);
            put_u32(out, entries.len() as u32);
            for s in &entries {
                put_u32(out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
            if codes_rle < codes_raw {
                out.push(ENC_RLE);
                put_u64(out, code_runs as u64);
                for_each_run(
                    &codes,
                    |a, b| a == b,
                    |count, c| {
                        put_u64(out, count);
                        put_u32(out, *c);
                    },
                );
            } else {
                out.push(ENC_RAW);
                for &c in &codes {
                    put_u32(out, c);
                }
            }
        } else {
            out.push(ENC_RAW);
            encode_nulls(out, col);
            for s in vs {
                put_u32(out, s.len() as u32);
                out.extend_from_slice(s.as_bytes());
            }
        }
    } else {
        let vs = col.raw_bools().expect("exhaustive column types");
        let runs = run_count(vs, |a, b| a == b);
        if 8 + 9 * runs < rows.div_ceil(8) {
            out.push(ENC_RLE);
            encode_nulls(out, col);
            put_u64(out, runs as u64);
            for_each_run(
                vs,
                |a, b| a == b,
                |count, v| {
                    put_u64(out, count);
                    out.push(u8::from(*v));
                },
            );
        } else {
            out.push(ENC_RAW);
            encode_nulls(out, col);
            out.extend_from_slice(&pack_bits(vs));
        }
    }
}

fn decode_column(r: &mut ByteReader, dtype: DataType, rows: usize) -> Result<Column> {
    let enc = r.get_u8()?;
    let mask = match r.get_u8()? {
        0 => None,
        _ => Some(unpack_bits(r.take(rows.div_ceil(8))?, rows)),
    };
    let bad_enc = || SkallaError::corrupt(format!("invalid encoding {enc} for {dtype} chunk"));
    let col = match dtype {
        DataType::Int64 => {
            let mut vs: Vec<i64> = Vec::with_capacity(rows);
            match enc {
                ENC_RAW => {
                    for _ in 0..rows {
                        vs.push(r.get_i64()?);
                    }
                }
                ENC_RLE => {
                    let runs = r.get_len("run")?;
                    for _ in 0..runs {
                        let count = r.get_u64()?;
                        let v = r.get_i64()?;
                        extend_run(&mut vs, v, count, rows)?;
                    }
                }
                _ => return Err(bad_enc()),
            }
            check_rows(vs.len(), rows)?;
            Column::from_i64(vs)
        }
        DataType::Float64 => {
            let mut vs: Vec<f64> = Vec::with_capacity(rows);
            match enc {
                ENC_RAW => {
                    for _ in 0..rows {
                        vs.push(f64::from_bits(r.get_u64()?));
                    }
                }
                ENC_RLE => {
                    let runs = r.get_len("run")?;
                    for _ in 0..runs {
                        let count = r.get_u64()?;
                        let v = f64::from_bits(r.get_u64()?);
                        extend_run(&mut vs, v, count, rows)?;
                    }
                }
                _ => return Err(bad_enc()),
            }
            check_rows(vs.len(), rows)?;
            Column::from_f64(vs)
        }
        DataType::Utf8 => {
            let mut vs: Vec<Arc<str>> = Vec::with_capacity(rows);
            match enc {
                ENC_RAW => {
                    for _ in 0..rows {
                        vs.push(read_str(r)?);
                    }
                }
                ENC_DICT => {
                    let n = r.get_u32()? as usize;
                    let mut entries: Vec<Arc<str>> = Vec::with_capacity(n);
                    for _ in 0..n {
                        entries.push(read_str(r)?);
                    }
                    let entry = |c: u32| -> Result<Arc<str>> {
                        entries
                            .get(c as usize)
                            .cloned()
                            .ok_or_else(|| SkallaError::corrupt("dictionary code out of range"))
                    };
                    match r.get_u8()? {
                        ENC_RAW => {
                            for _ in 0..rows {
                                let c = r.get_u32()?;
                                vs.push(entry(c)?);
                            }
                        }
                        ENC_RLE => {
                            let runs = r.get_len("run")?;
                            for _ in 0..runs {
                                let count = r.get_u64()?;
                                let v = entry(r.get_u32()?)?;
                                extend_run(&mut vs, v, count, rows)?;
                            }
                        }
                        _ => return Err(bad_enc()),
                    }
                }
                _ => return Err(bad_enc()),
            }
            check_rows(vs.len(), rows)?;
            Column::from_arc_strs(vs)
        }
        DataType::Bool => {
            let mut vs: Vec<bool> = Vec::with_capacity(rows);
            match enc {
                ENC_RAW => {
                    vs = unpack_bits(r.take(rows.div_ceil(8))?, rows);
                }
                ENC_RLE => {
                    let runs = r.get_len("run")?;
                    for _ in 0..runs {
                        let count = r.get_u64()?;
                        let v = r.get_u8()? != 0;
                        extend_run(&mut vs, v, count, rows)?;
                    }
                }
                _ => return Err(bad_enc()),
            }
            check_rows(vs.len(), rows)?;
            Column::from_bools(vs)
        }
    };
    col.with_null_mask(mask)
}

fn read_str(r: &mut ByteReader) -> Result<Arc<str>> {
    let n = r.get_u32()? as usize;
    let bytes = r.take(n)?;
    std::str::from_utf8(bytes)
        .map(Arc::from)
        .map_err(|_| SkallaError::corrupt("segment chunk holds invalid utf8"))
}

fn extend_run<T: Clone>(vs: &mut Vec<T>, v: T, count: u64, rows: usize) -> Result<()> {
    let count = usize::try_from(count)
        .ok()
        .filter(|&c| vs.len() + c <= rows)
        .ok_or_else(|| SkallaError::corrupt("RLE run overflows segment row count"))?;
    let new_len = vs.len() + count;
    vs.resize(new_len, v);
    Ok(())
}

fn check_rows(got: usize, want: usize) -> Result<()> {
    if got == want {
        Ok(())
    } else {
        Err(SkallaError::corrupt(format!(
            "segment chunk decoded {got} rows, expected {want}"
        )))
    }
}

/// Read one framed column chunk (`u64` length, `u32` CRC32C, bytes) and
/// verify its checksum. Returns the chunk bytes only if they are exactly
/// what the writer sealed.
fn read_chunk<'a>(r: &mut ByteReader<'a>, path: &Path) -> Result<&'a [u8]> {
    let len = r.get_len("chunk byte")?;
    let want = r.get_u32()?;
    let chunk = r.take(len)?;
    if crc32c(chunk) != want {
        return Err(SkallaError::corrupt(format!(
            "chunk checksum mismatch in {}",
            path.display()
        )));
    }
    Ok(chunk)
}

// ---------------------------------------------------------------------------
// Writer.

/// Summary returned by [`SegmentWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentWriteSummary {
    /// Total rows written.
    pub rows: usize,
    /// Number of segments.
    pub segments: usize,
    /// Final file size in bytes.
    pub bytes: u64,
}

/// Streaming writer: rows (or whole tables) go in, a segment is flushed to
/// disk every `segment_rows` rows, so peak memory is one segment regardless
/// of table size.
pub struct SegmentWriter {
    file: BufWriter<File>,
    /// Where bytes actually go until `finish` renames them into place.
    tmp_path: PathBuf,
    /// The published name; also the key fault plans are matched against.
    final_path: PathBuf,
    schema: Arc<Schema>,
    segment_rows: usize,
    buf: Vec<Column>,
    buf_rows: usize,
    offset: u64,
    total_rows: u64,
    segs: Vec<SegmentMeta>,
    published: bool,
}

fn fresh_columns(schema: &Schema, cap: usize) -> Vec<Column> {
    schema
        .fields()
        .iter()
        .map(|f| Column::with_capacity(f.dtype, cap))
        .collect()
}

impl SegmentWriter {
    /// Create (truncating) a segment file at `path` for `schema`, flushing a
    /// segment every `segment_rows` rows.
    pub fn create(
        path: impl AsRef<Path>,
        schema: Arc<Schema>,
        segment_rows: usize,
    ) -> Result<SegmentWriter> {
        let final_path = path.as_ref().to_path_buf();
        if schema.is_empty() {
            return Err(SkallaError::schema(
                "segment file needs at least one column",
            ));
        }
        if segment_rows == 0 {
            return Err(SkallaError::exec("segment_rows must be positive"));
        }
        let file_name = final_path
            .file_name()
            .ok_or_else(|| SkallaError::exec("segment path has no file name"))?
            .to_string_lossy()
            .into_owned();
        let tmp_path = final_path.with_file_name(format!("{file_name}.tmp"));
        let file = File::create(&tmp_path).map_err(|e| io_err("create", &tmp_path, e))?;
        let mut file = BufWriter::new(file);
        let mut header = Vec::new();
        header.extend_from_slice(HEADER_MAGIC);
        put_u64(&mut header, schema.len() as u64);
        for f in schema.fields() {
            put_u16(&mut header, f.name.len() as u16);
            header.extend_from_slice(f.name.as_bytes());
            header.push(dtype_tag(f.dtype));
        }
        let header_crc = crc32c(&header);
        put_u32(&mut header, header_crc);
        file.write_all(&header)
            .map_err(|e| io_err("write", &tmp_path, e))?;
        let buf = fresh_columns(&schema, segment_rows);
        Ok(SegmentWriter {
            file,
            tmp_path,
            final_path,
            schema,
            segment_rows,
            buf,
            buf_rows: 0,
            offset: header.len() as u64,
            total_rows: 0,
            segs: Vec::new(),
            published: false,
        })
    }

    /// The schema the writer was created with.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Append one row (values in schema order; `Value::Null` allowed).
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(SkallaError::schema(format!(
                "row of {} values against schema of {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        for (col, v) in self.buf.iter_mut().zip(row) {
            col.push(v.clone())?;
        }
        self.buf_rows += 1;
        if self.buf_rows == self.segment_rows {
            self.flush_segment()?;
        }
        Ok(())
    }

    /// Append a whole table (bulk column copies, no per-value dispatch).
    pub fn write_table(&mut self, table: &Table) -> Result<()> {
        if table.schema().fields() != self.schema.fields() {
            return Err(SkallaError::schema("segment write of mismatched schema"));
        }
        let mut done = 0;
        while done < table.len() {
            let take = (self.segment_rows - self.buf_rows).min(table.len() - done);
            for (c, col) in self.buf.iter_mut().enumerate() {
                col.append_range(table.column(c), done, done + take)?;
            }
            self.buf_rows += take;
            done += take;
            if self.buf_rows == self.segment_rows {
                self.flush_segment()?;
            }
        }
        Ok(())
    }

    fn flush_segment(&mut self) -> Result<()> {
        if self.buf_rows == 0 {
            return Ok(());
        }
        // Satellite: zone maps come from the catalog's own stats collector —
        // one typed pass, no second stats implementation.
        let zones: Vec<ColumnStats> = self.buf.iter().map(ColumnStats::collect).collect();
        let mut body = Vec::new();
        let mut chunk = Vec::new();
        for col in &self.buf {
            chunk.clear();
            encode_column(col, &mut chunk);
            put_u64(&mut body, chunk.len() as u64);
            put_u32(&mut body, crc32c(&chunk));
            body.extend_from_slice(&chunk);
        }
        // Seeded write-time fault: a flipped bit that lands on disk and stays
        // there, exactly like a firmware or cable error would leave it.
        if let Some(plan) = disk_faults_for(&self.final_path) {
            if let Some(pos) = plan.bitflip_for(&self.final_path, self.segs.len()) {
                let bit = (pos % (body.len() as u64 * 8)) as usize;
                body[bit >> 3] ^= 1 << (bit & 7);
            }
        }
        self.file
            .write_all(&body)
            .map_err(|e| io_err("write", &self.tmp_path, e))?;
        self.segs.push(SegmentMeta {
            offset: self.offset,
            byte_len: body.len() as u64,
            rows: self.buf_rows,
            zones,
        });
        self.offset += body.len() as u64;
        self.total_rows += self.buf_rows as u64;
        self.buf = fresh_columns(&self.schema, self.segment_rows);
        self.buf_rows = 0;
        Ok(())
    }

    /// Flush the tail segment, write the CRC-sealed zone-map footer, then
    /// publish atomically: fsync the tmp file, rename it over the final
    /// path, and fsync the parent directory. A crash anywhere before the
    /// rename leaves only a `.tmp` file — never a torn file at the
    /// published name.
    pub fn finish(mut self) -> Result<SegmentWriteSummary> {
        self.flush_segment()?;
        let mut footer = Vec::new();
        put_u64(&mut footer, self.total_rows);
        put_u64(&mut footer, self.segs.len() as u64);
        for seg in &self.segs {
            put_u64(&mut footer, seg.offset);
            put_u64(&mut footer, seg.byte_len);
            put_u64(&mut footer, seg.rows as u64);
            for z in &seg.zones {
                put_opt_value(&mut footer, &z.min);
                put_opt_value(&mut footer, &z.max);
                put_u64(&mut footer, z.distinct as u64);
                put_u64(&mut footer, z.null_count as u64);
            }
        }
        let footer_len = footer.len() as u64;
        let footer_crc = crc32c(&footer);
        put_u32(&mut footer, footer_crc);
        put_u64(&mut footer, footer_len);
        footer.extend_from_slice(TAIL_MAGIC);
        // Seeded write-time fault: a torn write that loses the tail of the
        // footer frame, as if power failed mid-write (the rename below
        // still "succeeds" — that is the point: the checksum, not the
        // publication protocol, must catch it).
        if let Some(plan) = disk_faults_for(&self.final_path) {
            if let Some(dropped) = plan.torn_write_for(&self.final_path) {
                let keep = footer.len().saturating_sub(dropped);
                footer.truncate(keep);
            }
        }
        self.file
            .write_all(&footer)
            .map_err(|e| io_err("write", &self.tmp_path, e))?;
        self.file
            .flush()
            .map_err(|e| io_err("flush", &self.tmp_path, e))?;
        self.file
            .get_ref()
            .sync_all()
            .map_err(|e| io_err("fsync", &self.tmp_path, e))?;
        std::fs::rename(&self.tmp_path, &self.final_path)
            .map_err(|e| io_err("publish", &self.final_path, e))?;
        self.published = true;
        let parent = match self.final_path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => Path::new("."),
        };
        // Make the rename itself durable. Best-effort: some filesystems
        // refuse directory fsync, and the data is already safe in the file.
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
        Ok(SegmentWriteSummary {
            rows: self.total_rows as usize,
            segments: self.segs.len(),
            bytes: self.offset + footer.len() as u64,
        })
    }
}

impl Drop for SegmentWriter {
    fn drop(&mut self) {
        // Abandoned writer (error path, panic, or caller never called
        // `finish`): remove the tmp file so half-written bytes cannot be
        // mistaken for a segment later.
        if !self.published {
            let _ = std::fs::remove_file(&self.tmp_path);
        }
    }
}

/// Write `table` to `path` as one segment file (convenience wrapper).
pub fn write_segments(
    path: impl AsRef<Path>,
    table: &Table,
    segment_rows: usize,
) -> Result<SegmentWriteSummary> {
    let mut w = SegmentWriter::create(path, table.schema().clone(), segment_rows)?;
    w.write_table(table)?;
    w.finish()
}

// ---------------------------------------------------------------------------
// Reader.

/// Per-segment metadata: body location plus the zone map.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Byte offset of the segment body in the file.
    pub offset: u64,
    /// Encoded body length in bytes.
    pub byte_len: u64,
    /// Rows in this segment.
    pub rows: usize,
    /// Zone map: exact per-column stats, in schema order.
    pub zones: Vec<ColumnStats>,
}

/// An open segment file: schema + zone maps in memory, bodies on disk, read
/// on demand with positioned I/O. Shareable across threads behind an `Arc`.
#[derive(Debug)]
pub struct SegmentFile {
    file: File,
    path: PathBuf,
    schema: Arc<Schema>,
    total_rows: usize,
    segs: Vec<SegmentMeta>,
    /// Starting global row index of each segment.
    row_starts: Vec<usize>,
}

impl SegmentFile {
    /// Open a segment file, reading only its header and footer — both
    /// CRC-verified before a single parsed value is trusted.
    pub fn open(path: impl AsRef<Path>) -> Result<SegmentFile> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path).map_err(|e| io_err("open", &path, e))?;
        let flen = file.metadata().map_err(|e| io_err("stat", &path, e))?.len();
        let bad = |what: &str| SkallaError::corrupt(format!("{}: {what}", path.display()));
        // Minimum: header magic + ncols + header crc, footer (two u64s for
        // an empty file), tail frame.
        if flen < (HEADER_MAGIC.len() + 8 + 4) as u64 + 16 + TAIL_LEN {
            return Err(bad("not a segment file (too short)"));
        }
        let mut tail = [0u8; TAIL_LEN as usize];
        file.read_exact_at(&mut tail, flen - TAIL_LEN)
            .map_err(|e| read_err(&path, e))?;
        if &tail[12..] != TAIL_MAGIC {
            return Err(bad("not a segment file (bad tail magic)"));
        }
        let footer_crc = u32::from_le_bytes(tail[..4].try_into().unwrap());
        let footer_len = u64::from_le_bytes(tail[4..12].try_into().unwrap());
        if footer_len > flen - TAIL_LEN {
            return Err(bad("corrupt footer length"));
        }
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact_at(&mut footer, flen - TAIL_LEN - footer_len)
            .map_err(|e| read_err(&path, e))?;
        // Seeded read-time fault: the device returns an old version of the
        // footer block (lost-write / misdirected-read). Modeled by
        // inverting its tail — unlike zeroing, that changes the bytes no
        // matter what the footer held, so the recorded CRC cannot match.
        if let Some(plan) = disk_faults_for(&path) {
            if plan.stale_footer_for(&path) {
                let n = footer.len();
                for b in &mut footer[n.saturating_sub(8)..] {
                    *b = !*b;
                }
            }
        }
        if crc32c(&footer) != footer_crc {
            return Err(bad("footer checksum mismatch"));
        }

        // Header: magic + schema + CRC. The header is tiny; 64 KiB covers
        // any real schema.
        let mut head = vec![0u8; (flen.min(64 * 1024)) as usize];
        file.read_exact_at(&mut head, 0)
            .map_err(|e| read_err(&path, e))?;
        let mut hr = ByteReader::new(&head);
        if hr.take(8)? != HEADER_MAGIC {
            return Err(bad("not a segment file (bad header magic)"));
        }
        let ncols = hr.get_len("column")?;
        let mut fields = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let nlen = hr.get_u16()? as usize;
            let name = std::str::from_utf8(hr.take(nlen)?)
                .map_err(|_| bad("column name holds invalid utf8"))?
                .to_string();
            let dtype = tag_dtype(hr.get_u8()?)?;
            fields.push(skalla_types::Field::new(name, dtype));
        }
        let header_crc = crc32c(&head[..hr.pos]);
        if hr.get_u32()? != header_crc {
            return Err(bad("header checksum mismatch"));
        }
        let schema = Schema::new(fields)?.into_arc();

        // Footer: row counts + zone maps.
        let mut fr = ByteReader::new(&footer);
        let total_rows =
            usize::try_from(fr.get_u64()?).map_err(|_| bad("corrupt total row count"))?;
        let nsegs = fr.get_len("segment")?;
        let mut segs = Vec::with_capacity(nsegs);
        let mut row_starts = Vec::with_capacity(nsegs);
        let mut row_start = 0usize;
        for _ in 0..nsegs {
            let offset = fr.get_u64()?;
            let byte_len = fr.get_u64()?;
            let rows =
                usize::try_from(fr.get_u64()?).map_err(|_| bad("corrupt segment row count"))?;
            if offset.checked_add(byte_len).is_none_or(|end| end > flen) {
                return Err(bad("segment body out of file bounds"));
            }
            let mut zones = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let min = get_opt_value(&mut fr)?;
                let max = get_opt_value(&mut fr)?;
                let distinct = fr.get_u64()? as usize;
                let null_count = fr.get_u64()? as usize;
                zones.push(ColumnStats {
                    min,
                    max,
                    distinct,
                    null_count,
                });
            }
            segs.push(SegmentMeta {
                offset,
                byte_len,
                rows,
                zones,
            });
            row_starts.push(row_start);
            row_start += rows;
        }
        if row_start != total_rows {
            return Err(bad("segment row counts disagree with total"));
        }
        Ok(SegmentFile {
            file,
            path,
            schema,
            total_rows,
            segs,
            row_starts,
        })
    }

    /// The file's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The path this file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segs.len()
    }

    /// Total rows across all segments.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Metadata (including the zone map) of segment `i`.
    pub fn meta(&self, i: usize) -> &SegmentMeta {
        &self.segs[i]
    }

    /// All segment metadata, in file order.
    pub fn metas(&self) -> &[SegmentMeta] {
        &self.segs
    }

    /// Global row index of the first row of segment `i`.
    pub fn segment_row_start(&self, i: usize) -> usize {
        self.row_starts[i]
    }

    /// Approximate whole-file statistics assembled from the footer's zone
    /// maps — no segment body is read. `min`/`max`/`null_count` are exact;
    /// `distinct` is an upper bound (per-segment counts summed, capped at
    /// the row count), good enough for the planner's cost estimates.
    pub fn table_stats(&self) -> crate::stats::TableStats {
        let mut stats = crate::stats::TableStats {
            rows: 0,
            columns: vec![
                crate::stats::ColumnStats {
                    min: None,
                    max: None,
                    distinct: 0,
                    null_count: 0,
                };
                self.schema.len()
            ],
        };
        for seg in &self.segs {
            stats.merge(&crate::stats::TableStats {
                rows: seg.rows,
                columns: seg.zones.clone(),
            });
        }
        stats
    }

    /// Read segment `i`'s body bytes, applying any installed short-read
    /// fault (the un-arrived suffix reads back as zeros, as a failed DMA
    /// would leave it).
    fn read_body(&self, i: usize) -> Result<Vec<u8>> {
        let meta = &self.segs[i];
        let mut body = vec![0u8; meta.byte_len as usize];
        self.file
            .read_exact_at(&mut body, meta.offset)
            .map_err(|e| read_err(&self.path, e))?;
        if let Some(plan) = disk_faults_for(&self.path) {
            if let Some(permille) = plan.short_read_for(&self.path, i) {
                let keep = (body.len() as u64 * permille / 1000) as usize;
                for b in &mut body[keep..] {
                    *b = 0;
                }
            }
        }
        Ok(body)
    }

    /// Decode segment `i` into an in-memory table (one positioned read).
    /// Every column chunk's CRC32C is verified before its bytes are
    /// decoded.
    pub fn read_segment(&self, i: usize) -> Result<Table> {
        if i >= self.segs.len() {
            return Err(SkallaError::exec(format!("segment {i} out of range")));
        }
        let rows = self.segs[i].rows;
        let body = self.read_body(i)?;
        let mut r = ByteReader::new(&body);
        let cols = self
            .schema
            .fields()
            .iter()
            .map(|f| {
                let chunk = read_chunk(&mut r, &self.path)?;
                decode_column(&mut ByteReader::new(chunk), f.dtype, rows)
            })
            .collect::<Result<Vec<_>>>()?;
        Table::from_columns(self.schema.clone(), cols)
    }

    /// Verify every column chunk's CRC in the whole file without decoding
    /// or materializing anything — the scrub path. Returns the number of
    /// blocks (column chunks) verified; any mismatch is a typed
    /// [`SkallaError::SegmentCorrupt`].
    pub fn verify(&self) -> Result<u64> {
        let mut blocks = 0u64;
        for i in 0..self.segs.len() {
            let body = self.read_body(i)?;
            let mut r = ByteReader::new(&body);
            for _ in 0..self.schema.len() {
                read_chunk(&mut r, &self.path)?;
                blocks += 1;
            }
        }
        Ok(blocks)
    }

    /// Decode the whole file into one in-memory table.
    pub fn read_all(&self) -> Result<Table> {
        if self.segs.is_empty() {
            return Ok(Table::empty(self.schema.clone()));
        }
        let parts = (0..self.segs.len())
            .map(|i| self.read_segment(i))
            .collect::<Result<Vec<_>>>()?;
        Table::concat(&parts)
    }
}

// ---------------------------------------------------------------------------
// Zone-map pruning.

/// Largest `f64` strictly below `x` (bit-twiddling `nextafter`).
fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = x.to_bits();
    f64::from_bits(if bits >> 63 == 0 { bits - 1 } else { bits + 1 })
}

/// Smallest `f64` strictly above `x`.
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    f64::from_bits(if bits >> 63 == 0 { bits + 1 } else { bits - 1 })
}

/// An `f64` lower bound ≤ `i` (exact below 2^53, widened conservatively
/// above, where `i as f64` may round up).
fn widen_lo(i: i64) -> f64 {
    let f = i as f64;
    if cmp_int_float(i, f).is_lt() {
        next_down(f)
    } else {
        f
    }
}

/// An `f64` upper bound ≥ `i`.
fn widen_hi(i: i64) -> f64 {
    let f = i as f64;
    if cmp_int_float(i, f).is_gt() {
        next_up(f)
    } else {
        f
    }
}

/// Zone check: can a segment whose column has stats `z` contain a non-null
/// value inside `iv`? Conservative: `true` means "maybe" — `false` is a
/// proof of emptiness and licenses skipping the segment.
///
/// NULLs never satisfy a comparison predicate, so an all-null column
/// (`min == None`) is prunable. Floats use `Value`'s total order, where NaN
/// with the sign bit clear sorts after `+inf` (and a negative-bit NaN before
/// `-inf`): a positive-NaN *minimum* means every value is NaN — also
/// prunable, since comparisons never match NaN — while a NaN *maximum* just
/// makes the zone unbounded on that side. Integer bounds beyond 2^53 are
/// widened outward so the `as f64` rounding can never fake a disjointness.
pub fn zone_may_overlap(z: &ColumnStats, iv: &Interval) -> bool {
    let (Some(min), Some(max)) = (&z.min, &z.max) else {
        return false;
    };
    let lo = match min {
        Value::Int(i) => Some(widen_lo(*i)),
        Value::Float(f) if f.is_nan() => {
            if f.is_sign_negative() {
                None // -NaN sorts first: no lower bound on the rest.
            } else {
                return false; // min is +NaN ⇒ every value is NaN.
            }
        }
        Value::Float(f) => Some(*f),
        _ => return true, // non-numeric column: never prune on intervals
    };
    let hi = match max {
        Value::Int(i) => Some(widen_hi(*i)),
        Value::Float(f) if f.is_nan() => {
            if f.is_sign_negative() {
                return false; // max is -NaN ⇒ every value is NaN.
            } else {
                None // +NaN sorts last: no upper bound on the rest.
            }
        }
        Value::Float(f) => Some(*f),
        _ => return true,
    };
    let zone = match (lo, hi) {
        (Some(lo), Some(hi)) => Interval::closed(lo, hi),
        (Some(lo), None) => Interval::at_least(lo),
        (None, Some(hi)) => Interval::at_most(hi),
        (None, None) => Interval::unbounded(),
    };
    !iv.intersect(&zone).is_empty()
}

/// Zone check for string equality: can the segment contain string `s`?
pub fn zone_may_contain_str(z: &ColumnStats, s: &str) -> bool {
    match (&z.min, &z.max) {
        (Some(Value::Str(lo)), Some(Value::Str(hi))) => &**lo <= s && s <= &**hi,
        (None, _) | (_, None) => false,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("skalla-seg-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.seg")
    }

    fn sample_table(rows: i64) -> Table {
        let schema = Schema::from_pairs([
            ("k", DataType::Int64),
            ("x", DataType::Float64),
            ("s", DataType::Utf8),
            ("b", DataType::Bool),
            ("n", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        let rows: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::Int(i / 10), // sorted, low cardinality → RLE
                    if i % 17 == 0 {
                        Value::Float(f64::NAN)
                    } else if i % 13 == 0 {
                        Value::Float(-0.0)
                    } else {
                        Value::Float(i as f64 * 0.5)
                    },
                    Value::str(["alpha", "beta", "gamma"][(i % 3) as usize]),
                    Value::Bool(i % 2 == 0),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(-i)
                    },
                ]
            })
            .collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let t = sample_table(1000);
        let path = tmp("roundtrip");
        // 128 rows/segment → 8 segments, last one short (1000 = 7×128 + 104).
        let summary = write_segments(&path, &t, 128).unwrap();
        assert_eq!(summary.rows, 1000);
        assert_eq!(summary.segments, 8);
        let f = SegmentFile::open(&path).unwrap();
        assert_eq!(f.num_segments(), 8);
        assert_eq!(f.total_rows(), 1000);
        assert_eq!(f.meta(7).rows, 104);
        assert_eq!(f.segment_row_start(7), 896);
        let back = f.read_all().unwrap();
        assert_eq!(back.schema().fields(), t.schema().fields());
        assert_eq!(back.len(), t.len());
        for i in 0..t.len() {
            for c in 0..t.schema().len() {
                let (a, b) = (t.column(c).get(i), back.column(c).get(i));
                // Bit-strict: NaN payload and -0.0 sign must survive.
                match (&a, &b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "row {i} col {c}");
                    }
                    _ => assert_eq!(a, b, "row {i} col {c}"),
                }
            }
        }
    }

    #[test]
    fn push_row_matches_write_table() {
        let t = sample_table(300);
        let (pa, pb) = (tmp("rows"), tmp("table"));
        let mut w = SegmentWriter::create(&pa, t.schema().clone(), 64).unwrap();
        for i in 0..t.len() {
            let row: Vec<Value> = (0..t.schema().len()).map(|c| t.column(c).get(i)).collect();
            w.push_row(&row).unwrap();
        }
        w.finish().unwrap();
        write_segments(&pb, &t, 64).unwrap();
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    }

    #[test]
    fn compression_beats_raw_on_runs_and_dicts() {
        let schema = Schema::from_pairs([("r", DataType::Int64), ("d", DataType::Utf8)])
            .unwrap()
            .into_arc();
        let rows: Vec<Vec<Value>> = (0..4096)
            .map(|i| {
                vec![
                    Value::Int(i / 512),
                    Value::str(["aaaaaaaaaa", "bbbbbbbbbb"][(i % 2) as usize]),
                ]
            })
            .collect();
        let t = Table::from_rows(schema, &rows).unwrap();
        let path = tmp("compress");
        let summary = write_segments(&path, &t, 4096).unwrap();
        // Raw would be ≥ 4096×8 + 4096×14 bytes; RLE + dict shrink far below.
        assert!(
            summary.bytes < 4096 * 8,
            "expected compression, got {} bytes",
            summary.bytes
        );
        let back = SegmentFile::open(&path).unwrap().read_all().unwrap();
        assert_eq!(back.len(), 4096);
        assert_eq!(back.column(0).get(4095), Value::Int(7));
        assert_eq!(back.column(1).get(1), Value::str("bbbbbbbbbb"));
    }

    #[test]
    fn zone_maps_match_catalog_stats() {
        let t = sample_table(1000);
        let path = tmp("zones");
        write_segments(&path, &t, 250).unwrap();
        let f = SegmentFile::open(&path).unwrap();
        for i in 0..f.num_segments() {
            let seg = f.read_segment(i).unwrap();
            let expect = crate::stats::TableStats::collect(&seg);
            assert_eq!(f.meta(i).zones, expect.columns, "segment {i}");
        }
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let t = Table::empty(schema);
        let path = tmp("empty");
        let summary = write_segments(&path, &t, 16).unwrap();
        assert_eq!(summary.segments, 0);
        let f = SegmentFile::open(&path).unwrap();
        assert_eq!(f.total_rows(), 0);
        assert_eq!(f.read_all().unwrap().len(), 0);
    }

    #[test]
    fn rejects_corrupt_files() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"definitely not a segment file").unwrap();
        assert!(SegmentFile::open(&path).unwrap_err().is_corrupt());
        let t = sample_table(100);
        write_segments(&path, &t, 32).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff; // break tail magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(SegmentFile::open(&path).unwrap_err().is_corrupt());
    }

    #[test]
    fn header_and_footer_checksums_catch_flips() {
        let t = sample_table(100);
        let path = tmp("hf-crc");
        write_segments(&path, &t, 32).unwrap();
        let good = std::fs::read(&path).unwrap();
        let mut bad = good.clone();
        bad[10] ^= 0x40; // inside the header's column count
        std::fs::write(&path, &bad).unwrap();
        let e = SegmentFile::open(&path).unwrap_err();
        assert!(e.is_corrupt(), "{e}");
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - TAIL_LEN as usize - 1] ^= 0x01; // last footer byte
        std::fs::write(&path, &bad).unwrap();
        let e = SegmentFile::open(&path).unwrap_err();
        assert!(e.is_corrupt(), "{e}");
    }

    #[test]
    fn chunk_checksum_catches_body_flips() {
        let t = sample_table(100);
        let path = tmp("body-crc");
        write_segments(&path, &t, 100).unwrap();
        let off = SegmentFile::open(&path).unwrap().meta(0).offset as usize;
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[off + 14] ^= 0x10; // inside the first chunk's sealed bytes
        std::fs::write(&path, &bytes).unwrap();
        // Header and footer are intact, so open still succeeds…
        let f = SegmentFile::open(&path).unwrap();
        // …but every decode path reports typed corruption, never bad data.
        assert!(f.read_segment(0).unwrap_err().is_corrupt());
        assert!(f.read_all().unwrap_err().is_corrupt());
        assert!(f.verify().unwrap_err().is_corrupt());
    }

    #[test]
    fn verify_counts_all_blocks() {
        let t = sample_table(300);
        let path = tmp("verify");
        write_segments(&path, &t, 100).unwrap();
        let f = SegmentFile::open(&path).unwrap();
        // 3 segments × 5 columns.
        assert_eq!(f.verify().unwrap(), 15);
    }

    #[test]
    fn abandoned_writer_leaves_nothing_published() {
        let t = sample_table(50);
        let path = tmp("abandon");
        let tmp_path = path.with_file_name("t.seg.tmp");
        {
            let mut w = SegmentWriter::create(&path, t.schema().clone(), 16).unwrap();
            w.write_table(&t).unwrap();
            assert!(tmp_path.exists());
            // Dropped without finish: simulated crash mid-generation.
        }
        assert!(!path.exists());
        assert!(!tmp_path.exists());
        write_segments(&path, &t, 16).unwrap();
        assert!(path.exists());
        assert!(!tmp_path.exists());
        assert_eq!(SegmentFile::open(&path).unwrap().total_rows(), 50);
    }

    #[test]
    fn injected_bitflip_is_caught_and_typed() {
        let t = sample_table(200);
        let path = tmp("bitflip-fault");
        let _g = crate::fault::DiskFaultPlan::seeded(7)
            .with_bitflip_rate(1.0)
            .install(path.parent().unwrap());
        write_segments(&path, &t, 64).unwrap();
        let f = SegmentFile::open(&path).unwrap();
        for i in 0..f.num_segments() {
            assert!(f.read_segment(i).unwrap_err().is_corrupt(), "segment {i}");
        }
        assert!(f.verify().unwrap_err().is_corrupt());
    }

    #[test]
    fn injected_torn_write_is_caught_at_open() {
        let t = sample_table(100);
        let path = tmp("torn-fault");
        let _g = crate::fault::DiskFaultPlan::seeded(3)
            .with_torn_write_rate(1.0)
            .install(path.parent().unwrap());
        write_segments(&path, &t, 32).unwrap();
        assert!(SegmentFile::open(&path).unwrap_err().is_corrupt());
    }

    #[test]
    fn injected_stale_footer_is_caught_at_open() {
        let t = sample_table(100);
        let path = tmp("stale-fault");
        write_segments(&path, &t, 32).unwrap();
        // The file on disk is good; the fault is a read-time stale block.
        let _g = crate::fault::DiskFaultPlan::seeded(5)
            .with_stale_footer_rate(1.0)
            .install(path.parent().unwrap());
        assert!(SegmentFile::open(&path).unwrap_err().is_corrupt());
    }

    #[test]
    fn injected_short_read_never_returns_wrong_data() {
        let t = sample_table(200);
        let path = tmp("short-fault");
        write_segments(&path, &t, 64).unwrap();
        let good = SegmentFile::open(&path).unwrap().read_all().unwrap();
        let _g = crate::fault::DiskFaultPlan::seeded(11)
            .with_short_read_rate(1.0)
            .install(path.parent().unwrap());
        let f = SegmentFile::open(&path).unwrap();
        let mut failures = 0;
        for i in 0..f.num_segments() {
            match f.read_segment(i) {
                // A short read that only lost already-zero padding decodes
                // correctly; anything else must be typed corruption.
                Ok(seg) => {
                    let start = f.segment_row_start(i);
                    for r in 0..seg.len() {
                        for c in 0..seg.schema().len() {
                            let (a, b) = (seg.column(c).get(r), good.column(c).get(start + r));
                            match (&a, &b) {
                                (Value::Float(x), Value::Float(y)) => {
                                    assert_eq!(x.to_bits(), y.to_bits());
                                }
                                _ => assert_eq!(a, b),
                            }
                        }
                    }
                }
                Err(e) => {
                    assert!(e.is_corrupt(), "{e}");
                    failures += 1;
                }
            }
        }
        assert!(
            failures > 0,
            "rate-1.0 short reads never tripped a checksum"
        );
    }

    fn zi(min: i64, max: i64) -> ColumnStats {
        ColumnStats {
            min: Some(Value::Int(min)),
            max: Some(Value::Int(max)),
            distinct: 2,
            null_count: 0,
        }
    }

    #[test]
    fn zone_overlap_basics() {
        let z = zi(10, 20);
        assert!(zone_may_overlap(&z, &Interval::at_least(15.0)));
        assert!(zone_may_overlap(&z, &Interval::closed(20.0, 30.0)));
        assert!(!zone_may_overlap(&z, &Interval::at_least(20.5)));
        assert!(!zone_may_overlap(&z, &Interval::greater_than(20.0)));
        assert!(!zone_may_overlap(&z, &Interval::at_most(9.0)));
        assert!(zone_may_overlap(&z, &Interval::singleton(10.0)));
        // All-null zone is always prunable.
        let all_null = ColumnStats {
            min: None,
            max: None,
            distinct: 0,
            null_count: 5,
        };
        assert!(!zone_may_overlap(&all_null, &Interval::unbounded()));
    }

    #[test]
    fn zone_overlap_handles_nan_and_big_ints() {
        // All-NaN float column: min is (positive) NaN → prunable.
        let z = ColumnStats {
            min: Some(Value::Float(f64::NAN)),
            max: Some(Value::Float(f64::NAN)),
            distinct: 1,
            null_count: 0,
        };
        assert!(!zone_may_overlap(&z, &Interval::unbounded()));
        // NaN max with a real min: unbounded above, still bounded below.
        let z = ColumnStats {
            min: Some(Value::Float(5.0)),
            max: Some(Value::Float(f64::NAN)),
            distinct: 3,
            null_count: 0,
        };
        assert!(zone_may_overlap(&z, &Interval::at_least(1e300)));
        assert!(!zone_may_overlap(&z, &Interval::at_most(4.5)));
        // i64 beyond 2^53: `as f64` rounds; bounds must widen, not shrink.
        let big = (1i64 << 60) + 1; // rounds down to 2^60 as f64
        let z = zi(big, big);
        assert!(zone_may_overlap(&z, &Interval::closed(big as f64, 1e19)));
        let below = (1i64 << 60) - 1; // rounds up to 2^60
        let z = zi(i64::MIN, below);
        assert!(zone_may_overlap(&z, &Interval::at_least(below as f64)));
    }

    #[test]
    fn zone_string_equality() {
        let z = ColumnStats {
            min: Some(Value::str("delhi")),
            max: Some(Value::str("osaka")),
            distinct: 4,
            null_count: 0,
        };
        assert!(zone_may_contain_str(&z, "lima"));
        assert!(zone_may_contain_str(&z, "delhi"));
        assert!(!zone_may_contain_str(&z, "zagreb"));
        assert!(!zone_may_contain_str(&z, "cairo"));
    }
}
