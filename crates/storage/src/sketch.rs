//! Skew sketches: per-partition cardinality + space-saving heavy hitters,
//! and the fragment planner that turns them into a balanced work layout.
//!
//! The distributed GMDJ rounds are barrier-synchronous — a round ends when
//! the *slowest* site finishes — so one hot partition bounds the whole
//! system. Sites piggyback a [`PartSketch`] on their round replies: the
//! exact detail cardinality of each partition they computed plus a
//! [`SpaceSaving`] heavy-hitter summary of its group keys (Metwally et al.;
//! the sketch PAPERS.md's *Skew in Parallel Query Processing* assumes for
//! heavy-hitter-aware shuffles). The coordinator feeds the learned
//! cardinalities to [`plan_splits`], which splits hot partitions into
//! [`PartFrag`] row ranges across their surviving ring replicas.

use std::collections::{BTreeMap, HashMap};

use crate::partition::{PartFrag, ReplicaMap};

/// A space-saving heavy-hitter sketch over `u64` keys (hashed group keys).
///
/// Holds at most `cap` counters. `offer`ing a tracked key increments it;
/// an untracked key evicts the minimum counter and inherits its count as
/// overestimation error. Guarantees: every key with true frequency
/// `> n/cap` is tracked, and each reported count overestimates the true
/// frequency by at most its recorded error.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    cap: usize,
    /// key → (count, error). Small (`cap` ≤ tens), so a plain map.
    counters: HashMap<u64, (u64, u64)>,
}

impl SpaceSaving {
    /// An empty sketch holding at most `cap` counters (min 1).
    pub fn new(cap: usize) -> SpaceSaving {
        SpaceSaving {
            cap: cap.max(1),
            counters: HashMap::new(),
        }
    }

    /// Observe one occurrence of `key`.
    pub fn offer(&mut self, key: u64) {
        if let Some((count, _)) = self.counters.get_mut(&key) {
            *count += 1;
            return;
        }
        if self.counters.len() < self.cap {
            self.counters.insert(key, (1, 0));
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // error (ties broken by key for determinism).
        let (&victim, &(min, _)) = self
            .counters
            .iter()
            .min_by_key(|(k, (c, _))| (*c, **k))
            .expect("cap >= 1");
        self.counters.remove(&victim);
        self.counters.insert(key, (min + 1, min));
    }

    /// The tracked keys as `(key, estimated_count)`, heaviest first (ties
    /// broken by key for determinism).
    pub fn top(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self.counters.iter().map(|(k, (c, _))| (*k, *c)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of keys observed minus error would need tracking; this is
    /// simply how many counters are in use.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// `true` if nothing has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// A per-partition skew sketch shipped in round replies: the partition's
/// exact detail cardinality (the site hosts the whole partition table, so
/// this is a length lookup, not an estimate) plus the heavy-hitter summary
/// of its group keys where a scan made one cheap to compute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartSketch {
    /// Partition index.
    pub part: u32,
    /// Detail rows in the whole partition.
    pub rows: u64,
    /// `(hashed_group_key, estimated_count)` heavy hitters, heaviest first.
    /// Empty when the reply's scan did not touch group keys.
    pub heavy: Vec<(u64, u64)>,
}

impl PartSketch {
    /// Share of the partition's rows held by its single heaviest group
    /// (0.0 when unknown).
    pub fn top_share(&self) -> f64 {
        match (self.heavy.first(), self.rows) {
            (Some(&(_, c)), rows) if rows > 0 => (c.min(rows)) as f64 / rows as f64,
            _ => 0.0,
        }
    }
}

/// Imbalance of a per-partition load vector: `max / mean` over the loaded
/// entries (1.0 when uniform or fewer than two partitions are loaded).
pub fn load_imbalance(rows: &[u64]) -> f64 {
    let loaded: Vec<u64> = rows.iter().copied().filter(|&r| r > 0).collect();
    if loaded.len() < 2 {
        return 1.0;
    }
    let max = *loaded.iter().max().expect("non-empty") as f64;
    let mean = loaded.iter().sum::<u64>() as f64 / loaded.len() as f64;
    if mean <= 0.0 {
        1.0
    } else {
        max / mean
    }
}

/// A planned skewed layout: per-site work lists (whole partitions plus
/// row-range fragments) and the indices of the partitions that were split.
pub type SplitPlan = (BTreeMap<usize, Vec<PartFrag>>, Vec<u32>);

/// Split hot partitions into row-range fragments across their surviving
/// ring replicas, greedily balancing estimated per-site load.
///
/// * `rows[p]` — learned detail cardinality of partition `p` (0 = unknown).
/// * `owners[p]` — the site currently assigned partition `p` (`None` =
///   lost; such partitions are left to the failover machinery).
/// * `alive[s]` — `false` for sites known dead.
/// * `threshold` — a partition is *hot* when `rows > threshold × mean`.
/// * `max_split` — cap on fragments per partition (`0` = automatic:
///   fragments sized at roughly a quarter of the mean load, at most 16).
///
/// Returns `None` when nothing qualifies (unknown loads, no hot partition,
/// or no hot partition has a second live host) — callers keep the uniform
/// whole-partition layout. Otherwise returns the per-site work lists
/// (whole partitions plus fragments) and the indices of the partitions
/// that were split. Fragments of a split partition go to the currently
/// least-loaded live host of that partition, so several fragments may land
/// on the same site — including the original owner.
pub fn plan_splits(
    rows: &[u64],
    owners: &[Option<usize>],
    map: &ReplicaMap,
    alive: &[bool],
    threshold: f64,
    max_split: usize,
) -> Option<SplitPlan> {
    let n = rows.len().min(owners.len()).min(map.num_parts());
    let owned: Vec<usize> = (0..n)
        .filter(|&p| owners[p].is_some() && rows[p] > 0)
        .collect();
    if owned.len() < 2 || !(threshold.is_finite() && threshold > 0.0) {
        return None;
    }
    let mean = owned.iter().map(|&p| rows[p]).sum::<u64>() as f64 / owned.len() as f64;
    let live = |s: usize| alive.get(s).copied().unwrap_or(true);
    let mut hot: Vec<usize> = owned
        .iter()
        .copied()
        .filter(|&p| {
            rows[p] as f64 > threshold * mean
                && map.hosts_of(p).iter().filter(|&&h| live(h)).count() >= 2
        })
        .collect();
    if hot.is_empty() {
        return None;
    }
    // Heaviest first, so the worst partition balances against a still
    // mostly-empty layout.
    hot.sort_by(|&a, &b| rows[b].cmp(&rows[a]).then(a.cmp(&b)));

    let hot_set: Vec<bool> = (0..n).map(|p| hot.contains(&p)).collect();
    let mut work: BTreeMap<usize, Vec<PartFrag>> = BTreeMap::new();
    let mut load: BTreeMap<usize, f64> = BTreeMap::new();
    for &p in &owned {
        let s = owners[p].expect("owned");
        load.entry(s).or_insert(0.0);
        if !hot_set[p] {
            work.entry(s).or_default().push(PartFrag::whole(p as u32));
            *load.get_mut(&s).expect("entry") += rows[p] as f64;
        }
    }
    for &p in &hot {
        let hosts: Vec<usize> = map
            .hosts_of(p)
            .iter()
            .copied()
            .filter(|&h| live(h))
            .collect();
        let of = if max_split > 0 {
            max_split.max(2)
        } else {
            // Automatic: slices of ~mean/4 so the greedy fill can level
            // loads finely, bounded to keep per-slice overhead sane.
            ((4.0 * rows[p] as f64 / mean).ceil() as usize).clamp(2, 16)
        } as u32;
        let slice = rows[p] as f64 / f64::from(of);
        for frag in 0..of {
            let &target = hosts
                .iter()
                .min_by(|&&a, &&b| {
                    let (la, lb) = (
                        load.get(&a).copied().unwrap_or(0.0),
                        load.get(&b).copied().unwrap_or(0.0),
                    );
                    la.partial_cmp(&lb).expect("finite loads").then(a.cmp(&b))
                })
                .expect(">=2 live hosts");
            work.entry(target).or_default().push(PartFrag {
                part: p as u32,
                frag,
                of,
            });
            *load.entry(target).or_insert(0.0) += slice;
        }
    }
    for frags in work.values_mut() {
        frags.sort();
    }
    Some((work, hot.iter().map(|&p| p as u32).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_tracks_heavy_hitters() {
        let mut s = SpaceSaving::new(3);
        for _ in 0..100 {
            s.offer(7);
        }
        for _ in 0..50 {
            s.offer(8);
        }
        for k in 0..40u64 {
            s.offer(100 + k); // light noise
        }
        let top = s.top();
        assert_eq!(top[0].0, 7);
        assert!(top[0].1 >= 100, "{top:?}");
        assert_eq!(top[1].0, 8);
        assert!(top[1].1 >= 50, "{top:?}");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn space_saving_overestimates_bounded() {
        // 190 total offers, cap 4: any count overestimates by at most the
        // inherited minimum, and true-heavy keys survive.
        let mut s = SpaceSaving::new(4);
        for i in 0..190u64 {
            s.offer(if i % 2 == 0 { 1 } else { i });
        }
        let top = s.top();
        assert_eq!(top[0].0, 1);
        assert!(top[0].1 >= 95);
    }

    #[test]
    fn sketch_top_share() {
        let sk = PartSketch {
            part: 0,
            rows: 100,
            heavy: vec![(9, 40), (3, 10)],
        };
        assert!((sk.top_share() - 0.4).abs() < 1e-12);
        assert_eq!(PartSketch::default().top_share(), 0.0);
    }

    #[test]
    fn imbalance_of_uniform_is_one() {
        assert_eq!(load_imbalance(&[10, 10, 10]), 1.0);
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[5]), 1.0);
        assert!(load_imbalance(&[30, 10, 10, 10]) > 1.9);
    }

    #[test]
    fn plan_splits_balances_hot_partition() {
        // Partition 0 is 4x the mean; 4 sites, full replication.
        let map = ReplicaMap::ring("t", 4, 4).unwrap();
        let rows = vec![400u64, 100, 100, 100];
        let owners = vec![Some(0), Some(1), Some(2), Some(3)];
        let alive = vec![true; 4];
        let (work, split) = plan_splits(&rows, &owners, &map, &alive, 1.5, 0).expect("splits");
        assert_eq!(split, vec![0]);
        // Every fragment of partition 0 appears exactly once across sites.
        let mut frags: Vec<PartFrag> = work
            .values()
            .flatten()
            .copied()
            .filter(|f| f.part == 0)
            .collect();
        frags.sort();
        let of = frags[0].of;
        assert!(of >= 2);
        assert_eq!(frags.len(), of as usize);
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(f.frag, i as u32);
            assert_eq!(f.of, of);
        }
        // Cold partitions stay whole with their owners.
        for p in 1..4u32 {
            assert!(work[&(p as usize)].contains(&PartFrag::whole(p)));
        }
        // The greedy fill levels estimated load: no site ends above
        // ~mean + one slice.
        let mean = 700.0 / 4.0;
        for frag_list in work.values() {
            let load: f64 = frag_list
                .iter()
                .map(|f| rows[f.part as usize] as f64 / f64::from(f.of))
                .sum();
            assert!(load <= mean + 400.0 / f64::from(of) + 1.0, "{work:?}");
        }
    }

    #[test]
    fn plan_splits_requires_live_replica() {
        // Replication 2: partition 0's hosts are {0, 1}; with site 1 dead
        // there is no second live host, so nothing splits.
        let map = ReplicaMap::ring("t", 3, 2).unwrap();
        let rows = vec![400u64, 100, 100];
        let owners = vec![Some(0), Some(1), Some(2)];
        let alive = vec![true, false, true];
        assert!(plan_splits(&rows, &owners, &map, &alive, 1.5, 0).is_none());
    }

    #[test]
    fn plan_splits_uniform_load_declines() {
        let map = ReplicaMap::ring("t", 3, 3).unwrap();
        let rows = vec![100u64, 100, 100];
        let owners = vec![Some(0), Some(1), Some(2)];
        assert!(plan_splits(&rows, &owners, &map, &[true; 3], 1.5, 0).is_none());
        // Unknown loads decline too.
        assert!(plan_splits(&[0, 0, 0], &owners, &map, &[true; 3], 1.5, 0).is_none());
    }

    #[test]
    fn plan_splits_respects_max_split() {
        let map = ReplicaMap::ring("t", 2, 2).unwrap();
        let rows = vec![1000u64, 10];
        let owners = vec![Some(0), Some(1)];
        let (work, _) = plan_splits(&rows, &owners, &map, &[true; 2], 1.2, 3).expect("splits");
        let frags: Vec<PartFrag> = work
            .values()
            .flatten()
            .copied()
            .filter(|f| f.part == 0)
            .collect();
        assert_eq!(frags.len(), 3);
        assert!(frags.iter().all(|f| f.of == 3));
    }
}
