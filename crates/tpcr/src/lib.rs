#![warn(missing_docs)]

//! # skalla-tpcr
//!
//! Deterministic TPC-R-style data generation for the Skalla experiments.
//!
//! The paper derives its test database from the TPC(R) `dbgen` program: a
//! denormalized 900 MB relation of 6 million tuples, partitioned on
//! `NationKey` (and therefore also on `CustKey`) across eight sites, with a
//! high-cardinality grouping attribute (`Customer.Name`, 100 000 distinct
//! values) and low-cardinality attributes (2000–4000 distinct values).
//!
//! We reproduce that *shape* with a seeded synthetic generator:
//!
//! * [`TpcrConfig::scale`] controls the row count; all cardinalities scale
//!   the way dbgen's do (customers ∝ rows, nations fixed at 25, clerks in
//!   the low-cardinality band);
//! * `NationKey = CustKey mod 25`, so partitioning on `NationKey` also
//!   partitions `CustKey` and `CustName` — exactly the property the paper's
//!   speed-up experiments exploit;
//! * generation is deterministic in the seed, so experiments are
//!   reproducible bit-for-bit.

pub mod io;

pub use io::{generate_cached, load_table, save_table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skalla_storage::{partition_by_values, Partitioning, SegmentWriter, Table, TableBuilder};
use skalla_types::{DataType, Result, Schema, SkallaError, Value};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Number of nations (fixed, as in TPC-R).
pub const NUM_NATIONS: i64 = 25;
/// Number of regions (fixed, as in TPC-R).
pub const NUM_REGIONS: i64 = 5;

const NATION_NAMES: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

const REGION_NAMES: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpcrConfig {
    /// Number of fact tuples to generate.
    pub num_rows: usize,
    /// Number of distinct customers (the high-cardinality attribute).
    pub num_customers: i64,
    /// Number of distinct clerks (a low-cardinality attribute that is *not*
    /// functionally dependent on the partitioning).
    pub num_clerks: i64,
    /// Number of distinct cities. Cities are derived from customers with
    /// `citykey = custkey mod num_cities`; `num_cities` is always a
    /// multiple of 25, so a city determines its nation — giving a
    /// *low-cardinality partitioned* attribute (the paper's 2000–4000
    /// distinct-value grouping attributes). At paper scale (100 k
    /// customers) this is 4000 cities.
    pub num_cities: i64,
    /// RNG seed.
    pub seed: u64,
    /// Zipfian skew exponent θ for the customer draw. `0.0` (the default)
    /// keeps the original uniform generator bit-for-bit; `θ > 0` draws
    /// `custkey` from a Zipf(θ) distribution over customer ranks (rank 0 =
    /// customer 0), so nation 0 — and whichever site hosts it — becomes
    /// hot. θ = 1.2 is the canonical heavy-skew setting of the skew bench.
    pub zipf_theta: f64,
    /// Draw `orderdate` along a monotone timeline instead of uniformly at
    /// random. `false` (the default) keeps the original generator
    /// bit-for-bit. When `true`, row *i*'s `orderdate` is
    /// `i·2557/num_rows` plus a small random jitter — the natural shape of
    /// a fact table appended in arrival order, where consecutive rows
    /// share a narrow date window. Segment zone maps over such data are
    /// tight, so date-range predicates can prune most segments; uniform
    /// dates make every zone span the full 7 years and prune nothing.
    pub time_ordered: bool,
}

impl TpcrConfig {
    /// Scale factor 1.0 ≈ the paper's setup shrunk 100×: 60 000 rows,
    /// 1000 customers, 30 clerks. The paper's 6 M rows / 100 k customers /
    /// ~3000 clerks is `scale(100.0)`; the cardinality *ratios*
    /// (rows : customers : clerks = 6000 : 100 : 3) match at every scale.
    pub fn scale(sf: f64) -> TpcrConfig {
        let rows = (60_000.0 * sf).round().max(1.0) as usize;
        let num_customers = ((1_000.0 * sf).round() as i64).max(1);
        let num_cities = (((num_customers as f64) / 25.0 / 25.0).round() as i64).max(1) * 25;
        TpcrConfig {
            num_rows: rows,
            num_customers,
            num_clerks: ((30.0 * sf).round() as i64).max(1),
            num_cities,
            seed: 0x51a11a ^ 0x5EED,
            zipf_theta: 0.0,
            time_ordered: false,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> TpcrConfig {
        self.seed = seed;
        self
    }

    /// Draw customers from a Zipf(θ) distribution instead of uniformly
    /// (θ ≤ 0 restores the uniform draw). Generation stays deterministic
    /// in the seed: same seed and θ ⇒ bit-identical tables.
    pub fn with_zipf(mut self, theta: f64) -> TpcrConfig {
        self.zipf_theta = if theta.is_finite() {
            theta.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Enable or disable [`TpcrConfig::time_ordered`] generation.
    pub fn with_time_ordered(mut self, on: bool) -> TpcrConfig {
        self.time_ordered = on;
        self
    }
}

impl Default for TpcrConfig {
    fn default() -> Self {
        TpcrConfig::scale(1.0)
    }
}

/// The denormalized TPCR fact-relation schema.
pub fn tpcr_schema() -> Arc<Schema> {
    Schema::from_pairs([
        ("orderkey", DataType::Int64),
        ("linenumber", DataType::Int64),
        ("custkey", DataType::Int64),
        ("custname", DataType::Utf8),
        ("mktsegment", DataType::Utf8),
        ("nationkey", DataType::Int64),
        ("nationname", DataType::Utf8),
        ("regionkey", DataType::Int64),
        ("regionname", DataType::Utf8),
        ("clerk", DataType::Utf8),
        ("orderpriority", DataType::Utf8),
        ("returnflag", DataType::Utf8),
        ("orderdate", DataType::Int64),
        ("shipdate", DataType::Int64),
        ("quantity", DataType::Float64),
        ("extendedprice", DataType::Float64),
        ("discount", DataType::Float64),
        ("tax", DataType::Float64),
        ("citykey", DataType::Int64),
        ("cityname", DataType::Utf8),
    ])
    .expect("static schema is valid")
    .into_arc()
}

/// Column index of `nationkey` (the partition attribute).
pub const NATIONKEY_COL: usize = 5;
/// Column index of `custkey`.
pub const CUSTKEY_COL: usize = 2;
/// Column index of `custname` (high-cardinality grouping attribute).
pub const CUSTNAME_COL: usize = 3;
/// Column index of `clerk` (low-cardinality grouping attribute).
pub const CLERK_COL: usize = 9;
/// Column index of `orderdate` (days since the timeline start; monotone
/// under [`TpcrConfig::time_ordered`], which makes segment zone maps on it
/// tight).
pub const ORDERDATE_COL: usize = 12;
/// Column index of `quantity`.
pub const QUANTITY_COL: usize = 14;
/// Column index of `extendedprice` (the usual aggregation measure).
pub const EXTENDEDPRICE_COL: usize = 15;
/// Column index of `citykey`.
pub const CITYKEY_COL: usize = 18;
/// Column index of `cityname` (low-cardinality *partitioned* grouping
/// attribute: a city determines its nation).
pub const CITYNAME_COL: usize = 19;

/// Nation key of a customer — the functional dependency that makes
/// `NationKey` partitioning also partition `CustKey` (paper §5.1).
pub fn nation_of_customer(custkey: i64) -> i64 {
    custkey % NUM_NATIONS
}

/// Region of a nation (5 regions of 5 nations each).
pub fn region_of_nation(nationkey: i64) -> i64 {
    nationkey % NUM_REGIONS
}

/// City key of a customer. Because `num_cities` is a multiple of 25,
/// `citykey mod 25 = custkey mod 25 = nationkey`: the city determines the
/// nation, so city is partitioned whenever nation is.
pub fn city_of_customer(custkey: i64, num_cities: i64) -> i64 {
    custkey % num_cities
}

/// City name string for a key.
pub fn city_name(citykey: i64) -> String {
    format!("City#{citykey:05}")
}

/// Customer name string for a key (TPC-style, zero-padded → 100% distinct).
pub fn customer_name(custkey: i64) -> String {
    format!("Customer#{custkey:09}")
}

/// Clerk name string for a key.
pub fn clerk_name(clerkkey: i64) -> String {
    format!("Clerk#{clerkkey:09}")
}

/// The cumulative Zipf(θ) distribution over `n` ranks: `cdf[k]` is the
/// probability of drawing a rank `≤ k` (rank `r` has mass ∝ `1/(r+1)^θ`).
/// A uniform `[0,1)` draw binary-searched into this vector yields a
/// Zipf-distributed rank; the skew bench uses it to make customer 0 (and
/// therefore nation 0 and its site) hot.
pub fn zipf_cdf(n: usize, theta: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n.max(1));
    let mut acc = 0.0f64;
    for r in 0..n.max(1) {
        acc += ((r + 1) as f64).powf(-theta);
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

/// Number of days in the generated timeline (~7 years, as in dbgen).
/// `orderdate` lies in `0..TIMELINE_DAYS`; benches use this to build
/// selective date-range predicates with known selectivity.
pub const TIMELINE_DAYS: i64 = 2557;

/// One seeded generator stream, shared by [`generate`] (in-memory) and
/// [`generate_to_dir`] (streamed to disk). Both paths call [`RowGen::row`]
/// for `i = 0..num_rows` and therefore draw from the identical RNG
/// sequence — the out-of-core data is bit-for-bit the in-memory data by
/// construction, not by luck.
struct RowGen {
    config: TpcrConfig,
    rng: StdRng,
    zipf: Option<Vec<f64>>,
}

impl RowGen {
    fn new(config: &TpcrConfig) -> RowGen {
        RowGen {
            config: *config,
            rng: StdRng::seed_from_u64(config.seed),
            // θ = 0 keeps the legacy uniform `gen_range` draw so
            // pre-existing seeds reproduce bit-for-bit.
            zipf: (config.zipf_theta > 0.0)
                .then(|| zipf_cdf(config.num_customers.max(1) as usize, config.zipf_theta)),
        }
    }

    /// Row `i` of the fact relation, in schema order. Must be called with
    /// consecutive `i` starting at 0 (the RNG stream is positional).
    fn row(&mut self, i: usize) -> Vec<Value> {
        let config = &self.config;
        let rng = &mut self.rng;
        let orderkey = (i / 4) as i64 + 1;
        let linenumber = (i % 4) as i64 + 1;
        let custkey = match &self.zipf {
            None => rng.gen_range(0..config.num_customers),
            Some(cdf) => {
                let u: f64 = rng.gen_range(0.0..1.0);
                cdf.partition_point(|&c| c <= u).min(cdf.len() - 1) as i64
            }
        };
        let nationkey = nation_of_customer(custkey);
        let regionkey = region_of_nation(nationkey);
        let clerkkey = rng.gen_range(0..config.num_clerks);
        let orderdate = if config.time_ordered {
            // Arrival order: row i lands near day i·2557/n, jittered a few
            // days. One draw either way, so the RNG stream stays aligned.
            let base = (i as u64 * TIMELINE_DAYS as u64 / config.num_rows.max(1) as u64) as i64;
            (base + rng.gen_range(0..8)).min(TIMELINE_DAYS - 1)
        } else {
            rng.gen_range(0..TIMELINE_DAYS) // ~7 years of days
        };
        let shipdate = orderdate + rng.gen_range(1..122);
        let quantity = rng.gen_range(1..=50) as f64;
        let price_per_unit = rng.gen_range(900.0..=10_500.0f64);
        let extendedprice = (quantity * price_per_unit * 100.0).round() / 100.0;
        let discount = rng.gen_range(0..=10) as f64 / 100.0;
        let tax = rng.gen_range(0..=8) as f64 / 100.0;
        let returnflag = RETURN_FLAGS[rng.gen_range(0..RETURN_FLAGS.len())];

        vec![
            Value::Int(orderkey),
            Value::Int(linenumber),
            Value::Int(custkey),
            Value::str(customer_name(custkey)),
            // custkey / 25 decorrelates the segment from nation/region
            // (both derive from custkey mod 25).
            Value::str(SEGMENTS[((custkey / NUM_NATIONS) % SEGMENTS.len() as i64) as usize]),
            Value::Int(nationkey),
            Value::str(NATION_NAMES[nationkey as usize]),
            Value::Int(regionkey),
            Value::str(REGION_NAMES[regionkey as usize]),
            Value::str(clerk_name(clerkkey)),
            Value::str(PRIORITIES[(orderkey % PRIORITIES.len() as i64) as usize]),
            Value::str(returnflag),
            Value::Int(orderdate),
            Value::Int(shipdate),
            Value::Float(quantity),
            Value::Float(extendedprice),
            Value::Float(discount),
            Value::Float(tax),
            Value::Int(city_of_customer(custkey, config.num_cities)),
            Value::str(city_name(city_of_customer(custkey, config.num_cities))),
        ]
    }
}

/// Generate the denormalized fact relation.
pub fn generate(config: &TpcrConfig) -> Table {
    let schema = tpcr_schema();
    let mut g = RowGen::new(config);
    let mut b = TableBuilder::with_capacity(schema, config.num_rows);
    for i in 0..config.num_rows {
        b.push_row(&g.row(i)).expect("generated row matches schema");
    }
    b.finish()
}

/// Stream the fact relation straight into per-site segment files under
/// `dir` without ever materializing the full table: peak memory is
/// `n_sites` write buffers of `segment_rows` rows, regardless of
/// `num_rows`. Site `k`'s partition lands in `dir/tpcr-site<k>.seg`.
///
/// Row routing matches [`partition_by_nation`] (nation `k` → site
/// `k mod n_sites`, generation order preserved within a site) and rows
/// come from the same seeded stream as [`generate`], so reading site
/// `k`'s file back yields a table bit-for-bit equal to
/// `partition_by_nation(&generate(config), n_sites).parts[k]`. Returns
/// the per-site paths, index = site.
pub fn generate_to_dir(
    config: &TpcrConfig,
    n_sites: usize,
    segment_rows: usize,
    dir: impl AsRef<Path>,
) -> Result<Vec<PathBuf>> {
    if n_sites == 0 {
        return Err(SkallaError::plan("generate_to_dir with zero sites"));
    }
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)
        .map_err(|e| SkallaError::exec(format!("creating {}: {e}", dir.display())))?;
    let schema = tpcr_schema();
    let paths: Vec<PathBuf> = (0..n_sites)
        .map(|k| dir.join(format!("tpcr-site{k}.seg")))
        .collect();
    let mut writers = paths
        .iter()
        .map(|p| SegmentWriter::create(p, schema.clone(), segment_rows))
        .collect::<Result<Vec<_>>>()?;
    let mut g = RowGen::new(config);
    for i in 0..config.num_rows {
        let row = g.row(i);
        let nation = row[NATIONKEY_COL]
            .as_int()
            .expect("nationkey is always an Int");
        writers[(nation as usize) % n_sites].push_row(&row)?;
    }
    for w in writers {
        w.finish()?;
    }
    Ok(paths)
}

/// Partition a generated table on `nationkey` round-robin across `n_sites`
/// (nation `k` lives at site `k mod n_sites`), mirroring the paper's eight
/// equal partitions. `nationkey` is a partition attribute of the result.
pub fn partition_by_nation(table: &Table, n_sites: usize) -> Result<Partitioning> {
    let assignment: Vec<(Value, usize)> = (0..NUM_NATIONS)
        .map(|k| (Value::Int(k), (k as usize) % n_sites))
        .collect();
    partition_by_values(table, NATIONKEY_COL, &assignment, n_sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn small() -> TpcrConfig {
        TpcrConfig {
            num_rows: 2000,
            num_customers: 100,
            num_clerks: 10,
            num_cities: 50,
            seed: 42,
            zipf_theta: 0.0,
            time_ordered: false,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a, b);
        let c = generate(&small().with_seed(43));
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_generation_is_deterministic() {
        let a = generate(&small().with_zipf(1.2));
        let b = generate(&small().with_zipf(1.2));
        assert_eq!(a, b);
        // Different θ or different seed ⇒ different tables; θ = 0 is the
        // legacy uniform generator exactly.
        assert_ne!(a, generate(&small().with_zipf(0.8)));
        assert_ne!(a, generate(&small().with_zipf(1.2).with_seed(43)));
        assert_eq!(generate(&small().with_zipf(0.0)), generate(&small()));
    }

    #[test]
    fn zipf_cdf_is_normalized_and_monotone() {
        let cdf = zipf_cdf(100, 1.2);
        assert_eq!(cdf.len(), 100);
        assert!((cdf[99] - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        // Rank 0 holds the 1/H_n(θ) head mass; for n=100, θ=1.2 that is
        // well above a uniform share.
        assert!(cdf[0] > 0.15, "{}", cdf[0]);
    }

    #[test]
    fn zipf_skews_customers_and_nations() {
        let t = generate(&small().with_zipf(1.2));
        let count_where = |col: usize, v: i64| -> usize {
            (0..t.len())
                .filter(|&i| t.column(col).get(i) == Value::Int(v))
                .count()
        };
        // Customer 0 dominates, far beyond its uniform share of 1/100.
        let c0 = count_where(CUSTKEY_COL, 0);
        assert!(c0 > t.len() / 10, "customer 0 has {c0} of {} rows", t.len());
        // And the skew carries to the partition attribute: nation 0 is hot.
        let n0 = count_where(NATIONKEY_COL, 0);
        assert!(n0 >= c0);
        // Uniform share would be 1/25 = 4%; the Zipf head pushes nation 0
        // several times past that.
        assert!(n0 > 4 * t.len() / 25, "nation 0 has {n0} of {}", t.len());
        // Functional dependencies are untouched by the skewed draw.
        for i in 0..t.len() {
            let custkey = t.column(CUSTKEY_COL).get(i).as_int().unwrap();
            assert_eq!(
                t.column(NATIONKEY_COL).get(i).as_int().unwrap(),
                nation_of_customer(custkey)
            );
        }
    }

    #[test]
    fn time_ordered_dates_rise_monotonically_with_jitter() {
        let t = generate(&small().with_time_ordered(true));
        let dates: Vec<i64> = (0..t.len())
            .map(|i| t.column(12).get(i).as_int().unwrap())
            .collect();
        // Each date sits within the 8-day jitter band above its base, so
        // the sequence can only dip by the jitter width, never trend back.
        for w in dates.windows(2) {
            assert!(w[1] >= w[0] - 7, "dates regressed: {} then {}", w[0], w[1]);
        }
        // The timeline is actually traversed (not constant).
        assert!(dates[dates.len() - 1] - dates[0] > 2000);
        assert!(dates.iter().all(|&d| (0..2557).contains(&d)));
        // shipdate still trails orderdate by 1..122 days.
        for i in 0..t.len() {
            let od = t.column(12).get(i).as_int().unwrap();
            let sd = t.column(13).get(i).as_int().unwrap();
            assert!(sd > od && sd <= od + 121);
        }
        // The flag defaults off and off means the legacy generator exactly.
        assert_eq!(
            generate(&small().with_time_ordered(false)),
            generate(&small())
        );
        // Everything except the dates is untouched by the mode: the RNG
        // stream stays aligned because both paths draw once per date.
        let u = generate(&small());
        for col in (0..u.schema().len()).filter(|&c| c != 12 && c != 13) {
            for i in 0..u.len() {
                assert_eq!(
                    u.column(col).get(i),
                    t.column(col).get(i),
                    "col {col} row {i}"
                );
            }
        }
    }

    #[test]
    fn generate_to_dir_is_bit_identical_to_in_memory_partitioning() {
        let cfg = small().with_time_ordered(true);
        let n_sites = 3;
        let dir = std::env::temp_dir().join(format!("skalla-tpcr-gtd-{}", std::process::id()));
        let paths = generate_to_dir(&cfg, n_sites, 64, &dir).unwrap();
        assert_eq!(paths.len(), n_sites);

        let mem = partition_by_nation(&generate(&cfg), n_sites).unwrap();
        for (k, path) in paths.iter().enumerate() {
            let f = skalla_storage::SegmentFile::open(path).unwrap();
            let disk = f.read_all().unwrap();
            assert_eq!(disk, mem.parts[k], "site {k} diverges from in-memory");
            // 64-row segments: the file really is chunked, not one blob.
            assert!(f.num_segments() >= disk.len() / 64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_and_row_count() {
        let t = generate(&small());
        assert_eq!(t.len(), 2000);
        assert_eq!(t.schema().len(), 20);
        assert_eq!(t.schema().index_of("cityname").unwrap(), CITYNAME_COL);
        assert_eq!(t.schema().index_of("citykey").unwrap(), CITYKEY_COL);
        assert_eq!(t.schema().index_of("nationkey").unwrap(), NATIONKEY_COL);
        assert_eq!(t.schema().index_of("custkey").unwrap(), CUSTKEY_COL);
        assert_eq!(t.schema().index_of("custname").unwrap(), CUSTNAME_COL);
        assert_eq!(t.schema().index_of("clerk").unwrap(), CLERK_COL);
        assert_eq!(t.schema().index_of("orderdate").unwrap(), ORDERDATE_COL);
        assert_eq!(t.schema().index_of("quantity").unwrap(), QUANTITY_COL);
        assert_eq!(
            t.schema().index_of("extendedprice").unwrap(),
            EXTENDEDPRICE_COL
        );
    }

    #[test]
    fn functional_dependencies_hold() {
        let t = generate(&small());
        for i in 0..t.len() {
            let custkey = t.column(CUSTKEY_COL).get(i).as_int().unwrap();
            let nation = t.column(NATIONKEY_COL).get(i).as_int().unwrap();
            assert_eq!(nation, nation_of_customer(custkey));
            let name = t.column(CUSTNAME_COL).get(i);
            assert_eq!(name.as_str().unwrap(), customer_name(custkey));
            let region = t.column(7).get(i).as_int().unwrap();
            assert_eq!(region, region_of_nation(nation));
            // The city determines the nation (low-card partitioned attr).
            let city = t.column(CITYKEY_COL).get(i).as_int().unwrap();
            assert_eq!(city % NUM_NATIONS, nation);
            assert_eq!(city, city_of_customer(custkey, 50));
        }
    }

    #[test]
    fn cityname_is_partitioned_with_nation() {
        let t = generate(&small());
        let p = partition_by_nation(&t, 4).unwrap();
        // Re-anchor the partitioning on cityname: still a partition attr.
        let reanchored = skalla_storage::Partitioning {
            parts: p.parts.clone(),
            partition_col: Some(CITYNAME_COL),
        };
        assert!(reanchored.is_partition_attribute());
        // clerk, by contrast, is NOT partitioned.
        let clerk_anchored = skalla_storage::Partitioning {
            parts: p.parts,
            partition_col: Some(CLERK_COL),
        };
        assert!(!clerk_anchored.is_partition_attribute());
    }

    #[test]
    fn cardinalities_in_expected_bands() {
        let t = generate(&small());
        let distinct = |col: usize| -> usize {
            (0..t.len())
                .map(|i| t.column(col).get(i))
                .collect::<BTreeSet<_>>()
                .len()
        };
        assert!(distinct(CUSTKEY_COL) <= 100);
        assert!(distinct(CUSTKEY_COL) > 50); // 2000 draws of 100 values
        assert_eq!(distinct(CLERK_COL), 10);
        assert!(distinct(NATIONKEY_COL) <= 25);
        assert_eq!(distinct(7), 5); // regions
    }

    #[test]
    fn measures_in_valid_ranges() {
        let t = generate(&small());
        for i in 0..t.len() {
            let q = t.column(QUANTITY_COL).get(i).as_f64().unwrap();
            assert!((1.0..=50.0).contains(&q));
            let d = t.column(16).get(i).as_f64().unwrap();
            assert!((0.0..=0.10).contains(&d));
            let od = t.column(12).get(i).as_int().unwrap();
            let sd = t.column(13).get(i).as_int().unwrap();
            assert!(sd > od);
        }
    }

    #[test]
    fn nation_partitioning_is_partition_attribute() {
        let t = generate(&small());
        let p = partition_by_nation(&t, 8).unwrap();
        assert_eq!(p.num_sites(), 8);
        assert_eq!(p.total_rows(), t.len());
        assert!(p.is_partition_attribute());
        // CustKey is partitioned too (the paper's parenthetical).
        let mut seen: BTreeSet<Value> = BTreeSet::new();
        for part in &p.parts {
            let mut local: BTreeSet<Value> = BTreeSet::new();
            for i in 0..part.len() {
                local.insert(part.column(CUSTKEY_COL).get(i));
            }
            assert!(local.iter().all(|v| !seen.contains(v)));
            seen.extend(local);
        }
    }

    #[test]
    fn scale_controls_sizes() {
        let c1 = TpcrConfig::scale(1.0);
        let c2 = TpcrConfig::scale(2.0);
        assert_eq!(c2.num_rows, 2 * c1.num_rows);
        assert_eq!(c2.num_customers, 2 * c1.num_customers);
        assert_eq!(c1.num_rows / c1.num_customers as usize, 60);
        // The paper's scale: 6M rows, 100k customers, 3000 clerks.
        let paper = TpcrConfig::scale(100.0);
        assert_eq!(paper.num_rows, 6_000_000);
        assert_eq!(paper.num_customers, 100_000);
        assert_eq!(paper.num_clerks, 3_000);
        // Low-cardinality band of the paper: 2000–4000 distinct values.
        assert!(paper.num_cities >= 2000 && paper.num_cities <= 4000);
        assert_eq!(paper.num_cities % 25, 0);
    }
}
