//! Saving and loading generated tables.
//!
//! `dbgen` users cache generated data on disk; this module does the same
//! for our synthetic TPCR tables, reusing the exact wire format of
//! `skalla-net` (so a cached file is simply a serialized relation with a
//! small header).

use std::fs;
use std::path::Path;

use skalla_net::{WireDecode, WireEncode, WireReader};
use skalla_storage::Table;
use skalla_types::{Relation, Result, SkallaError};

/// File magic: "SKLT" + format version 1.
const MAGIC: &[u8; 5] = b"SKLT\x01";

/// Serialize a table to `path` (wire format plus a magic header).
pub fn save_table(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let mut bytes = Vec::with_capacity(table.len() * 32 + MAGIC.len());
    bytes.extend_from_slice(MAGIC);
    let rel = table.to_relation();
    bytes.extend_from_slice(&rel.to_wire());
    fs::write(path.as_ref(), &bytes)
        .map_err(|e| SkallaError::exec(format!("writing {}: {e}", path.as_ref().display())))
}

/// Load a table previously written by [`save_table`].
pub fn load_table(path: impl AsRef<Path>) -> Result<Table> {
    let bytes = fs::read(path.as_ref())
        .map_err(|e| SkallaError::exec(format!("reading {}: {e}", path.as_ref().display())))?;
    let Some(body) = bytes.strip_prefix(MAGIC.as_slice()) else {
        return Err(SkallaError::exec(format!(
            "{} is not a Skalla table file",
            path.as_ref().display()
        )));
    };
    let mut r = WireReader::new(body);
    let rel = Relation::decode(&mut r)?;
    if !r.is_empty() {
        return Err(SkallaError::exec("trailing bytes in table file"));
    }
    Table::from_rows(rel.schema().clone(), rel.rows())
}

/// Generate-or-load: reuse `path` when it holds a previously generated
/// table, otherwise generate with `config` and cache it.
pub fn generate_cached(config: &crate::TpcrConfig, path: impl AsRef<Path>) -> Result<Table> {
    if path.as_ref().exists() {
        if let Ok(t) = load_table(path.as_ref()) {
            return Ok(t);
        }
        // Corrupt/old cache: fall through and regenerate.
    }
    let table = crate::generate(config);
    save_table(&table, path)?;
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TpcrConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("skalla-tpcr-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_round_trip() {
        let cfg = TpcrConfig {
            num_rows: 500,
            num_customers: 50,
            num_clerks: 5,
            num_cities: 25,
            seed: 11,
            zipf_theta: 0.0,
            time_ordered: false,
        };
        let table = crate::generate(&cfg);
        let path = tmp("roundtrip");
        save_table(&table, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back, table);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_files_rejected() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a table").unwrap();
        assert!(load_table(&path).is_err());
        std::fs::write(&path, b"SKLT\x01truncated").unwrap();
        assert!(load_table(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(load_table(tmp("missing")).is_err());
    }

    #[test]
    fn generate_cached_reuses_file() {
        let cfg = TpcrConfig {
            num_rows: 300,
            num_customers: 30,
            num_clerks: 3,
            num_cities: 25,
            seed: 12,
            zipf_theta: 0.0,
            time_ordered: false,
        };
        let path = tmp("cache");
        std::fs::remove_file(&path).ok();
        let a = generate_cached(&cfg, &path).unwrap();
        assert!(path.exists());
        let b = generate_cached(&cfg, &path).unwrap();
        assert_eq!(a, b);
        // A corrupt cache regenerates instead of failing.
        std::fs::write(&path, b"junk").unwrap();
        let c = generate_cached(&cfg, &path).unwrap();
        assert_eq!(a, c);
        std::fs::remove_file(&path).ok();
    }
}
