//! Structural analyses of GMDJ conditions.
//!
//! These analyses drive the paper's optimizations:
//!
//! * [`equality_pairs`] extracts the `b.K = r.k` equi-join conjuncts that let
//!   the local GMDJ evaluator use a hash strategy and let the planner check
//!   the preconditions of Proposition 2 and Corollary 1.
//! * [`entails_key_equality`] checks whether a condition θ *entails* equality
//!   on a set of base key attributes (the `θ entails θ_K` test of
//!   Proposition 2).

use std::collections::BTreeSet;
use std::sync::Arc;

use skalla_types::{cmp_int_float, Value};

use crate::expr::{BinOp, Expr};
use crate::interval::Interval;

/// An equi-join conjunct `b.base_col = r.detail_col` appearing (top-level
/// conjunctively) in a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EqualityPair {
    /// Column index in the base schema.
    pub base_col: usize,
    /// Column index in the detail schema.
    pub detail_col: usize,
}

/// Split a condition into its top-level conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    collect_conjuncts(expr, &mut out);
    out
}

fn collect_conjuncts<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            collect_conjuncts(lhs, out);
            collect_conjuncts(rhs, out);
        }
        other => out.push(other),
    }
}

/// Split a condition into its top-level disjuncts.
pub fn disjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    collect_disjuncts(expr, &mut out);
    out
}

fn collect_disjuncts<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        } => {
            collect_disjuncts(lhs, out);
            collect_disjuncts(rhs, out);
        }
        other => out.push(other),
    }
}

/// The set of base-column indices referenced by `expr`.
pub fn base_cols_used(expr: &Expr) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    walk(expr, &mut |e| {
        if let Expr::BaseCol(i) = e {
            set.insert(*i);
        }
    });
    set
}

/// The set of detail-column indices referenced by `expr`.
pub fn detail_cols_used(expr: &Expr) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    walk(expr, &mut |e| {
        if let Expr::DetailCol(i) = e {
            set.insert(*i);
        }
    });
    set
}

fn walk(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Binary { lhs, rhs, .. } => {
            walk(lhs, f);
            walk(rhs, f);
        }
        Expr::Unary { expr, .. } => walk(expr, f),
        Expr::InSet { expr, .. } => walk(expr, f),
        Expr::Lit(_) | Expr::BaseCol(_) | Expr::DetailCol(_) => {}
    }
}

/// Extract the equi-join conjuncts `b.i = r.j` (either orientation) from the
/// top-level conjunction of `theta`.
pub fn equality_pairs(theta: &Expr) -> Vec<EqualityPair> {
    let mut out = Vec::new();
    for c in conjuncts(theta) {
        if let Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = c
        {
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::BaseCol(b), Expr::DetailCol(d)) | (Expr::DetailCol(d), Expr::BaseCol(b)) => {
                    out.push(EqualityPair {
                        base_col: *b,
                        detail_col: *d,
                    });
                }
                _ => {}
            }
        }
    }
    out
}

/// Does `theta` entail equality on every base key column in `key`?
///
/// Sound, incomplete test: θ entails `b.k = …` when the top-level
/// conjunction contains an equi-join conjunct on `k`. Used for the
/// `θⱼ entails θ_K` precondition of Proposition 2, and (with the returned
/// detail columns) the partition-attribute precondition of Corollary 1.
///
/// Returns `Some(detail_cols)` — the detail column paired with each key
/// column, in `key` order — when entailment holds, `None` otherwise.
pub fn entails_key_equality(theta: &Expr, key: &[usize]) -> Option<Vec<usize>> {
    let pairs = equality_pairs(theta);
    key.iter()
        .map(|k| {
            pairs
                .iter()
                .find(|p| p.base_col == *k)
                .map(|p| p.detail_col)
        })
        .collect()
}

/// Value bounds on detail columns implied by a condition, used for
/// zone-map segment pruning: a detail row can only satisfy θ if every
/// listed bound holds, so a segment whose zone map is disjoint from any
/// bound can be skipped without decoding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DetailBounds {
    /// Numeric constraints `(detail_col, interval)`: any matching row's
    /// value in that column lies inside the interval (NULL never matches).
    pub num: Vec<(usize, Interval)>,
    /// String equality constraints `(detail_col, value)`.
    pub str_eq: Vec<(usize, Arc<str>)>,
}

impl DetailBounds {
    /// `true` when no bound could be extracted (nothing to prune on).
    pub fn is_empty(&self) -> bool {
        self.num.is_empty() && self.str_eq.is_empty()
    }
}

/// Conservative `f64` lower bound ≤ `i` (an `as` cast may round up past
/// 2^53; step one ulp down when it does).
fn int_lo(i: i64) -> f64 {
    let f = i as f64;
    if cmp_int_float(i, f).is_lt() {
        f64::from_bits(if f.to_bits() >> 63 == 0 {
            f.to_bits() - 1
        } else {
            f.to_bits() + 1
        })
    } else {
        f
    }
}

/// Conservative `f64` upper bound ≥ `i`.
fn int_hi(i: i64) -> f64 {
    let f = i as f64;
    if cmp_int_float(i, f).is_gt() {
        f64::from_bits(if f.to_bits() >> 63 == 0 {
            f.to_bits() + 1
        } else {
            f.to_bits() - 1
        })
    } else {
        f
    }
}

/// Conservative `(lo, hi)` enclosure of a numeric literal; `None` for
/// non-numeric or NaN literals (never prune on those).
fn lit_enclosure(v: &Value) -> Option<(f64, f64)> {
    match v {
        Value::Int(i) => Some((int_lo(*i), int_hi(*i))),
        Value::Float(f) if !f.is_nan() => Some((*f, *f)),
        _ => None,
    }
}

/// The interval a detail value must lie in to satisfy `value <op> lit`,
/// widened so integer-literal rounding can never exclude a real match.
fn cmp_interval(op: BinOp, lit: &Value) -> Option<Interval> {
    let (lo, hi) = lit_enclosure(lit)?;
    Some(match op {
        BinOp::Eq => Interval::closed(lo, hi),
        BinOp::Lt => Interval::less_than(hi),
        BinOp::Le => Interval::at_most(hi),
        BinOp::Gt => Interval::greater_than(lo),
        BinOp::Ge => Interval::at_least(lo),
        _ => return None,
    })
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Closed hull of a numeric `IN`-set; `None` when the set holds anything
/// non-numeric (or NaN, which `Value` equality treats as equal to itself,
/// so it cannot be dropped from an enclosure).
fn set_hull(set: &BTreeSet<Value>) -> Option<Interval> {
    let mut hull: Option<(f64, f64)> = None;
    for v in set {
        let (lo, hi) = lit_enclosure(v)?;
        hull = Some(match hull {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
    }
    hull.map(|(lo, hi)| Interval::closed(lo, hi))
}

/// Extract the per-detail-column value bounds implied by the **top-level
/// conjunction** of `theta` (sound, incomplete: predicates under `OR`/`NOT`
/// contribute nothing). Recognized shapes, in either orientation:
/// `r.c <op> lit` for `=`, `<`, `<=`, `>`, `>=` with numeric literals,
/// `r.c = 'str'`, and `r.c IN {numeric…}` (hulled). Integer literals beyond
/// 2^53 are widened outward so `f64` rounding can never exclude a matching
/// row — every returned bound is a necessary condition on matching rows.
pub fn detail_bounds(theta: &Expr) -> DetailBounds {
    let mut out = DetailBounds::default();
    for c in conjuncts(theta) {
        match c {
            Expr::Binary { op, lhs, rhs } => {
                let (d, lit, op) = match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::DetailCol(d), Expr::Lit(v)) => (*d, v, *op),
                    (Expr::Lit(v), Expr::DetailCol(d)) => (*d, v, flip(*op)),
                    _ => continue,
                };
                match lit {
                    Value::Str(s) if op == BinOp::Eq => out.str_eq.push((d, s.clone())),
                    _ => {
                        if let Some(iv) = cmp_interval(op, lit) {
                            out.num.push((d, iv));
                        }
                    }
                }
            }
            Expr::InSet { expr, set } => {
                if let Expr::DetailCol(d) = expr.as_ref() {
                    if let Some(iv) = set_hull(set) {
                        out.num.push((*d, iv));
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Residual of `theta` after removing the equi-join conjuncts in `pairs`
/// (used by the hash-based GMDJ evaluator: the hash lookup enforces the
/// equalities, the residual is checked per candidate).
pub fn residual_without_pairs(theta: &Expr, pairs: &[EqualityPair]) -> Expr {
    let remaining: Vec<Expr> = conjuncts(theta)
        .into_iter()
        .filter(|c| !is_pair_conjunct(c, pairs))
        .cloned()
        .collect();
    Expr::conjunction(remaining)
}

fn is_pair_conjunct(c: &Expr, pairs: &[EqualityPair]) -> bool {
    if let Expr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = c
    {
        match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::BaseCol(b), Expr::DetailCol(d)) | (Expr::DetailCol(d), Expr::BaseCol(b)) => {
                return pairs.iter().any(|p| p.base_col == *b && p.detail_col == *d);
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// θ: b.0 = r.0 AND b.1 = r.1 AND r.2 >= b.2
    fn example_theta() -> Expr {
        Expr::base(0)
            .eq(Expr::detail(0))
            .and(Expr::base(1).eq(Expr::detail(1)))
            .and(Expr::detail(2).ge(Expr::base(2)))
    }

    #[test]
    fn conjunct_splitting_flattens_nested_ands() {
        let t = example_theta();
        assert_eq!(conjuncts(&t).len(), 3);
        // A single non-AND node is its own conjunct.
        assert_eq!(conjuncts(&Expr::lit(true)).len(), 1);
    }

    #[test]
    fn disjunct_splitting() {
        let t = Expr::lit(true)
            .or(Expr::lit(false))
            .or(Expr::base(0).is_null());
        assert_eq!(disjuncts(&t).len(), 3);
        assert_eq!(disjuncts(&Expr::lit(true)).len(), 1);
    }

    #[test]
    fn column_usage_sets() {
        let t = example_theta();
        assert_eq!(base_cols_used(&t), BTreeSet::from([0, 1, 2]));
        assert_eq!(detail_cols_used(&t), BTreeSet::from([0, 1, 2]));
        let e = Expr::base(3).in_set([skalla_types::Value::Int(1)]);
        assert_eq!(base_cols_used(&e), BTreeSet::from([3]));
    }

    #[test]
    fn equality_pairs_both_orientations() {
        let t = Expr::detail(5)
            .eq(Expr::base(2))
            .and(Expr::base(0).eq(Expr::detail(1)));
        let ps = equality_pairs(&t);
        assert_eq!(
            ps,
            vec![
                EqualityPair {
                    base_col: 2,
                    detail_col: 5
                },
                EqualityPair {
                    base_col: 0,
                    detail_col: 1
                }
            ]
        );
    }

    #[test]
    fn equality_pairs_ignore_non_joins() {
        // b.0 = b.1 and r.0 = 5 are not equi-join pairs.
        let t = Expr::base(0)
            .eq(Expr::base(1))
            .and(Expr::detail(0).eq(Expr::lit(5)));
        assert!(equality_pairs(&t).is_empty());
        // Pairs under an OR are not top-level conjuncts.
        let t = Expr::base(0).eq(Expr::detail(0)).or(Expr::lit(true));
        assert!(equality_pairs(&t).is_empty());
    }

    #[test]
    fn key_equality_entailment() {
        let t = example_theta();
        assert_eq!(entails_key_equality(&t, &[0, 1]), Some(vec![0, 1]));
        assert_eq!(entails_key_equality(&t, &[1]), Some(vec![1]));
        assert_eq!(entails_key_equality(&t, &[0, 1, 2]), None); // b.2 only in >=
        assert_eq!(entails_key_equality(&t, &[]), Some(vec![]));
    }

    #[test]
    fn detail_bounds_extraction() {
        use skalla_types::Value;
        // r.2 >= 5 AND r.3 < 2.5 AND r.4 = 'x' AND b.0 = r.0 AND (r.2 > 9 OR true)
        let t = Expr::detail(2)
            .ge(Expr::lit(5))
            .and(Expr::lit(2.5).gt(Expr::detail(3)))
            .and(Expr::detail(4).eq(Expr::lit("x")))
            .and(Expr::base(0).eq(Expr::detail(0)))
            .and(Expr::detail(2).gt(Expr::lit(9)).or(Expr::lit(true)));
        let b = detail_bounds(&t);
        assert_eq!(b.num.len(), 2);
        assert_eq!(b.num[0], (2, Interval::at_least(5.0)));
        assert_eq!(b.num[1], (3, Interval::less_than(2.5)));
        assert_eq!(b.str_eq, vec![(4, std::sync::Arc::from("x"))]);
        assert!(!b.is_empty());
        // Nothing extractable: join conjunct + disjunction only.
        let t = Expr::base(0).eq(Expr::detail(0));
        assert!(detail_bounds(&t).is_empty());
        // IN-set hull.
        let t = Expr::detail(1).in_set([Value::Int(3), Value::Int(7), Value::Float(5.5)]);
        let b = detail_bounds(&t);
        assert_eq!(b.num, vec![(1, Interval::closed(3.0, 7.0))]);
        // NaN and strings poison the hull / comparison.
        let t = Expr::detail(1).in_set([Value::Int(3), Value::Float(f64::NAN)]);
        assert!(detail_bounds(&t).is_empty());
        let t = Expr::detail(1).lt(Expr::lit(f64::NAN));
        assert!(detail_bounds(&t).is_empty());
    }

    #[test]
    fn detail_bounds_widen_big_int_literals() {
        let big = (1i64 << 60) + 1; // rounds down as f64
        let b = detail_bounds(&Expr::detail(0).eq(Expr::lit(big)));
        let (_, iv) = &b.num[0];
        // The enclosure must contain the true value: [2^60, next_up(2^60)].
        assert!(iv.contains(big as f64));
        assert_ne!(*iv, Interval::singleton(big as f64));
    }

    #[test]
    fn residual_removes_only_listed_pairs() {
        let t = example_theta();
        let pairs = vec![EqualityPair {
            base_col: 0,
            detail_col: 0,
        }];
        let res = residual_without_pairs(&t, &pairs);
        let cs = conjuncts(&res);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].to_string(), "(b.1 = r.1)");

        let all = equality_pairs(&t);
        let res = residual_without_pairs(&t, &all);
        assert_eq!(conjuncts(&res).len(), 1);
        assert_eq!(res.to_string(), "(r.2 >= b.2)");

        // Removing every conjunct yields TRUE.
        let only_eq = Expr::base(0).eq(Expr::detail(0));
        let res = residual_without_pairs(&only_eq, &equality_pairs(&only_eq));
        assert_eq!(res, Expr::lit(true));
    }
}
