//! Compilation of typed expressions into vectorized kernels.
//!
//! The tree-walking interpreter in [`crate::eval()`] materializes a `Value`
//! per AST node per row. Following the vectorized-execution design of
//! MonetDB/X100 (Boncz et al., CIDR 2005), this module lowers a
//! type-checked [`Expr`] into a tree of *type-specialized kernels* that
//! operate on columnar batches (~[`BATCH_ROWS`] rows at a time): each
//! kernel consumes and produces [`Lanes`] — a typed value vector plus
//! null/error masks — so the hot loop is a tight monomorphic pass over
//! `&[i64]` / `&[f64]` slices instead of per-row enum dispatch.
//!
//! ## Semantics
//!
//! Compiled evaluation is *bit-compatible* with the interpreter:
//!
//! * SQL three-valued logic: nulls propagate through arithmetic and
//!   comparisons; `AND`/`OR` are Kleene with the interpreter's
//!   short-circuit behaviour (a definite `FALSE` left operand of `AND`
//!   masks errors in the right operand, mirroring lazy evaluation).
//! * Comparisons use the same total order as [`Value`]'s `Ord`:
//!   float/float via [`total_cmp_f64`], mixed int/float via the exact
//!   [`cmp_int_float`] (no lossy `as f64` cast).
//! * Runtime errors (division by zero, integer overflow, …) are tracked
//!   per lane in an error mask instead of aborting the batch. Callers
//!   resolve error lanes by re-running the interpreter on just those rows,
//!   which surfaces the interpreter's exact error (or its value, for rows
//!   where e.g. short-circuiting avoids the error).
//!
//! ## Coverage
//!
//! `compile` returns `None` for expressions outside the supported subset
//! (e.g. `IN` sets with float needles); callers fall back to the
//! interpreter. Supported expressions cover every construct the planner
//! emits for datacube and TPC-R workloads.

use std::cmp::Ordering;
use std::sync::Arc;

use skalla_types::{
    cmp_int_float, exact_i64, total_cmp_f64, DataType, Result, Schema, SkallaError, Value,
};

use crate::expr::{BinOp, Expr, UnOp};

/// Number of rows processed per batch. Large enough to amortize per-batch
/// allocations, small enough to keep all lanes in L1/L2 cache.
pub const BATCH_ROWS: usize = 1024;

/// A zero-copy typed view of a contiguous range of column data.
#[derive(Debug, Clone, Copy)]
pub enum ColSlice<'a> {
    /// Int64 data.
    I64(&'a [i64]),
    /// Float64 data.
    F64(&'a [f64]),
    /// Utf8 data.
    Str(&'a [Arc<str>]),
    /// Bool data.
    Bool(&'a [bool]),
}

/// A zero-copy view of one column over a batch of rows: typed data plus an
/// optional validity mask (`nulls[i]` is `true` when row `i` is NULL; the
/// data slot at a null position holds an arbitrary placeholder).
#[derive(Debug, Clone, Copy)]
pub struct ColumnBatch<'a> {
    /// The typed data slice.
    pub data: ColSlice<'a>,
    /// Null mask, absent when the range contains no nulls.
    pub nulls: Option<&'a [bool]>,
}

impl ColumnBatch<'_> {
    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        match self.data {
            ColSlice::I64(v) => v.len(),
            ColSlice::F64(v) => v.len(),
            ColSlice::Str(v) => v.len(),
            ColSlice::Bool(v) => v.len(),
        }
    }

    /// `true` when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when row `i` of the batch is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.is_some_and(|m| m[i])
    }

    /// Materialize the value at row `i` of the batch.
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColSlice::I64(v) => Value::Int(v[i]),
            ColSlice::F64(v) => Value::Float(v[i]),
            ColSlice::Str(v) => Value::Str(v[i].clone()),
            ColSlice::Bool(v) => Value::Bool(v[i]),
        }
    }
}

/// A batch of detail rows: one [`ColumnBatch`] per column, all of length
/// `len`.
#[derive(Debug, Clone)]
pub struct Batch<'a> {
    /// Per-column views.
    pub cols: Vec<ColumnBatch<'a>>,
    /// Number of rows.
    pub len: usize,
}

impl<'a> Batch<'a> {
    /// Assemble a batch from column views (all must have `len` rows).
    pub fn new(cols: Vec<ColumnBatch<'a>>, len: usize) -> Batch<'a> {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        Batch { cols, len }
    }
}

/// The vectorized result of one kernel over one batch: a typed value per
/// lane plus null and error masks.
///
/// Mask precedence is `errs` over `nulls` over `vals`: when `errs[i]` is
/// set the other two slots for lane `i` are meaningless, and when
/// `nulls[i]` is set `vals[i]` is meaningless.
#[derive(Debug, Clone)]
pub struct Lanes<T> {
    /// Per-lane values.
    pub vals: Vec<T>,
    /// Per-lane null flags.
    pub nulls: Vec<bool>,
    /// Per-lane deferred runtime errors (resolved by re-running the
    /// interpreter on the flagged rows).
    pub errs: Vec<bool>,
}

impl<T: Clone> Lanes<T> {
    fn fill(v: T, n: usize) -> Lanes<T> {
        Lanes {
            vals: vec![v; n],
            nulls: vec![false; n],
            errs: vec![false; n],
        }
    }

    fn all_null(placeholder: T, n: usize) -> Lanes<T> {
        Lanes {
            vals: vec![placeholder; n],
            nulls: vec![true; n],
            errs: vec![false; n],
        }
    }

    fn all_err(placeholder: T, n: usize) -> Lanes<T> {
        Lanes {
            vals: vec![placeholder; n],
            nulls: vec![false; n],
            errs: vec![true; n],
        }
    }

    /// `true` when lane `i` holds a definite (non-null, non-error) value.
    pub fn ok(&self, i: usize) -> bool {
        !self.errs[i] && !self.nulls[i]
    }

    /// `true` when any lane carries a deferred error.
    pub fn has_errs(&self) -> bool {
        self.errs.iter().any(|&e| e)
    }
}

impl<T> Default for Lanes<T> {
    fn default() -> Lanes<T> {
        Lanes {
            vals: Vec::new(),
            nulls: Vec::new(),
            errs: Vec::new(),
        }
    }
}

/// Gather column `col` of a run of row slices into float lanes.
///
/// `Value::Float` fills `vals`, `Value::Null` sets the null mask, and any
/// other variant sets the error mask (callers that pre-validate their rows
/// never observe one). The output lanes are cleared and refilled, so a
/// caller can reuse one scratch `Lanes` across batches.
pub fn gather_f64_rows(rows: &[&[Value]], col: usize, out: &mut Lanes<f64>) {
    out.vals.clear();
    out.nulls.clear();
    out.errs.clear();
    out.vals.reserve(rows.len());
    out.nulls.reserve(rows.len());
    out.errs.reserve(rows.len());
    for row in rows {
        match &row[col] {
            Value::Float(x) => {
                out.vals.push(*x);
                out.nulls.push(false);
                out.errs.push(false);
            }
            Value::Null => {
                out.vals.push(0.0);
                out.nulls.push(true);
                out.errs.push(false);
            }
            _ => {
                out.vals.push(0.0);
                out.nulls.push(false);
                out.errs.push(true);
            }
        }
    }
}

/// Gather column `col` of a run of row slices into integer lanes; the
/// same masking contract as [`gather_f64_rows`], for `Value::Int`.
pub fn gather_i64_rows(rows: &[&[Value]], col: usize, out: &mut Lanes<i64>) {
    out.vals.clear();
    out.nulls.clear();
    out.errs.clear();
    out.vals.reserve(rows.len());
    out.nulls.reserve(rows.len());
    out.errs.reserve(rows.len());
    for row in rows {
        match &row[col] {
            Value::Int(x) => {
                out.vals.push(*x);
                out.nulls.push(false);
                out.errs.push(false);
            }
            Value::Null => {
                out.vals.push(0);
                out.nulls.push(true);
                out.errs.push(false);
            }
            _ => {
                out.vals.push(0);
                out.nulls.push(false);
                out.errs.push(true);
            }
        }
    }
}

/// Evaluation context: the current base tuple plus the detail batch.
struct Ctx<'a, 'b> {
    base: &'a [Value],
    batch: &'a Batch<'b>,
}

// ---------------------------------------------------------------------------
// Typed kernel trees
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum I64Kernel {
    Const(i64),
    Base(usize),
    Detail(usize),
    Add(Box<(I64Kernel, I64Kernel)>),
    Sub(Box<(I64Kernel, I64Kernel)>),
    Mul(Box<(I64Kernel, I64Kernel)>),
    Mod(Box<(I64Kernel, I64Kernel)>),
    Neg(Box<I64Kernel>),
}

#[derive(Debug, Clone)]
enum F64Kernel {
    Const(f64),
    Base(usize),
    Detail(usize),
    FromI64(Box<I64Kernel>),
    Add(Box<(F64Kernel, F64Kernel)>),
    Sub(Box<(F64Kernel, F64Kernel)>),
    Mul(Box<(F64Kernel, F64Kernel)>),
    Div(Box<(F64Kernel, F64Kernel)>),
    Neg(Box<F64Kernel>),
}

#[derive(Debug, Clone)]
enum StrKernel {
    Const(Arc<str>),
    Base(usize),
    Detail(usize),
}

#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn from_bin(op: BinOp) -> Option<CmpOp> {
        Some(match op {
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            _ => return None,
        })
    }

    fn apply(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

#[derive(Debug, Clone)]
enum BoolKernel {
    Const(bool),
    Base(usize),
    Detail(usize),
    CmpI(CmpOp, Box<(I64Kernel, I64Kernel)>),
    CmpF(CmpOp, Box<(F64Kernel, F64Kernel)>),
    CmpIF(CmpOp, Box<(I64Kernel, F64Kernel)>),
    CmpFI(CmpOp, Box<(F64Kernel, I64Kernel)>),
    CmpS(CmpOp, Box<(StrKernel, StrKernel)>),
    CmpB(CmpOp, Box<(BoolKernel, BoolKernel)>),
    And(Box<(BoolKernel, BoolKernel)>),
    Or(Box<(BoolKernel, BoolKernel)>),
    Not(Box<BoolKernel>),
    IsNullI(Box<I64Kernel>),
    IsNullF(Box<F64Kernel>),
    IsNullS(Box<StrKernel>),
    IsNullB(Box<BoolKernel>),
    InSetI(Box<I64Kernel>, Vec<i64>),
    InSetS(Box<StrKernel>, Vec<Arc<str>>),
}

// ---------------------------------------------------------------------------
// Kernel evaluation
// ---------------------------------------------------------------------------

fn detail_masks(col: &ColumnBatch<'_>, n: usize) -> (Vec<bool>, Vec<bool>) {
    let nulls = col.nulls.map_or_else(|| vec![false; n], <[bool]>::to_vec);
    (nulls, vec![false; n])
}

/// Lane-wise arithmetic with error (`None`) detection; nulls propagate.
fn arith<T: Copy>(mut l: Lanes<T>, r: Lanes<T>, f: impl Fn(T, T) -> Option<T>) -> Lanes<T> {
    for i in 0..l.vals.len() {
        if l.errs[i] || r.errs[i] {
            l.errs[i] = true;
        } else if l.nulls[i] || r.nulls[i] {
            l.nulls[i] = true;
        } else {
            match f(l.vals[i], r.vals[i]) {
                Some(v) => l.vals[i] = v,
                None => l.errs[i] = true,
            }
        }
    }
    l
}

fn cmp_lanes<A, B>(
    op: CmpOp,
    l: &Lanes<A>,
    r: &Lanes<B>,
    ord: impl Fn(&A, &B) -> Ordering,
) -> Lanes<bool> {
    let n = l.vals.len();
    let mut out = Lanes::fill(false, n);
    for i in 0..n {
        if l.errs[i] || r.errs[i] {
            out.errs[i] = true;
        } else if l.nulls[i] || r.nulls[i] {
            out.nulls[i] = true;
        } else {
            out.vals[i] = op.apply(ord(&l.vals[i], &r.vals[i]));
        }
    }
    out
}

/// Kleene AND with the interpreter's short-circuit error behaviour: a
/// definite FALSE left operand masks right-operand errors.
fn and_lanes(l: &Lanes<bool>, r: &Lanes<bool>) -> Lanes<bool> {
    let n = l.vals.len();
    let mut out = Lanes::fill(false, n);
    for i in 0..n {
        if l.errs[i] {
            out.errs[i] = true;
        } else if !l.nulls[i] && !l.vals[i] {
            // definite FALSE: rhs never evaluated by the interpreter
        } else if r.errs[i] {
            out.errs[i] = true;
        } else if !r.nulls[i] && !r.vals[i] {
            // FALSE
        } else if l.nulls[i] || r.nulls[i] {
            out.nulls[i] = true;
        } else {
            out.vals[i] = true;
        }
    }
    out
}

/// Kleene OR, dual of [`and_lanes`] (definite TRUE short-circuits).
fn or_lanes(l: &Lanes<bool>, r: &Lanes<bool>) -> Lanes<bool> {
    let n = l.vals.len();
    let mut out = Lanes::fill(false, n);
    for i in 0..n {
        if l.errs[i] {
            out.errs[i] = true;
        } else if !l.nulls[i] && l.vals[i] {
            out.vals[i] = true;
        } else if r.errs[i] {
            out.errs[i] = true;
        } else if !r.nulls[i] && r.vals[i] {
            out.vals[i] = true;
        } else if l.nulls[i] || r.nulls[i] {
            out.nulls[i] = true;
        }
    }
    out
}

fn is_null_lanes<T>(l: &Lanes<T>) -> Lanes<bool> {
    let n = l.vals.len();
    let mut out = Lanes::fill(false, n);
    for i in 0..n {
        if l.errs[i] {
            out.errs[i] = true;
        } else {
            out.vals[i] = l.nulls[i];
        }
    }
    out
}

impl I64Kernel {
    fn eval(&self, ctx: &Ctx<'_, '_>) -> Lanes<i64> {
        let n = ctx.batch.len;
        match self {
            I64Kernel::Const(x) => Lanes::fill(*x, n),
            I64Kernel::Base(i) => match ctx.base.get(*i) {
                Some(Value::Int(x)) => Lanes::fill(*x, n),
                Some(Value::Null) => Lanes::all_null(0, n),
                _ => Lanes::all_err(0, n),
            },
            I64Kernel::Detail(c) => match ctx.batch.cols.get(*c) {
                Some(col) => match col.data {
                    ColSlice::I64(vals) => {
                        let (nulls, errs) = detail_masks(col, n);
                        Lanes {
                            vals: vals.to_vec(),
                            nulls,
                            errs,
                        }
                    }
                    _ => Lanes::all_err(0, n),
                },
                None => Lanes::all_err(0, n),
            },
            I64Kernel::Add(p) => arith(p.0.eval(ctx), p.1.eval(ctx), i64::checked_add),
            I64Kernel::Sub(p) => arith(p.0.eval(ctx), p.1.eval(ctx), i64::checked_sub),
            I64Kernel::Mul(p) => arith(p.0.eval(ctx), p.1.eval(ctx), i64::checked_mul),
            I64Kernel::Mod(p) => arith(p.0.eval(ctx), p.1.eval(ctx), |a, b| {
                if b == 0 {
                    None
                } else {
                    Some(a.rem_euclid(b))
                }
            }),
            I64Kernel::Neg(k) => {
                let mut l = k.eval(ctx);
                for i in 0..n {
                    if l.ok(i) {
                        match l.vals[i].checked_neg() {
                            Some(v) => l.vals[i] = v,
                            None => l.errs[i] = true,
                        }
                    }
                }
                l
            }
        }
    }
}

impl F64Kernel {
    fn eval(&self, ctx: &Ctx<'_, '_>) -> Lanes<f64> {
        let n = ctx.batch.len;
        match self {
            F64Kernel::Const(x) => Lanes::fill(*x, n),
            F64Kernel::Base(i) => match ctx.base.get(*i) {
                Some(Value::Float(x)) => Lanes::fill(*x, n),
                Some(Value::Null) => Lanes::all_null(0.0, n),
                _ => Lanes::all_err(0.0, n),
            },
            F64Kernel::Detail(c) => match ctx.batch.cols.get(*c) {
                Some(col) => match col.data {
                    ColSlice::F64(vals) => {
                        let (nulls, errs) = detail_masks(col, n);
                        Lanes {
                            vals: vals.to_vec(),
                            nulls,
                            errs,
                        }
                    }
                    _ => Lanes::all_err(0.0, n),
                },
                None => Lanes::all_err(0.0, n),
            },
            F64Kernel::FromI64(k) => {
                let l = k.eval(ctx);
                Lanes {
                    vals: l.vals.iter().map(|&v| v as f64).collect(),
                    nulls: l.nulls,
                    errs: l.errs,
                }
            }
            F64Kernel::Add(p) => arith(p.0.eval(ctx), p.1.eval(ctx), |a, b| Some(a + b)),
            F64Kernel::Sub(p) => arith(p.0.eval(ctx), p.1.eval(ctx), |a, b| Some(a - b)),
            F64Kernel::Mul(p) => arith(p.0.eval(ctx), p.1.eval(ctx), |a, b| Some(a * b)),
            F64Kernel::Div(p) => arith(p.0.eval(ctx), p.1.eval(ctx), |a, b| {
                if b == 0.0 {
                    None
                } else {
                    Some(a / b)
                }
            }),
            F64Kernel::Neg(k) => {
                let mut l = k.eval(ctx);
                for i in 0..n {
                    if l.ok(i) {
                        l.vals[i] = -l.vals[i];
                    }
                }
                l
            }
        }
    }
}

impl StrKernel {
    fn eval(&self, ctx: &Ctx<'_, '_>) -> Lanes<Arc<str>> {
        let n = ctx.batch.len;
        let empty: Arc<str> = Arc::from("");
        match self {
            StrKernel::Const(s) => Lanes::fill(s.clone(), n),
            StrKernel::Base(i) => match ctx.base.get(*i) {
                Some(Value::Str(s)) => Lanes::fill(s.clone(), n),
                Some(Value::Null) => Lanes::all_null(empty, n),
                _ => Lanes::all_err(empty, n),
            },
            StrKernel::Detail(c) => match ctx.batch.cols.get(*c) {
                Some(col) => match col.data {
                    ColSlice::Str(vals) => {
                        let (nulls, errs) = detail_masks(col, n);
                        Lanes {
                            vals: vals.to_vec(),
                            nulls,
                            errs,
                        }
                    }
                    _ => Lanes::all_err(empty, n),
                },
                None => Lanes::all_err(empty, n),
            },
        }
    }
}

impl BoolKernel {
    fn eval(&self, ctx: &Ctx<'_, '_>) -> Lanes<bool> {
        let n = ctx.batch.len;
        match self {
            BoolKernel::Const(b) => Lanes::fill(*b, n),
            BoolKernel::Base(i) => match ctx.base.get(*i) {
                Some(Value::Bool(b)) => Lanes::fill(*b, n),
                Some(Value::Null) => Lanes::all_null(false, n),
                _ => Lanes::all_err(false, n),
            },
            BoolKernel::Detail(c) => match ctx.batch.cols.get(*c) {
                Some(col) => match col.data {
                    ColSlice::Bool(vals) => {
                        let (nulls, errs) = detail_masks(col, n);
                        Lanes {
                            vals: vals.to_vec(),
                            nulls,
                            errs,
                        }
                    }
                    _ => Lanes::all_err(false, n),
                },
                None => Lanes::all_err(false, n),
            },
            BoolKernel::CmpI(op, p) => {
                cmp_lanes(*op, &p.0.eval(ctx), &p.1.eval(ctx), |a, b| a.cmp(b))
            }
            BoolKernel::CmpF(op, p) => cmp_lanes(*op, &p.0.eval(ctx), &p.1.eval(ctx), |a, b| {
                total_cmp_f64(*a, *b)
            }),
            BoolKernel::CmpIF(op, p) => cmp_lanes(*op, &p.0.eval(ctx), &p.1.eval(ctx), |a, b| {
                cmp_int_float(*a, *b)
            }),
            BoolKernel::CmpFI(op, p) => cmp_lanes(*op, &p.0.eval(ctx), &p.1.eval(ctx), |a, b| {
                cmp_int_float(*b, *a).reverse()
            }),
            BoolKernel::CmpS(op, p) => {
                cmp_lanes(*op, &p.0.eval(ctx), &p.1.eval(ctx), |a, b| a.cmp(b))
            }
            BoolKernel::CmpB(op, p) => {
                cmp_lanes(*op, &p.0.eval(ctx), &p.1.eval(ctx), |a, b| a.cmp(b))
            }
            BoolKernel::And(p) => and_lanes(&p.0.eval(ctx), &p.1.eval(ctx)),
            BoolKernel::Or(p) => or_lanes(&p.0.eval(ctx), &p.1.eval(ctx)),
            BoolKernel::Not(k) => {
                let mut l = k.eval(ctx);
                for i in 0..n {
                    if l.ok(i) {
                        l.vals[i] = !l.vals[i];
                    }
                }
                l
            }
            BoolKernel::IsNullI(k) => is_null_lanes(&k.eval(ctx)),
            BoolKernel::IsNullF(k) => is_null_lanes(&k.eval(ctx)),
            BoolKernel::IsNullS(k) => is_null_lanes(&k.eval(ctx)),
            BoolKernel::IsNullB(k) => is_null_lanes(&k.eval(ctx)),
            BoolKernel::InSetI(k, hay) => {
                let l = k.eval(ctx);
                let mut out = Lanes::fill(false, n);
                for i in 0..n {
                    if l.errs[i] {
                        out.errs[i] = true;
                    } else if l.nulls[i] {
                        out.nulls[i] = true;
                    } else {
                        out.vals[i] = hay.binary_search(&l.vals[i]).is_ok();
                    }
                }
                out
            }
            BoolKernel::InSetS(k, hay) => {
                let l = k.eval(ctx);
                let mut out = Lanes::fill(false, n);
                for i in 0..n {
                    if l.errs[i] {
                        out.errs[i] = true;
                    } else if l.nulls[i] {
                        out.nulls[i] = true;
                    } else {
                        out.vals[i] = hay.binary_search(&l.vals[i]).is_ok();
                    }
                }
                out
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ScalarKernel {
    I64(I64Kernel),
    F64(F64Kernel),
    Str(StrKernel),
    Bool(BoolKernel),
}

fn to_f64(k: ScalarKernel) -> Option<F64Kernel> {
    match k {
        ScalarKernel::I64(k) => Some(F64Kernel::FromI64(Box::new(k))),
        ScalarKernel::F64(k) => Some(k),
        _ => None,
    }
}

fn compile_kernel(e: &Expr, base: &Schema, detail: &Schema) -> Option<ScalarKernel> {
    use ScalarKernel as K;
    Some(match e {
        Expr::Lit(Value::Int(x)) => K::I64(I64Kernel::Const(*x)),
        Expr::Lit(Value::Float(x)) => K::F64(F64Kernel::Const(*x)),
        Expr::Lit(Value::Str(s)) => K::Str(StrKernel::Const(s.clone())),
        Expr::Lit(Value::Bool(b)) => K::Bool(BoolKernel::Const(*b)),
        // NULL literals fail typechecking; the interpreter handles them.
        Expr::Lit(Value::Null) => return None,
        Expr::BaseCol(i) => match base.fields().get(*i)?.dtype {
            DataType::Int64 => K::I64(I64Kernel::Base(*i)),
            DataType::Float64 => K::F64(F64Kernel::Base(*i)),
            DataType::Utf8 => K::Str(StrKernel::Base(*i)),
            DataType::Bool => K::Bool(BoolKernel::Base(*i)),
        },
        Expr::DetailCol(i) => match detail.fields().get(*i)?.dtype {
            DataType::Int64 => K::I64(I64Kernel::Detail(*i)),
            DataType::Float64 => K::F64(F64Kernel::Detail(*i)),
            DataType::Utf8 => K::Str(StrKernel::Detail(*i)),
            DataType::Bool => K::Bool(BoolKernel::Detail(*i)),
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = compile_kernel(lhs, base, detail)?;
            let r = compile_kernel(rhs, base, detail)?;
            compile_binary(*op, l, r)?
        }
        Expr::Unary { op, expr } => {
            let k = compile_kernel(expr, base, detail)?;
            match op {
                UnOp::Neg => match k {
                    K::I64(k) => K::I64(I64Kernel::Neg(Box::new(k))),
                    K::F64(k) => K::F64(F64Kernel::Neg(Box::new(k))),
                    _ => return None,
                },
                UnOp::Not => match k {
                    K::Bool(k) => K::Bool(BoolKernel::Not(Box::new(k))),
                    _ => return None,
                },
                UnOp::IsNull => K::Bool(match k {
                    K::I64(k) => BoolKernel::IsNullI(Box::new(k)),
                    K::F64(k) => BoolKernel::IsNullF(Box::new(k)),
                    K::Str(k) => BoolKernel::IsNullS(Box::new(k)),
                    K::Bool(k) => BoolKernel::IsNullB(Box::new(k)),
                }),
            }
        }
        Expr::InSet { expr, set } => {
            let k = compile_kernel(expr, base, detail)?;
            match k {
                // An integer needle can only equal Int members or Float
                // members whose value is exactly an integer.
                K::I64(k) => {
                    let mut hay: Vec<i64> = set
                        .iter()
                        .filter_map(|v| match v {
                            Value::Int(x) => Some(*x),
                            Value::Float(f) => exact_i64(*f),
                            _ => None,
                        })
                        .collect();
                    hay.sort_unstable();
                    hay.dedup();
                    K::Bool(BoolKernel::InSetI(Box::new(k), hay))
                }
                // A string needle can only equal Str members.
                K::Str(k) => {
                    let mut hay: Vec<Arc<str>> = set
                        .iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .collect();
                    hay.sort();
                    hay.dedup();
                    K::Bool(BoolKernel::InSetS(Box::new(k), hay))
                }
                // Exact float/bool set semantics stay on the interpreter.
                _ => return None,
            }
        }
    })
}

fn compile_binary(op: BinOp, l: ScalarKernel, r: ScalarKernel) -> Option<ScalarKernel> {
    use ScalarKernel as K;
    if op.is_comparison() {
        let c = CmpOp::from_bin(op)?;
        return Some(K::Bool(match (l, r) {
            (K::I64(a), K::I64(b)) => BoolKernel::CmpI(c, Box::new((a, b))),
            (K::F64(a), K::F64(b)) => BoolKernel::CmpF(c, Box::new((a, b))),
            (K::I64(a), K::F64(b)) => BoolKernel::CmpIF(c, Box::new((a, b))),
            (K::F64(a), K::I64(b)) => BoolKernel::CmpFI(c, Box::new((a, b))),
            (K::Str(a), K::Str(b)) => BoolKernel::CmpS(c, Box::new((a, b))),
            (K::Bool(a), K::Bool(b)) => BoolKernel::CmpB(c, Box::new((a, b))),
            _ => return None,
        }));
    }
    Some(match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => match (l, r) {
            (K::I64(a), K::I64(b)) => {
                let p = Box::new((a, b));
                K::I64(match op {
                    BinOp::Add => I64Kernel::Add(p),
                    BinOp::Sub => I64Kernel::Sub(p),
                    _ => I64Kernel::Mul(p),
                })
            }
            (a, b) => {
                let p = Box::new((to_f64(a)?, to_f64(b)?));
                K::F64(match op {
                    BinOp::Add => F64Kernel::Add(p),
                    BinOp::Sub => F64Kernel::Sub(p),
                    _ => F64Kernel::Mul(p),
                })
            }
        },
        // Division always runs in f64, matching the interpreter's `as_f64`
        // of both operands.
        BinOp::Div => K::F64(F64Kernel::Div(Box::new((to_f64(l)?, to_f64(r)?)))),
        BinOp::Mod => match (l, r) {
            (K::I64(a), K::I64(b)) => K::I64(I64Kernel::Mod(Box::new((a, b)))),
            _ => return None,
        },
        BinOp::And => match (l, r) {
            (K::Bool(a), K::Bool(b)) => K::Bool(BoolKernel::And(Box::new((a, b)))),
            _ => return None,
        },
        BinOp::Or => match (l, r) {
            (K::Bool(a), K::Bool(b)) => K::Bool(BoolKernel::Or(Box::new((a, b)))),
            _ => return None,
        },
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Public compiled programs
// ---------------------------------------------------------------------------

/// The typed lanes produced by a [`CompiledScalar`] over one batch.
#[derive(Debug, Clone)]
pub enum ScalarLanes {
    /// Int64 lanes.
    I64(Lanes<i64>),
    /// Float64 lanes.
    F64(Lanes<f64>),
    /// Utf8 lanes.
    Str(Lanes<Arc<str>>),
    /// Bool lanes.
    Bool(Lanes<bool>),
}

impl ScalarLanes {
    /// Number of lanes.
    pub fn len(&self) -> usize {
        match self {
            ScalarLanes::I64(l) => l.vals.len(),
            ScalarLanes::F64(l) => l.vals.len(),
            ScalarLanes::Str(l) => l.vals.len(),
            ScalarLanes::Bool(l) => l.vals.len(),
        }
    }

    /// `true` when there are no lanes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when lane `i` carries a deferred error.
    pub fn is_err(&self, i: usize) -> bool {
        match self {
            ScalarLanes::I64(l) => l.errs[i],
            ScalarLanes::F64(l) => l.errs[i],
            ScalarLanes::Str(l) => l.errs[i],
            ScalarLanes::Bool(l) => l.errs[i],
        }
    }

    /// `true` when lane `i` is NULL (meaningless when the lane is an
    /// error — check [`ScalarLanes::is_err`] first).
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ScalarLanes::I64(l) => l.nulls[i],
            ScalarLanes::F64(l) => l.nulls[i],
            ScalarLanes::Str(l) => l.nulls[i],
            ScalarLanes::Bool(l) => l.nulls[i],
        }
    }

    /// `true` when any lane carries a deferred error.
    pub fn has_errs(&self) -> bool {
        match self {
            ScalarLanes::I64(l) => l.has_errs(),
            ScalarLanes::F64(l) => l.has_errs(),
            ScalarLanes::Str(l) => l.has_errs(),
            ScalarLanes::Bool(l) => l.has_errs(),
        }
    }

    /// Overwrite lane `i` with an interpreter-produced value (used when
    /// resolving deferred error lanes). Integers coerce into float lanes,
    /// matching the interpreter's `as_f64` contexts.
    pub fn set(&mut self, i: usize, v: &Value) -> Result<()> {
        match (&mut *self, v) {
            (_, Value::Null) => match self {
                ScalarLanes::I64(l) => {
                    l.nulls[i] = true;
                    l.errs[i] = false;
                }
                ScalarLanes::F64(l) => {
                    l.nulls[i] = true;
                    l.errs[i] = false;
                }
                ScalarLanes::Str(l) => {
                    l.nulls[i] = true;
                    l.errs[i] = false;
                }
                ScalarLanes::Bool(l) => {
                    l.nulls[i] = true;
                    l.errs[i] = false;
                }
            },
            (ScalarLanes::I64(l), Value::Int(x)) => {
                l.vals[i] = *x;
                l.nulls[i] = false;
                l.errs[i] = false;
            }
            (ScalarLanes::F64(l), Value::Float(x)) => {
                l.vals[i] = *x;
                l.nulls[i] = false;
                l.errs[i] = false;
            }
            (ScalarLanes::F64(l), Value::Int(x)) => {
                l.vals[i] = *x as f64;
                l.nulls[i] = false;
                l.errs[i] = false;
            }
            (ScalarLanes::Str(l), Value::Str(s)) => {
                l.vals[i] = s.clone();
                l.nulls[i] = false;
                l.errs[i] = false;
            }
            (ScalarLanes::Bool(l), Value::Bool(b)) => {
                l.vals[i] = *b;
                l.nulls[i] = false;
                l.errs[i] = false;
            }
            _ => {
                return Err(SkallaError::type_error(format!(
                    "cannot patch compiled lane with {v}"
                )))
            }
        }
        Ok(())
    }
}

/// A compiled scalar program (e.g. an aggregate argument): evaluates to one
/// typed value per detail row of a batch.
#[derive(Debug, Clone)]
pub struct CompiledScalar {
    kernel: ScalarKernel,
}

impl CompiledScalar {
    /// Lower `expr` into a typed kernel tree against the given schemas, or
    /// `None` when the expression falls outside the compiled subset.
    pub fn compile(expr: &Expr, base: &Schema, detail: &Schema) -> Option<CompiledScalar> {
        Some(CompiledScalar {
            kernel: compile_kernel(expr, base, detail)?,
        })
    }

    /// The static result type of the program.
    pub fn data_type(&self) -> DataType {
        match &self.kernel {
            ScalarKernel::I64(_) => DataType::Int64,
            ScalarKernel::F64(_) => DataType::Float64,
            ScalarKernel::Str(_) => DataType::Utf8,
            ScalarKernel::Bool(_) => DataType::Bool,
        }
    }

    /// Evaluate over one batch against the current base tuple.
    pub fn eval_batch(&self, base_row: &[Value], batch: &Batch<'_>) -> ScalarLanes {
        let ctx = Ctx {
            base: base_row,
            batch,
        };
        match &self.kernel {
            ScalarKernel::I64(k) => ScalarLanes::I64(k.eval(&ctx)),
            ScalarKernel::F64(k) => ScalarLanes::F64(k.eval(&ctx)),
            ScalarKernel::Str(k) => ScalarLanes::Str(k.eval(&ctx)),
            ScalarKernel::Bool(k) => ScalarLanes::Bool(k.eval(&ctx)),
        }
    }
}

/// A compiled predicate program: evaluates to a boolean selection per
/// detail row of a batch.
///
/// The produced [`Lanes`] follow SQL `WHERE` semantics when reduced to a
/// selection bit: a row is selected iff `vals[i] && !nulls[i] && !errs[i]`.
/// Error lanes must be resolved through the interpreter before the
/// selection is trusted (see module docs).
#[derive(Debug, Clone)]
pub struct CompiledPred {
    kernel: BoolKernel,
}

impl CompiledPred {
    /// Lower a boolean `expr` into a predicate kernel, or `None` when the
    /// expression falls outside the compiled subset (including non-boolean
    /// expressions).
    pub fn compile(expr: &Expr, base: &Schema, detail: &Schema) -> Option<CompiledPred> {
        match compile_kernel(expr, base, detail)? {
            ScalarKernel::Bool(kernel) => Some(CompiledPred { kernel }),
            _ => None,
        }
    }

    /// Evaluate over one batch against the current base tuple.
    pub fn eval_batch(&self, base_row: &[Value], batch: &Batch<'_>) -> Lanes<bool> {
        self.kernel.eval(&Ctx {
            base: base_row,
            batch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use skalla_types::Field;

    fn base_schema() -> Schema {
        Schema::new(vec![
            Field::new("bi", DataType::Int64),
            Field::new("bf", DataType::Float64),
            Field::new("bs", DataType::Utf8),
        ])
        .unwrap()
    }

    fn detail_schema() -> Schema {
        Schema::new(vec![
            Field::new("di", DataType::Int64),
            Field::new("df", DataType::Float64),
            Field::new("ds", DataType::Utf8),
            Field::new("db", DataType::Bool),
        ])
        .unwrap()
    }

    /// A hand-built 4-row batch with nulls in every column.
    struct Owned {
        ints: Vec<i64>,
        floats: Vec<f64>,
        strs: Vec<Arc<str>>,
        bools: Vec<bool>,
        int_nulls: Vec<bool>,
        float_nulls: Vec<bool>,
    }

    impl Owned {
        fn new() -> Owned {
            Owned {
                ints: vec![1, 0, -5, i64::MAX],
                floats: vec![1.5, 0.0, -0.0, f64::NAN],
                strs: vec![
                    Arc::from("a"),
                    Arc::from("b"),
                    Arc::from(""),
                    Arc::from("zz"),
                ],
                bools: vec![true, false, true, false],
                int_nulls: vec![false, true, false, false],
                float_nulls: vec![false, false, true, false],
            }
        }

        fn batch(&self) -> Batch<'_> {
            Batch::new(
                vec![
                    ColumnBatch {
                        data: ColSlice::I64(&self.ints),
                        nulls: Some(&self.int_nulls),
                    },
                    ColumnBatch {
                        data: ColSlice::F64(&self.floats),
                        nulls: Some(&self.float_nulls),
                    },
                    ColumnBatch {
                        data: ColSlice::Str(&self.strs),
                        nulls: None,
                    },
                    ColumnBatch {
                        data: ColSlice::Bool(&self.bools),
                        nulls: None,
                    },
                ],
                4,
            )
        }

        fn row(&self, i: usize) -> Vec<Value> {
            let b = self.batch();
            (0..4).map(|c| b.cols[c].value(i)).collect()
        }
    }

    /// Compiled lanes must agree with the interpreter on every lane: same
    /// value/null where the interpreter succeeds, error lane where it
    /// errors.
    fn check_agreement(expr: &Expr, base_row: &[Value]) {
        let owned = Owned::new();
        let batch = owned.batch();
        let compiled = CompiledScalar::compile(expr, &base_schema(), &detail_schema())
            .unwrap_or_else(|| panic!("`{expr}` should compile"));
        let lanes = compiled.eval_batch(base_row, &batch);
        for i in 0..batch.len {
            let r = owned.row(i);
            match eval(expr, base_row, &r) {
                Err(_) => assert!(lanes.is_err(i), "`{expr}` lane {i}: expected error lane"),
                Ok(v) => {
                    assert!(!lanes.is_err(i), "`{expr}` lane {i}: unexpected error lane");
                    let got = match &lanes {
                        ScalarLanes::I64(l) if !l.nulls[i] => Value::Int(l.vals[i]),
                        ScalarLanes::F64(l) if !l.nulls[i] => Value::Float(l.vals[i]),
                        ScalarLanes::Str(l) if !l.nulls[i] => Value::Str(l.vals[i].clone()),
                        ScalarLanes::Bool(l) if !l.nulls[i] => Value::Bool(l.vals[i]),
                        _ => Value::Null,
                    };
                    assert_eq!(got, v, "`{expr}` lane {i}");
                }
            }
        }
    }

    #[test]
    fn arithmetic_and_comparisons_agree_with_interpreter() {
        let base_row = vec![Value::Int(3), Value::Float(2.5), Value::str("m")];
        let exprs = [
            Expr::detail(0).add(Expr::lit(1)),
            Expr::detail(0).mul(Expr::detail(0)),
            Expr::detail(0).sub(Expr::base(0)),
            Expr::detail(1).add(Expr::detail(0)),
            Expr::detail(1).div(Expr::detail(0)),
            Expr::detail(0).rem(Expr::lit(3)),
            Expr::detail(0).neg(),
            Expr::detail(1).neg(),
            Expr::detail(0).lt(Expr::base(0)),
            Expr::detail(1).ge(Expr::base(1)),
            Expr::detail(0).eq(Expr::detail(1)),
            Expr::detail(1).ne(Expr::detail(0)),
            Expr::detail(2).eq(Expr::base(2)),
            Expr::detail(2).lt(Expr::lit("b")),
            Expr::detail(3).eq(Expr::lit(true)),
            Expr::detail(0).is_null(),
            Expr::detail(1).is_null(),
            Expr::detail(3).not(),
            Expr::detail(0)
                .gt(Expr::lit(0))
                .and(Expr::detail(1).lt(Expr::lit(2.0))),
            Expr::detail(0)
                .is_null()
                .or(Expr::detail(1).gt(Expr::lit(0.0))),
            Expr::detail(0).in_set([Value::Int(1), Value::Int(-5), Value::Float(7.0)]),
            Expr::detail(2).in_set([Value::str("a"), Value::str("zz")]),
        ];
        for e in &exprs {
            check_agreement(e, &base_row);
        }
    }

    #[test]
    fn null_base_columns_broadcast_null() {
        let base_row = vec![Value::Null, Value::Null, Value::Null];
        for e in [
            Expr::base(0).add(Expr::detail(0)),
            Expr::base(1).lt(Expr::detail(1)),
            Expr::base(2).eq(Expr::detail(2)),
            Expr::base(0).is_null(),
        ] {
            check_agreement(&e, &base_row);
        }
    }

    #[test]
    fn deferred_errors_match_interpreter_errors() {
        let base_row = vec![Value::Int(3), Value::Float(2.5), Value::str("m")];
        // Division by zero on lanes where detail(0) == 0.
        check_agreement(&Expr::detail(1).div(Expr::detail(0)), &base_row);
        // Integer overflow on the i64::MAX lane.
        check_agreement(&Expr::detail(0).add(Expr::lit(1)), &base_row);
        check_agreement(&Expr::detail(0).mul(Expr::lit(2)), &base_row);
        // Modulo by zero.
        check_agreement(&Expr::detail(0).rem(Expr::detail(0)), &base_row);
    }

    #[test]
    fn short_circuit_masks_rhs_errors() {
        let base_row = vec![Value::Int(3), Value::Float(2.5), Value::str("m")];
        // rhs divides by detail(0), which is 0 on lane 1 — but lane 1's
        // needle is NULL, and FALSE lhs lanes must mask the error anyway.
        let e = Expr::lit(false).and(Expr::detail(1).div(Expr::detail(0)).gt(Expr::lit(0)));
        check_agreement(&e, &base_row);
        let e = Expr::lit(true).or(Expr::detail(1).div(Expr::detail(0)).gt(Expr::lit(0)));
        check_agreement(&e, &base_row);
        // Without the guard the error lanes must surface.
        let e = Expr::lit(true).and(Expr::detail(1).div(Expr::detail(0)).gt(Expr::lit(0)));
        check_agreement(&e, &base_row);
    }

    #[test]
    fn mismatched_base_values_defer_to_interpreter() {
        // Schema says Int64 but the row carries a Float: every lane defers.
        let owned = Owned::new();
        let batch = owned.batch();
        let e = Expr::base(0).add(Expr::detail(0));
        let compiled = CompiledScalar::compile(&e, &base_schema(), &detail_schema()).unwrap();
        let lanes = compiled.eval_batch(&[Value::Float(1.5)], &batch);
        for i in 0..batch.len {
            assert!(lanes.is_err(i));
        }
    }

    #[test]
    fn unsupported_expressions_do_not_compile() {
        let b = base_schema();
        let d = detail_schema();
        // NULL literal.
        assert!(CompiledScalar::compile(&Expr::Lit(Value::Null), &b, &d).is_none());
        // Float needle IN set.
        let e = Expr::detail(1).in_set([Value::Float(1.5)]);
        assert!(CompiledScalar::compile(&e, &b, &d).is_none());
        // Type errors.
        assert!(CompiledScalar::compile(&Expr::detail(2).add(Expr::lit(1)), &b, &d).is_none());
        assert!(CompiledScalar::compile(&Expr::detail(2).lt(Expr::lit(1)), &b, &d).is_none());
        assert!(CompiledScalar::compile(&Expr::detail(0).not(), &b, &d).is_none());
        // Out-of-range columns.
        assert!(CompiledScalar::compile(&Expr::base(9), &b, &d).is_none());
        assert!(CompiledScalar::compile(&Expr::detail(9), &b, &d).is_none());
        // Non-boolean predicates.
        assert!(CompiledPred::compile(&Expr::detail(0), &b, &d).is_none());
        // Modulo over floats.
        assert!(CompiledScalar::compile(&Expr::detail(1).rem(Expr::lit(2)), &b, &d).is_none());
    }

    #[test]
    fn predicate_selection_bits() {
        let owned = Owned::new();
        let batch = owned.batch();
        // di > 0: lane 0 true, lane 1 null (reject), lane 2 false, lane 3 true.
        let e = Expr::detail(0).gt(Expr::lit(0));
        let pred = CompiledPred::compile(&e, &base_schema(), &detail_schema()).unwrap();
        let lanes = pred.eval_batch(&[], &batch);
        let sel: Vec<bool> = (0..4).map(|i| lanes.ok(i) && lanes.vals[i]).collect();
        assert_eq!(sel, vec![true, false, false, true]);
    }

    #[test]
    fn scalar_lanes_patching() {
        let owned = Owned::new();
        let batch = owned.batch();
        let e = Expr::detail(0).add(Expr::lit(1));
        let compiled = CompiledScalar::compile(&e, &base_schema(), &detail_schema()).unwrap();
        let mut lanes = compiled.eval_batch(&[], &batch);
        assert!(lanes.has_errs()); // i64::MAX + 1 overflows on lane 3
        lanes.set(3, &Value::Int(42)).unwrap();
        assert!(!lanes.has_errs());
        lanes.set(3, &Value::Null).unwrap();
        assert!(lanes.is_null(3));
        assert!(lanes.set(3, &Value::str("x")).is_err());
        assert_eq!(lanes.len(), 4);
        assert!(!lanes.is_empty());
    }

    #[test]
    fn batch_views_expose_values() {
        let owned = Owned::new();
        let batch = owned.batch();
        assert_eq!(batch.cols[0].len(), 4);
        assert!(!batch.cols[0].is_empty());
        assert!(batch.cols[0].is_null(1));
        assert_eq!(batch.cols[0].value(1), Value::Null);
        assert_eq!(batch.cols[0].value(0), Value::Int(1));
        assert_eq!(batch.cols[2].value(3), Value::str("zz"));
        assert_eq!(batch.cols[3].value(0), Value::Bool(true));
        assert_eq!(batch.cols[1].value(0), Value::Float(1.5));
    }
}
