//! Expression evaluation.
//!
//! Evaluation follows SQL semantics: any comparison or arithmetic over `NULL`
//! yields `NULL`; `AND`/`OR` use Kleene three-valued logic; a predicate holds
//! only when it evaluates to `TRUE` (`NULL` is treated as not-satisfied, as
//! in a SQL `WHERE` clause).

use skalla_types::{Result, Row, SkallaError, Value};

use crate::expr::{BinOp, Expr, UnOp};

/// Evaluate `expr` against a base tuple `b` and a detail tuple `r`.
pub fn eval(expr: &Expr, b: &[Value], r: &[Value]) -> Result<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::BaseCol(i) => b
            .get(*i)
            .cloned()
            .ok_or_else(|| SkallaError::exec(format!("base column {i} out of range"))),
        Expr::DetailCol(i) => r
            .get(*i)
            .cloned()
            .ok_or_else(|| SkallaError::exec(format!("detail column {i} out of range"))),
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, b, r),
        Expr::Unary { op, expr } => {
            let v = eval(expr, b, r)?;
            eval_unary(*op, v)
        }
        Expr::InSet { expr, set } => {
            let v = eval(expr, b, r)?;
            if v.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(set.contains(&v)))
            }
        }
    }
}

/// Evaluate an expression that references only base columns.
pub fn eval_base(expr: &Expr, b: &[Value]) -> Result<Value> {
    eval(expr, b, &[])
}

/// Evaluate an expression that references only detail columns.
pub fn eval_detail(expr: &Expr, r: &[Value]) -> Result<Value> {
    eval(expr, &[], r)
}

/// Evaluate a predicate: `true` iff the expression evaluates to `TRUE`
/// (`NULL` and `FALSE` both reject, as in SQL `WHERE`).
pub fn eval_predicate(expr: &Expr, b: &Row, r: &Row) -> Result<bool> {
    match eval(expr, b, r)? {
        Value::Bool(x) => Ok(x),
        Value::Null => Ok(false),
        other => Err(SkallaError::type_error(format!(
            "predicate evaluated to non-boolean {other}"
        ))),
    }
}

fn eval_binary(op: BinOp, lhs: &Expr, rhs: &Expr, b: &[Value], r: &[Value]) -> Result<Value> {
    // AND/OR need Kleene logic and short-circuiting, handle them first.
    match op {
        BinOp::And => {
            let l = eval(lhs, b, r)?;
            if l == Value::Bool(false) {
                return Ok(Value::Bool(false));
            }
            let rv = eval(rhs, b, r)?;
            return kleene_and(l, rv);
        }
        BinOp::Or => {
            let l = eval(lhs, b, r)?;
            if l == Value::Bool(true) {
                return Ok(Value::Bool(true));
            }
            let rv = eval(rhs, b, r)?;
            return kleene_or(l, rv);
        }
        _ => {}
    }

    let l = eval(lhs, b, r)?;
    let rv = eval(rhs, b, r)?;
    if l.is_null() || rv.is_null() {
        return Ok(Value::Null);
    }

    if op.is_comparison() {
        return eval_comparison(op, &l, &rv);
    }

    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => eval_arith(op, &l, &rv),
        BinOp::Div => {
            let x = l.as_f64()?;
            let y = rv.as_f64()?;
            if y == 0.0 {
                Err(SkallaError::arithmetic("division by zero"))
            } else {
                Ok(Value::Float(x / y))
            }
        }
        BinOp::Mod => {
            let x = l.as_int()?;
            let y = rv.as_int()?;
            if y == 0 {
                Err(SkallaError::arithmetic("modulo by zero"))
            } else {
                Ok(Value::Int(x.rem_euclid(y)))
            }
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
        _ => unreachable!("comparison handled above"),
    }
}

fn eval_comparison(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Comparisons require compatible kinds: numeric-with-numeric,
    // string-with-string, bool-with-bool.
    let compatible = matches!(
        (l, r),
        (
            Value::Int(_) | Value::Float(_),
            Value::Int(_) | Value::Float(_)
        ) | (Value::Str(_), Value::Str(_))
            | (Value::Bool(_), Value::Bool(_))
    );
    if !compatible {
        return Err(SkallaError::type_error(format!(
            "cannot compare {l} with {r}"
        )));
    }
    let ord = l.cmp(r);
    let result = match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => ord.is_ne(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!(),
    };
    Ok(Value::Bool(result))
}

fn eval_arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let res = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                _ => unreachable!(),
            };
            res.map(Value::Int)
                .ok_or_else(|| SkallaError::arithmetic(format!("integer overflow in {a} {op} {b}")))
        }
        _ => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            let res = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                _ => unreachable!(),
            };
            Ok(Value::Float(res))
        }
    }
}

fn kleene_and(l: Value, r: Value) -> Result<Value> {
    match (to_tri(l)?, to_tri(r)?) {
        (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
        (Some(true), Some(true)) => Ok(Value::Bool(true)),
        _ => Ok(Value::Null),
    }
}

fn kleene_or(l: Value, r: Value) -> Result<Value> {
    match (to_tri(l)?, to_tri(r)?) {
        (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
        (Some(false), Some(false)) => Ok(Value::Bool(false)),
        _ => Ok(Value::Null),
    }
}

fn to_tri(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(SkallaError::type_error(format!(
            "expected boolean operand, got {other}"
        ))),
    }
}

fn eval_unary(op: UnOp, v: Value) -> Result<Value> {
    match op {
        UnOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| SkallaError::arithmetic("integer overflow in negation")),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(SkallaError::type_error(format!("cannot negate {other}"))),
        },
        UnOp::Not => match to_tri(v)? {
            Some(b) => Ok(Value::Bool(!b)),
            None => Ok(Value::Null),
        },
        UnOp::IsNull => Ok(Value::Bool(v.is_null())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Row {
        vec![Value::Int(10), Value::str("web"), Value::Null]
    }

    fn r() -> Row {
        vec![Value::Int(10), Value::Float(2.5), Value::str("web")]
    }

    #[test]
    fn column_references_resolve() {
        assert_eq!(eval(&Expr::base(0), &b(), &r()).unwrap(), Value::Int(10));
        assert_eq!(
            eval(&Expr::detail(1), &b(), &r()).unwrap(),
            Value::Float(2.5)
        );
        assert!(eval(&Expr::base(9), &b(), &r()).is_err());
        assert!(eval(&Expr::detail(9), &b(), &r()).is_err());
    }

    #[test]
    fn arithmetic_mixed_types() {
        let e = Expr::base(0).add(Expr::detail(1));
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Float(12.5));
        let e = Expr::lit(3).mul(Expr::lit(4));
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Int(12));
        let e = Expr::lit(7).div(Expr::lit(2));
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Float(3.5));
        let e = Expr::lit(-7).rem(Expr::lit(3));
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Int(2)); // rem_euclid
    }

    #[test]
    fn arithmetic_errors() {
        assert!(matches!(
            eval(&Expr::lit(1).div(Expr::lit(0)), &[], &[]),
            Err(SkallaError::Arithmetic(_))
        ));
        assert!(matches!(
            eval(&Expr::lit(1).rem(Expr::lit(0)), &[], &[]),
            Err(SkallaError::Arithmetic(_))
        ));
        assert!(matches!(
            eval(&Expr::lit(i64::MAX).add(Expr::lit(1)), &[], &[]),
            Err(SkallaError::Arithmetic(_))
        ));
        assert!(matches!(
            eval(&Expr::lit(i64::MIN).neg(), &[], &[]),
            Err(SkallaError::Arithmetic(_))
        ));
    }

    #[test]
    fn null_propagates_through_arithmetic_and_comparison() {
        let e = Expr::base(2).add(Expr::lit(1));
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Null);
        let e = Expr::base(2).eq(Expr::lit(1));
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Null);
    }

    #[test]
    fn kleene_and_or() {
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        let n = Expr::Lit(Value::Null);
        assert_eq!(
            eval(&t.clone().and(n.clone()), &[], &[]).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&f.clone().and(n.clone()), &[], &[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&n.clone().and(f.clone()), &[], &[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&t.clone().or(n.clone()), &[], &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&n.clone().or(t.clone()), &[], &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&f.clone().or(n.clone()), &[], &[]).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&n.clone().and(n.clone()), &[], &[]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // rhs would divide by zero, but lhs decides the outcome.
        let e = Expr::lit(false).and(Expr::lit(1).div(Expr::lit(0)).gt(Expr::lit(0)));
        assert_eq!(eval(&e, &[], &[]).unwrap(), Value::Bool(false));
        let e = Expr::lit(true).or(Expr::lit(1).div(Expr::lit(0)).gt(Expr::lit(0)));
        assert_eq!(eval(&e, &[], &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn comparisons_between_kinds_rejected() {
        let e = Expr::lit(1).eq(Expr::lit("x"));
        assert!(matches!(eval(&e, &[], &[]), Err(SkallaError::Type(_))));
        let e = Expr::lit(true).lt(Expr::lit(1));
        assert!(eval(&e, &[], &[]).is_err());
    }

    #[test]
    fn string_comparisons() {
        let e = Expr::base(1).eq(Expr::detail(2));
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Bool(true));
        let e = Expr::lit("a").lt(Expr::lit("b"));
        assert_eq!(eval(&e, &[], &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn predicate_semantics_null_rejects() {
        let e = Expr::base(2).eq(Expr::lit(1)); // NULL = 1 -> NULL
        assert!(!eval_predicate(&e, &b(), &r()).unwrap());
        let e = Expr::base(0).eq(Expr::detail(0));
        assert!(eval_predicate(&e, &b(), &r()).unwrap());
        assert!(eval_predicate(&Expr::lit(1), &b(), &r()).is_err());
    }

    #[test]
    fn is_null_and_not() {
        assert_eq!(
            eval(&Expr::base(2).is_null(), &b(), &r()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&Expr::base(0).is_null(), &b(), &r()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&Expr::Lit(Value::Null).not(), &[], &[]).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&Expr::lit(false).not(), &[], &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn in_set_membership() {
        let e = Expr::base(0).in_set([Value::Int(10), Value::Int(20)]);
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Bool(true));
        let e = Expr::base(0).in_set([Value::Int(11)]);
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Bool(false));
        let e = Expr::base(2).in_set([Value::Int(1)]);
        assert_eq!(eval(&e, &b(), &r()).unwrap(), Value::Null);
    }

    #[test]
    fn float_negation() {
        assert_eq!(
            eval(&Expr::lit(2.5).neg(), &[], &[]).unwrap(),
            Value::Float(-2.5)
        );
        assert!(eval(&Expr::lit("x").neg(), &[], &[]).is_err());
    }
}
