#![warn(missing_docs)]

//! # skalla-expr
//!
//! The scalar expression language used by Skalla GMDJ conditions and
//! aggregate arguments, together with the static analyses that drive the
//! paper's distributed-evaluation optimizations.
//!
//! A GMDJ condition `θ(b, r)` relates a tuple `b` of the *base-values*
//! relation `B` to a tuple `r` of the *detail* relation `R` (paper §2.2,
//! Definition 1). Expressions therefore reference two tuple contexts:
//! [`Expr::BaseCol`] and [`Expr::DetailCol`].
//!
//! Modules:
//!
//! * [`expr`] — the AST ([`Expr`], [`BinOp`], [`UnOp`]) and constructors.
//! * [`builder`] — name-resolved construction against a pair of schemas.
//! * [`mod@eval`] — evaluation with SQL-style ternary null semantics.
//! * [`typecheck`] — static result-type inference.
//! * [`analysis`] — conjunct decomposition, column-reference sets, equality
//!   key extraction, and key-equality entailment (used by Theorem 1 /
//!   Proposition 2 / Corollary 1 of the paper).
//! * [`interval`] — interval arithmetic over `f64`.
//! * [`linear`] — extraction of linear forms `Σ aᵢ·col + c` from expressions.
//! * [`reduction`] — derivation of the coordinator-side group-reduction
//!   predicate `¬ψᵢ(b)` from `θ` and a site constraint `φᵢ` (Theorem 4,
//!   Example 2).

pub mod analysis;
pub mod builder;
pub mod compile;
pub mod eval;
pub mod expr;
pub mod interval;
pub mod linear;
pub mod reduction;
pub mod simplify;
pub mod typecheck;

pub use analysis::{
    base_cols_used, conjuncts, detail_bounds, detail_cols_used, equality_pairs, DetailBounds,
    EqualityPair,
};
pub use builder::ExprBuilder;
pub use compile::{
    gather_f64_rows, gather_i64_rows, Batch, ColSlice, ColumnBatch, CompiledPred, CompiledScalar,
    Lanes, ScalarLanes, BATCH_ROWS,
};
pub use eval::{eval, eval_base, eval_detail, eval_predicate};
pub use expr::{BinOp, Expr, UnOp};
pub use interval::Interval;
pub use linear::LinearForm;
pub use reduction::{derive_group_filter, ColumnConstraint, SiteConstraint};
pub use simplify::simplify;
