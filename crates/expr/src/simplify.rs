//! Expression simplification: constant folding and boolean algebra.
//!
//! Egil runs this over conditions before analysis — a folded condition
//! exposes more equality conjuncts and linear forms to the reduction
//! analyses, and the sites evaluate fewer nodes per tuple.
//!
//! Simplification assumes **well-typed** input (run
//! [`crate::typecheck::infer_type`] first — Egil does): on ill-typed
//! expressions, folds like double negation can turn a runtime type error
//! into a value.
//!
//! Simplification is *semantics-preserving under SQL ternary logic*; in
//! particular `x AND FALSE → FALSE` is valid even when `x` is NULL, but
//! `x OR x → x` style idempotence is only applied to syntactically equal
//! sides (no type assumptions). Expressions that would error at runtime
//! (division by zero) are left unfolded so the error surfaces at the same
//! point.

use skalla_types::Value;

use crate::eval::eval;
use crate::expr::{BinOp, Expr, UnOp};

/// Simplify `expr` bottom-up. Idempotent.
pub fn simplify(expr: &Expr) -> Expr {
    match expr {
        Expr::Lit(_) | Expr::BaseCol(_) | Expr::DetailCol(_) => expr.clone(),
        Expr::Unary { op, expr: inner } => {
            let inner = simplify(inner);
            simplify_unary(*op, inner)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = simplify(lhs);
            let r = simplify(rhs);
            simplify_binary(*op, l, r)
        }
        Expr::InSet { expr: inner, set } => {
            let inner = simplify(inner);
            if set.is_empty() {
                // x IN {} is FALSE unless x is NULL (then NULL); both reject
                // as predicates, but preserve ternary semantics exactly:
                // only fold when the needle cannot be NULL (a literal).
                if let Expr::Lit(v) = &inner {
                    if !v.is_null() {
                        return Expr::lit(false);
                    }
                }
            }
            if let Expr::Lit(v) = &inner {
                if !v.is_null() {
                    return Expr::lit(set.contains(v));
                }
            }
            Expr::InSet {
                expr: Box::new(inner),
                set: set.clone(),
            }
        }
    }
}

fn is_lit(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Lit(v) => Some(v),
        _ => None,
    }
}

fn simplify_unary(op: UnOp, inner: Expr) -> Expr {
    // Double negation.
    if let Expr::Unary { op: inner_op, expr } = &inner {
        match (op, inner_op) {
            (UnOp::Not, UnOp::Not) | (UnOp::Neg, UnOp::Neg) => return (**expr).clone(),
            _ => {}
        }
    }
    // Constant folding (errors left in place).
    if is_lit(&inner).is_some() {
        if let Ok(v) = eval(
            &Expr::Unary {
                op,
                expr: Box::new(inner.clone()),
            },
            &[],
            &[],
        ) {
            return Expr::Lit(v);
        }
    }
    Expr::Unary {
        op,
        expr: Box::new(inner),
    }
}

fn simplify_binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    use BinOp::*;

    // Boolean algebra with TRUE/FALSE — valid under Kleene logic.
    match op {
        And => {
            if l == Expr::lit(false) || r == Expr::lit(false) {
                return Expr::lit(false);
            }
            if l == Expr::lit(true) {
                return r;
            }
            if r == Expr::lit(true) {
                return l;
            }
            if l == r {
                return l; // idempotence (x AND x ≡ x under 3VL)
            }
        }
        Or => {
            if l == Expr::lit(true) || r == Expr::lit(true) {
                return Expr::lit(true);
            }
            if l == Expr::lit(false) {
                return r;
            }
            if r == Expr::lit(false) {
                return l;
            }
            if l == r {
                return l;
            }
        }
        _ => {}
    }

    // Arithmetic identities (NULL-safe: x + 0 ≡ x even for NULL x).
    match (op, is_lit(&l), is_lit(&r)) {
        (Add, Some(Value::Int(0)), _) => return r,
        (Add, _, Some(Value::Int(0))) => return l,
        (Sub, _, Some(Value::Int(0))) => return l,
        (Mul, Some(Value::Int(1)), _) => return r,
        (Mul, _, Some(Value::Int(1))) => return l,
        (Div, _, Some(Value::Int(1))) => {
            // x / 1 still coerces to FLOAT64 in our semantics; keep it
            // unless x is already float-typed — conservatively keep.
        }
        _ => {}
    }

    // Full constant folding when both sides are non-null literals and
    // evaluation succeeds (division by zero etc. stays unfolded).
    if let (Some(lv), Some(rv)) = (is_lit(&l), is_lit(&r)) {
        if !lv.is_null() && !rv.is_null() {
            let e = Expr::binary(op, l.clone(), r.clone());
            if let Ok(v) = eval(&e, &[], &[]) {
                return Expr::Lit(v);
            }
        }
    }

    Expr::binary(op, l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use skalla_types::Row;

    /// Simplification must preserve evaluation on every input we can build.
    fn assert_equiv(e: &Expr, rows: &[(Row, Row)]) {
        let s = simplify(e);
        for (b, r) in rows {
            let before = eval(e, b, r);
            let after = eval(&s, b, r);
            match (before, after) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "{e} vs {s}"),
                (Err(_), Err(_)) => {}
                (x, y) => panic!("{e} -> {x:?} but {s} -> {y:?}"),
            }
        }
    }

    fn sample_rows() -> Vec<(Row, Row)> {
        vec![
            (vec![Value::Int(0)], vec![Value::Int(5)]),
            (vec![Value::Int(-3)], vec![Value::Int(0)]),
            (vec![Value::Null], vec![Value::Int(1)]),
            (vec![Value::Int(100)], vec![Value::Null]),
        ]
    }

    #[test]
    fn folds_constants() {
        assert_eq!(simplify(&Expr::lit(2).add(Expr::lit(3))), Expr::lit(5));
        assert_eq!(simplify(&Expr::lit(2).lt(Expr::lit(3))), Expr::lit(true));
        assert_eq!(
            simplify(&Expr::lit("a").eq(Expr::lit("b"))),
            Expr::lit(false)
        );
        assert_eq!(simplify(&Expr::lit(7).neg()), Expr::lit(-7));
    }

    #[test]
    fn division_by_zero_not_folded() {
        let e = Expr::lit(1).div(Expr::lit(0));
        assert_eq!(simplify(&e), e);
        // Type errors also left in place.
        let e = Expr::lit(1).add(Expr::lit("x"));
        assert_eq!(simplify(&e), e);
    }

    #[test]
    fn boolean_identities() {
        let x = Expr::base(0).gt(Expr::lit(1));
        assert_eq!(simplify(&x.clone().and(Expr::lit(true))), x);
        assert_eq!(simplify(&Expr::lit(true).and(x.clone())), x);
        assert_eq!(simplify(&x.clone().and(Expr::lit(false))), Expr::lit(false));
        assert_eq!(simplify(&x.clone().or(Expr::lit(false))), x);
        assert_eq!(simplify(&x.clone().or(Expr::lit(true))), Expr::lit(true));
        assert_eq!(simplify(&x.clone().and(x.clone())), x);
        assert_eq!(simplify(&x.clone().or(x.clone())), x);
    }

    #[test]
    fn kleene_safety_of_false_absorption() {
        // (NULL AND FALSE) is FALSE, so folding x AND FALSE → FALSE is
        // exact, not approximate.
        let e = Expr::Lit(Value::Null).and(Expr::lit(false));
        assert_eq!(simplify(&e), Expr::lit(false));
        assert_eq!(eval(&e, &[], &[]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn arithmetic_identities() {
        let x = Expr::base(0);
        assert_eq!(simplify(&x.clone().add(Expr::lit(0))), x);
        assert_eq!(simplify(&Expr::lit(0).add(x.clone())), x);
        assert_eq!(simplify(&x.clone().sub(Expr::lit(0))), x);
        assert_eq!(simplify(&x.clone().mul(Expr::lit(1))), x);
        assert_eq!(simplify(&Expr::lit(1).mul(x.clone())), x);
    }

    #[test]
    fn double_negation() {
        let x = Expr::base(0).gt(Expr::lit(1));
        assert_eq!(simplify(&x.clone().not().not()), x);
        let y = Expr::base(0);
        assert_eq!(simplify(&y.clone().neg().neg()), y);
    }

    #[test]
    fn in_set_folding() {
        let e = Expr::lit(2).in_set([Value::Int(1), Value::Int(2)]);
        assert_eq!(simplify(&e), Expr::lit(true));
        let e = Expr::lit(9).in_set([Value::Int(1)]);
        assert_eq!(simplify(&e), Expr::lit(false));
        let e = Expr::base(0).in_set([] as [Value; 0]);
        // Non-literal needle with empty set: left alone (needle may be NULL).
        assert!(matches!(simplify(&e), Expr::InSet { .. }));
        let e = Expr::lit(3).in_set([] as [Value; 0]);
        assert_eq!(simplify(&e), Expr::lit(false));
    }

    #[test]
    fn nested_structures_fold_bottom_up() {
        // (2 + 3 > 4) AND b.0 = r.0  →  b.0 = r.0
        let e = Expr::lit(2)
            .add(Expr::lit(3))
            .gt(Expr::lit(4))
            .and(Expr::base(0).eq(Expr::detail(0)));
        assert_eq!(simplify(&e), Expr::base(0).eq(Expr::detail(0)));
    }

    #[test]
    fn semantics_preserved_on_samples() {
        let exprs = vec![
            Expr::base(0).add(Expr::lit(0)).mul(Expr::lit(1)),
            Expr::base(0).gt(Expr::lit(1)).and(Expr::lit(true)),
            Expr::base(0).is_null().or(Expr::lit(false)),
            Expr::lit(2).add(Expr::lit(3)).eq(Expr::detail(0)),
            Expr::base(0).gt(Expr::lit(1)).not().not().is_null(),
            Expr::base(0).neg().neg().add(Expr::lit(2)),
            Expr::detail(0).in_set([Value::Int(5), Value::Int(0)]),
        ];
        for e in &exprs {
            assert_equiv(e, &sample_rows());
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let exprs = vec![
            Expr::lit(2).add(Expr::lit(3)).gt(Expr::base(0)),
            Expr::base(0).and(Expr::base(1)).or(Expr::lit(false)),
            Expr::lit(1).div(Expr::lit(0)),
        ];
        for e in &exprs {
            let once = simplify(e);
            let twice = simplify(&once);
            assert_eq!(once, twice);
        }
    }
}
