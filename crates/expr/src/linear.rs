//! Extraction of linear forms from expressions.
//!
//! A [`LinearForm`] represents `Σᵢ aᵢ·b.colᵢ + Σⱼ dⱼ·r.colⱼ + c` with `f64`
//! coefficients. The group-reduction analysis (paper Theorem 4, Example 2)
//! rewrites comparison conjuncts of θ into `L(b) + D(r) + c  op  0` and then
//! bounds the detail part `D(r)` using per-site constraints.

use std::collections::BTreeMap;

use skalla_types::Value;

use crate::expr::{BinOp, Expr, UnOp};

/// A linear combination of base columns, detail columns, and a constant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearForm {
    /// Base-column coefficients (zero coefficients are never stored).
    pub base: BTreeMap<usize, f64>,
    /// Detail-column coefficients (zero coefficients are never stored).
    pub detail: BTreeMap<usize, f64>,
    /// Additive constant.
    pub constant: f64,
}

impl LinearForm {
    /// The zero form.
    pub fn zero() -> LinearForm {
        LinearForm::default()
    }

    /// The constant form `c`.
    pub fn constant(c: f64) -> LinearForm {
        LinearForm {
            constant: c,
            ..Default::default()
        }
    }

    /// The single base column `b.i`.
    pub fn base_col(i: usize) -> LinearForm {
        let mut f = LinearForm::zero();
        f.base.insert(i, 1.0);
        f
    }

    /// The single detail column `r.j`.
    pub fn detail_col(j: usize) -> LinearForm {
        let mut f = LinearForm::zero();
        f.detail.insert(j, 1.0);
        f
    }

    /// Sum of two forms.
    pub fn add(&self, other: &LinearForm) -> LinearForm {
        let mut out = self.clone();
        for (k, v) in &other.base {
            add_coef(&mut out.base, *k, *v);
        }
        for (k, v) in &other.detail {
            add_coef(&mut out.detail, *k, *v);
        }
        out.constant += other.constant;
        out
    }

    /// Difference of two forms.
    pub fn sub(&self, other: &LinearForm) -> LinearForm {
        self.add(&other.scale(-1.0))
    }

    /// Scale all coefficients by `k`.
    pub fn scale(&self, k: f64) -> LinearForm {
        if k == 0.0 {
            return LinearForm::zero();
        }
        LinearForm {
            base: self.base.iter().map(|(c, v)| (*c, v * k)).collect(),
            detail: self.detail.iter().map(|(c, v)| (*c, v * k)).collect(),
            constant: self.constant * k,
        }
    }

    /// `true` if the form has no column terms.
    pub fn is_constant(&self) -> bool {
        self.base.is_empty() && self.detail.is_empty()
    }

    /// `true` if the form references no detail columns.
    pub fn is_base_only(&self) -> bool {
        self.detail.is_empty()
    }

    /// `true` if the form references no base columns.
    pub fn is_detail_only(&self) -> bool {
        self.base.is_empty()
    }

    /// The detail part only (no base terms, no constant).
    pub fn detail_part(&self) -> LinearForm {
        LinearForm {
            base: BTreeMap::new(),
            detail: self.detail.clone(),
            constant: 0.0,
        }
    }

    /// The base part plus constant (no detail terms).
    pub fn base_part_with_constant(&self) -> LinearForm {
        LinearForm {
            base: self.base.clone(),
            detail: BTreeMap::new(),
            constant: self.constant,
        }
    }

    /// If the form is exactly `a·col + c` over a single detail column,
    /// return `(col, a, c)`.
    pub fn as_single_detail(&self) -> Option<(usize, f64, f64)> {
        if self.base.is_empty() && self.detail.len() == 1 {
            let (&col, &a) = self.detail.iter().next().unwrap();
            Some((col, a, self.constant))
        } else {
            None
        }
    }

    /// Rebuild an expression for a base-only form: `Σ aᵢ·b.colᵢ + c`.
    ///
    /// Panics in debug builds if the form has detail terms.
    pub fn to_base_expr(&self) -> Expr {
        debug_assert!(self.detail.is_empty());
        let mut terms: Vec<Expr> = Vec::with_capacity(self.base.len() + 1);
        for (&col, &coef) in &self.base {
            let t = if coef == 1.0 {
                Expr::base(col)
            } else {
                Expr::lit(coef).mul(Expr::base(col))
            };
            terms.push(t);
        }
        if self.constant != 0.0 || terms.is_empty() {
            terms.push(Expr::lit(self.constant));
        }
        let mut it = terms.into_iter();
        let first = it.next().expect("at least one term");
        it.fold(first, |acc, t| acc.add(t))
    }
}

fn add_coef(map: &mut BTreeMap<usize, f64>, col: usize, v: f64) {
    let entry = map.entry(col).or_insert(0.0);
    *entry += v;
    if *entry == 0.0 {
        map.remove(&col);
    }
}

/// Extract a [`LinearForm`] from `expr`, or `None` if the expression is not
/// linear (contains non-numeric literals, products of columns, division by a
/// non-constant, comparisons, …).
pub fn extract_linear(expr: &Expr) -> Option<LinearForm> {
    match expr {
        Expr::Lit(Value::Int(i)) => Some(LinearForm::constant(*i as f64)),
        Expr::Lit(Value::Float(f)) => Some(LinearForm::constant(*f)),
        Expr::Lit(_) => None,
        Expr::BaseCol(i) => Some(LinearForm::base_col(*i)),
        Expr::DetailCol(j) => Some(LinearForm::detail_col(*j)),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => Some(extract_linear(expr)?.scale(-1.0)),
        Expr::Unary { .. } => None,
        Expr::Binary { op, lhs, rhs } => {
            let l = extract_linear(lhs)?;
            let r = extract_linear(rhs)?;
            match op {
                BinOp::Add => Some(l.add(&r)),
                BinOp::Sub => Some(l.sub(&r)),
                BinOp::Mul => {
                    if l.is_constant() {
                        Some(r.scale(l.constant))
                    } else if r.is_constant() {
                        Some(l.scale(r.constant))
                    } else {
                        None
                    }
                }
                BinOp::Div => {
                    if r.is_constant() && r.constant != 0.0 {
                        Some(l.scale(1.0 / r.constant))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        Expr::InSet { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_simple_columns_and_constants() {
        assert_eq!(
            extract_linear(&Expr::lit(3)).unwrap(),
            LinearForm::constant(3.0)
        );
        assert_eq!(
            extract_linear(&Expr::lit(2.5)).unwrap(),
            LinearForm::constant(2.5)
        );
        assert_eq!(
            extract_linear(&Expr::base(2)).unwrap(),
            LinearForm::base_col(2)
        );
        assert_eq!(
            extract_linear(&Expr::detail(1)).unwrap(),
            LinearForm::detail_col(1)
        );
        assert!(extract_linear(&Expr::lit("x")).is_none());
    }

    #[test]
    fn paper_example_2_form() {
        // B.DestAS + B.SourceAS - Flow.SourceAS*2   (θ: ... < 0)
        let e = Expr::base(1)
            .add(Expr::base(0))
            .sub(Expr::detail(0).mul(Expr::lit(2)));
        let f = extract_linear(&e).unwrap();
        assert_eq!(f.base.get(&0), Some(&1.0));
        assert_eq!(f.base.get(&1), Some(&1.0));
        assert_eq!(f.detail.get(&0), Some(&-2.0));
        assert_eq!(f.constant, 0.0);
    }

    #[test]
    fn cancellation_removes_zero_coefficients() {
        let e = Expr::base(0).sub(Expr::base(0));
        let f = extract_linear(&e).unwrap();
        assert!(f.base.is_empty());
        assert!(f.is_constant());
    }

    #[test]
    fn division_by_constant_scales() {
        let e = Expr::detail(0).div(Expr::lit(4));
        let f = extract_linear(&e).unwrap();
        assert_eq!(f.detail.get(&0), Some(&0.25));
        assert!(extract_linear(&Expr::lit(1).div(Expr::detail(0))).is_none());
        assert!(extract_linear(&Expr::detail(0).div(Expr::lit(0))).is_none());
    }

    #[test]
    fn nonlinear_rejected() {
        assert!(extract_linear(&Expr::base(0).mul(Expr::detail(0))).is_none());
        assert!(extract_linear(&Expr::base(0).eq(Expr::detail(0))).is_none());
        assert!(extract_linear(&Expr::base(0).is_null()).is_none());
    }

    #[test]
    fn negation_scales_by_minus_one() {
        let f = extract_linear(&Expr::base(0).neg()).unwrap();
        assert_eq!(f.base.get(&0), Some(&-1.0));
    }

    #[test]
    fn single_detail_detection() {
        let f = extract_linear(&Expr::detail(3).mul(Expr::lit(2)).add(Expr::lit(5))).unwrap();
        assert_eq!(f.as_single_detail(), Some((3, 2.0, 5.0)));
        let f = extract_linear(&Expr::detail(0).add(Expr::detail(1))).unwrap();
        assert_eq!(f.as_single_detail(), None);
        let f = extract_linear(&Expr::base(0).add(Expr::detail(1))).unwrap();
        assert_eq!(f.as_single_detail(), None);
    }

    #[test]
    fn to_base_expr_round_trips_through_eval() {
        use crate::eval::eval_base;
        let f = LinearForm {
            base: BTreeMap::from([(0, 2.0), (1, 1.0)]),
            detail: BTreeMap::new(),
            constant: -3.0,
        };
        let e = f.to_base_expr();
        let row = vec![Value::Int(4), Value::Int(10)];
        // 2*4 + 10 - 3 = 15
        assert_eq!(eval_base(&e, &row).unwrap().as_f64().unwrap(), 15.0);

        // Pure-constant form still renders.
        let c = LinearForm::constant(7.0);
        assert_eq!(
            eval_base(&c.to_base_expr(), &[]).unwrap().as_f64().unwrap(),
            7.0
        );
        // Zero form renders as 0.
        assert_eq!(
            eval_base(&LinearForm::zero().to_base_expr(), &[])
                .unwrap()
                .as_f64()
                .unwrap(),
            0.0
        );
    }

    #[test]
    fn parts_split_correctly() {
        let e = Expr::base(0).add(Expr::detail(1)).add(Expr::lit(5));
        let f = extract_linear(&e).unwrap();
        let d = f.detail_part();
        assert!(d.base.is_empty());
        assert_eq!(d.constant, 0.0);
        assert_eq!(d.detail.get(&1), Some(&1.0));
        let b = f.base_part_with_constant();
        assert!(b.detail.is_empty());
        assert_eq!(b.constant, 5.0);
        assert!(!f.is_base_only());
        assert!(!f.is_detail_only());
        assert!(d.is_detail_only());
        assert!(b.is_base_only());
    }
}
