//! The expression AST.

use std::collections::BTreeSet;
use std::fmt;

use skalla_types::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Numeric addition.
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
    /// Division; always produces `FLOAT64` (SQL-style `AVG`-friendly
    /// semantics, matching the paper's `sum1/cnt1` usage in Example 1).
    Div,
    /// Integer modulo.
    Mod,
    /// Equality (null-propagating).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Kleene conjunction.
    And,
    /// Kleene disjunction.
    Or,
}

impl BinOp {
    /// `true` for `Eq | Ne | Lt | Le | Gt | Ge`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// `true` for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// The comparison with operand sides swapped (`a < b` ⇔ `b > a`); identity
    /// for symmetric and non-comparison operators.
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical negation (Kleene: `NOT NULL = NULL`).
    Not,
    /// `IS NULL` — never null itself.
    IsNull,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "NOT"),
            UnOp::IsNull => write!(f, "IS NULL"),
        }
    }
}

/// A scalar expression over a pair of tuple contexts: a *base* tuple `b ∈ B`
/// and a *detail* tuple `r ∈ R` (paper Definition 1).
///
/// Expressions that only reference one side are evaluated with
/// [`crate::eval_base`] / [`crate::eval_detail`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// Reference to column `i` of the base tuple.
    BaseCol(usize),
    /// Reference to column `i` of the detail tuple.
    DetailCol(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Set membership test `expr IN {v₁, …}` (null-propagating on the
    /// needle). Produced by the group-reduction analysis for partition-value
    /// membership and usable directly in queries.
    InSet {
        /// The needle expression.
        expr: Box<Expr>,
        /// The (sorted, deduplicated) haystack.
        set: BTreeSet<Value>,
    },
}

#[allow(clippy::should_implement_trait)] // builder DSL mirrors SQL operator names
impl Expr {
    /// Literal constructor.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Base-column reference.
    pub fn base(i: usize) -> Expr {
        Expr::BaseCol(i)
    }

    /// Detail-column reference.
    pub fn detail(i: usize) -> Expr {
        Expr::DetailCol(i)
    }

    /// Generic binary node.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Eq, self, rhs)
    }

    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Ne, self, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Lt, self, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Le, self, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Gt, self, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Ge, self, rhs)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::And, self, rhs)
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, rhs)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, self, rhs)
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, self, rhs)
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, self, rhs)
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Div, self, rhs)
    }

    /// `self % rhs`.
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mod, self, rhs)
    }

    /// `NOT self`.
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(self),
        }
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::Unary {
            op: UnOp::IsNull,
            expr: Box::new(self),
        }
    }

    /// `self IN set`.
    pub fn in_set(self, set: impl IntoIterator<Item = Value>) -> Expr {
        Expr::InSet {
            expr: Box::new(self),
            set: set.into_iter().collect(),
        }
    }

    /// Fold an iterator of predicates into a conjunction; `TRUE` when empty.
    pub fn conjunction(preds: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = preds.into_iter();
        match it.next() {
            None => Expr::lit(true),
            Some(first) => it.fold(first, |acc, p| acc.and(p)),
        }
    }

    /// Fold an iterator of predicates into a disjunction; `FALSE` when empty.
    pub fn disjunction(preds: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = preds.into_iter();
        match it.next() {
            None => Expr::lit(false),
            Some(first) => it.fold(first, |acc, p| acc.or(p)),
        }
    }

    /// `true` if the expression references no detail columns (it can be
    /// evaluated on a base tuple alone).
    pub fn is_base_only(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::BaseCol(_) => true,
            Expr::DetailCol(_) => false,
            Expr::Binary { lhs, rhs, .. } => lhs.is_base_only() && rhs.is_base_only(),
            Expr::Unary { expr, .. } => expr.is_base_only(),
            Expr::InSet { expr, .. } => expr.is_base_only(),
        }
    }

    /// `true` if the expression references no base columns.
    pub fn is_detail_only(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::DetailCol(_) => true,
            Expr::BaseCol(_) => false,
            Expr::Binary { lhs, rhs, .. } => lhs.is_detail_only() && rhs.is_detail_only(),
            Expr::Unary { expr, .. } => expr.is_detail_only(),
            Expr::InSet { expr, .. } => expr.is_detail_only(),
        }
    }

    /// Rewrite every column reference through the supplied maps (`None`
    /// leaves the side unchanged). Used when coalescing GMDJs and when
    /// re-basing a condition onto a wider base schema.
    pub fn remap_cols(
        &self,
        map_base: Option<&dyn Fn(usize) -> usize>,
        map_detail: Option<&dyn Fn(usize) -> usize>,
    ) -> Expr {
        match self {
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::BaseCol(i) => Expr::BaseCol(map_base.map_or(*i, |f| f(*i))),
            Expr::DetailCol(i) => Expr::DetailCol(map_detail.map_or(*i, |f| f(*i))),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.remap_cols(map_base, map_detail)),
                rhs: Box::new(rhs.remap_cols(map_base, map_detail)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.remap_cols(map_base, map_detail)),
            },
            Expr::InSet { expr, set } => Expr::InSet {
                expr: Box::new(expr.remap_cols(map_base, map_detail)),
                set: set.clone(),
            },
        }
    }

    /// Number of AST nodes (used by tests and plan-complexity heuristics).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::BaseCol(_) | Expr::DetailCol(_) => 1,
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.node_count() + rhs.node_count(),
            Expr::Unary { expr, .. } => 1 + expr.node_count(),
            Expr::InSet { expr, .. } => 1 + expr.node_count(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::BaseCol(i) => write!(f, "b.{i}"),
            Expr::DetailCol(i) => write!(f, "r.{i}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Unary {
                op: UnOp::IsNull,
                expr,
            } => write!(f, "({expr} IS NULL)"),
            Expr::Unary { op, expr } => write!(f, "({op} {expr})"),
            Expr::InSet { expr, set } => {
                write!(f, "({expr} IN {{")?;
                for (i, v) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::base(0)
            .eq(Expr::detail(1))
            .and(Expr::lit(5).lt(Expr::detail(2)));
        assert_eq!(e.node_count(), 7);
        assert!(!e.is_base_only());
        assert!(!e.is_detail_only());
        assert_eq!(e.to_string(), "((b.0 = r.1) AND (5 < r.2))");
    }

    #[test]
    fn side_detection() {
        assert!(Expr::base(0).add(Expr::lit(1)).is_base_only());
        assert!(Expr::detail(3).is_detail_only());
        assert!(Expr::lit(1).is_base_only() && Expr::lit(1).is_detail_only());
        assert!(Expr::base(0).in_set([Value::Int(1)]).is_base_only());
        assert!(!Expr::detail(0).in_set([Value::Int(1)]).is_base_only());
    }

    #[test]
    fn conjunction_and_disjunction_fold() {
        assert_eq!(Expr::conjunction([]), Expr::lit(true));
        assert_eq!(Expr::disjunction([]), Expr::lit(false));
        let c = Expr::conjunction([Expr::lit(true), Expr::lit(false)]);
        assert_eq!(c.to_string(), "(true AND false)");
    }

    #[test]
    fn remap_rewrites_each_side_independently() {
        let e = Expr::base(1).eq(Expr::detail(2));
        let shifted = e.remap_cols(Some(&|i| i + 10), None);
        assert_eq!(shifted.to_string(), "(b.11 = r.2)");
        let shifted2 = e.remap_cols(None, Some(&|i| i + 1));
        assert_eq!(shifted2.to_string(), "(b.1 = r.3)");
    }

    #[test]
    fn flip_swaps_comparison_direction() {
        assert_eq!(BinOp::Lt.flip(), BinOp::Gt);
        assert_eq!(BinOp::Ge.flip(), BinOp::Le);
        assert_eq!(BinOp::Eq.flip(), BinOp::Eq);
        assert_eq!(BinOp::Add.flip(), BinOp::Add);
    }

    #[test]
    fn display_covers_all_nodes() {
        assert_eq!(Expr::lit("x").to_string(), "'x'");
        assert_eq!(Expr::base(0).neg().to_string(), "(- b.0)");
        assert_eq!(Expr::base(0).not().to_string(), "(NOT b.0)");
        assert_eq!(Expr::base(0).is_null().to_string(), "(b.0 IS NULL)");
        let e = Expr::base(0).in_set([Value::Int(2), Value::Int(1)]);
        assert_eq!(e.to_string(), "(b.0 IN {1, 2})");
    }

    #[test]
    fn op_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::And.is_comparison());
        assert!(BinOp::Mul.is_arithmetic());
        assert!(!BinOp::Lt.is_arithmetic());
    }
}
