//! Distribution-aware group reduction analysis (paper §4.1, Theorem 4).
//!
//! Given a per-site predicate `φᵢ` (a [`SiteConstraint`]: what values the
//! detail columns can take at site `i`) and the GMDJ conditions
//! `θ₁ ∨ … ∨ θₘ`, this module derives the predicate `¬ψᵢ(b)` — the
//! *base-only* condition that is `true` exactly when some detail tuple at
//! site `i` **could** satisfy one of the θs with respect to `b`. The
//! coordinator then ships site `i` only the base tuples passing `¬ψᵢ`.
//!
//! The derivation is *sound*: when a conjunct cannot be analyzed it relaxes
//! to `TRUE`, so the derived filter never excludes a group the site might
//! contribute to (this is the correctness condition of Theorem 4).
//!
//! The analysis handles the paper's examples and more:
//!
//! * equality on a partitioned column (`Example 2`: site 1 holds
//!   `SourceAS ∈ [1, 25]`, θ has `B.SourceAS = F.SourceAS` ⟹ `¬ψ₁(b)` is
//!   `b.SourceAS ∈ [1, 25]`),
//! * general linear-arithmetic comparisons (`B.DestAS + B.SourceAS <
//!   F.SourceAS * 2` ⟹ `b.DestAS + b.SourceAS < 50`),
//! * exact membership sets for partition values (including string columns),
//! * detail-only conjuncts that are unsatisfiable at a site prune the site
//!   entirely (filter `FALSE`).

use std::collections::{BTreeSet, HashMap};

use skalla_types::Value;

use crate::analysis::{conjuncts, disjuncts};
use crate::expr::{BinOp, Expr};
use crate::interval::{Bound, Interval};
use crate::linear::{extract_linear, LinearForm};

/// What is known about one detail column at a site.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnConstraint {
    /// The column's values lie in this interval (numeric columns).
    Range(Interval),
    /// The column's values are among this finite set (any column type).
    OneOf(BTreeSet<Value>),
}

impl ColumnConstraint {
    /// The tightest interval guaranteed to contain the column's values
    /// (`unbounded` for non-numeric value sets).
    pub fn to_interval(&self) -> Interval {
        match self {
            ColumnConstraint::Range(i) => *i,
            ColumnConstraint::OneOf(set) => {
                let nums: Option<Vec<f64>> = set.iter().map(numeric_of).collect();
                match nums {
                    Some(ns) => Interval::hull_of(ns).unwrap_or_else(Interval::unbounded),
                    None => Interval::unbounded(),
                }
            }
        }
    }
}

fn numeric_of(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// The per-site predicate `φᵢ`: constraints on detail columns known to hold
/// for every tuple stored at the site. Columns without an entry are
/// unconstrained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteConstraint {
    cols: HashMap<usize, ColumnConstraint>,
}

impl SiteConstraint {
    /// No knowledge: every column unconstrained.
    pub fn none() -> SiteConstraint {
        SiteConstraint::default()
    }

    /// Add a numeric range constraint on detail column `col`.
    pub fn with_range(mut self, col: usize, interval: Interval) -> SiteConstraint {
        self.cols.insert(col, ColumnConstraint::Range(interval));
        self
    }

    /// Add a finite value-set constraint on detail column `col`.
    pub fn with_values(
        mut self,
        col: usize,
        values: impl IntoIterator<Item = Value>,
    ) -> SiteConstraint {
        self.cols
            .insert(col, ColumnConstraint::OneOf(values.into_iter().collect()));
        self
    }

    /// The constraint on `col`, if any.
    pub fn get(&self, col: usize) -> Option<&ColumnConstraint> {
        self.cols.get(&col)
    }

    /// `true` if no column is constrained.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Interval of `col` under this constraint (`unbounded` if unknown).
    pub fn interval_of(&self, col: usize) -> Interval {
        self.cols
            .get(&col)
            .map(|c| c.to_interval())
            .unwrap_or_else(Interval::unbounded)
    }

    /// Interval of a pure-detail linear form under this constraint.
    pub fn range_of_form(&self, form: &LinearForm) -> Interval {
        let mut acc = Interval::singleton(form.constant);
        for (&col, &coef) in &form.detail {
            acc = acc.add(&self.interval_of(col).scale(coef));
        }
        acc
    }
}

/// Tri-valued analysis result before rendering into an [`Expr`].
#[derive(Debug, Clone, PartialEq)]
enum Derived {
    /// Always possibly satisfiable — no restriction on `b`.
    True,
    /// Never satisfiable at this site — no base tuple needed.
    False,
    /// Possibly satisfiable exactly when this base-only predicate holds.
    Pred(Expr),
}

impl Derived {
    fn and(self, other: Derived) -> Derived {
        match (self, other) {
            (Derived::False, _) | (_, Derived::False) => Derived::False,
            (Derived::True, x) | (x, Derived::True) => x,
            (Derived::Pred(a), Derived::Pred(b)) => Derived::Pred(a.and(b)),
        }
    }

    fn or(self, other: Derived) -> Derived {
        match (self, other) {
            (Derived::True, _) | (_, Derived::True) => Derived::True,
            (Derived::False, x) | (x, Derived::False) => x,
            (Derived::Pred(a), Derived::Pred(b)) => Derived::Pred(a.or(b)),
        }
    }

    fn into_expr(self) -> Expr {
        match self {
            Derived::True => Expr::lit(true),
            Derived::False => Expr::lit(false),
            Derived::Pred(e) => e,
        }
    }
}

/// Derive the coordinator-side group-reduction filter `¬ψᵢ(b)` for the
/// block conditions `θ₁, …, θₘ` of a GMDJ under site constraint `φᵢ`.
///
/// The result is a base-only predicate. `TRUE` means "no reduction possible,
/// ship every group"; `FALSE` means "this site can contribute to no group".
pub fn derive_group_filter(thetas: &[&Expr], site: &SiteConstraint) -> Expr {
    let mut acc = Derived::False;
    for theta in thetas {
        acc = acc.or(analyze_theta(theta, site));
        if acc == Derived::True {
            break;
        }
    }
    acc.into_expr()
}

/// A single θ: a disjunction of conjunctions (arbitrary nesting deeper than
/// that relaxes to `TRUE`).
fn analyze_theta(theta: &Expr, site: &SiteConstraint) -> Derived {
    let mut acc = Derived::False;
    for d in disjuncts(theta) {
        acc = acc.or(analyze_conjunction(d, site));
        if acc == Derived::True {
            return acc;
        }
    }
    acc
}

fn analyze_conjunction(expr: &Expr, site: &SiteConstraint) -> Derived {
    let mut acc = Derived::True;
    for c in conjuncts(expr) {
        acc = acc.and(analyze_conjunct(c, site));
        if acc == Derived::False {
            return acc;
        }
    }
    acc
}

fn analyze_conjunct(c: &Expr, site: &SiteConstraint) -> Derived {
    match c {
        Expr::Lit(Value::Bool(true)) => Derived::True,
        Expr::Lit(Value::Bool(false)) => Derived::False,
        // A base-only conjunct restricts b directly.
        e if e.is_base_only() => Derived::Pred(e.clone()),
        Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
            analyze_comparison(*op, lhs, rhs, site)
        }
        Expr::InSet { expr, set } => analyze_detail_in_set(expr, set, site),
        // Anything else (detail-only IS NULL, nested boolean structure, …)
        // relaxes soundly to TRUE.
        _ => Derived::True,
    }
}

/// `r.j IN set` conjuncts: prune the site if its values cannot intersect.
fn analyze_detail_in_set(needle: &Expr, set: &BTreeSet<Value>, site: &SiteConstraint) -> Derived {
    if let Expr::DetailCol(j) = needle {
        match site.get(*j) {
            Some(ColumnConstraint::OneOf(have)) => {
                if have.intersection(set).next().is_some() {
                    Derived::True
                } else {
                    Derived::False
                }
            }
            Some(ColumnConstraint::Range(iv)) => {
                let possible = set.iter().filter_map(numeric_of).any(|x| iv.contains(x));
                if possible {
                    Derived::True
                } else {
                    Derived::False
                }
            }
            None => Derived::True,
        }
    } else {
        Derived::True
    }
}

fn analyze_comparison(op: BinOp, lhs: &Expr, rhs: &Expr, site: &SiteConstraint) -> Derived {
    // Exact string/value membership special case first: `b.k = r.j` (either
    // orientation) with a OneOf constraint on r.j.
    if op == BinOp::Eq {
        if let Some(d) = exact_membership(lhs, rhs, site) {
            return d;
        }
    }

    // General linear path: diff = lhs - rhs, condition diff op 0.
    let (Some(l), Some(r)) = (extract_linear(lhs), extract_linear(rhs)) else {
        return Derived::True;
    };
    let diff = l.sub(&r);
    let detail = diff.detail_part();
    let base = diff.base_part_with_constant();

    if detail.detail.is_empty() {
        if base.base.is_empty() {
            // Pure constant: decide now.
            return decide_constant(op, base.constant);
        }
        // Base-only comparison: keep as a predicate on b.
        return Derived::Pred(Expr::binary(op, base.to_base_expr(), Expr::lit(0.0)));
    }

    // Range of the detail part at this site.
    let d_range = site.range_of_form(&detail);
    if d_range.is_empty() {
        return Derived::False;
    }

    if base.base.is_empty() {
        // Detail-only conjunct: decide satisfiability at this site.
        // Exact set check when the detail part is one column with a OneOf.
        if let (Some((col, a, _)), Some(ColumnConstraint::OneOf(set))) = (
            detail.as_single_detail(),
            detail
                .as_single_detail()
                .and_then(|(col, _, _)| site.get(col)),
        ) {
            let _ = col;
            let sat = set
                .iter()
                .filter_map(numeric_of)
                .any(|v| holds(op, a * v + base.constant));
            return if sat { Derived::True } else { Derived::False };
        }
        let shifted = d_range.shift(base.constant);
        return decide_exists(op, &shifted);
    }

    // Mixed conjunct: condition on T(b) = base(b) + constant.
    let t_expr = base.to_base_expr();
    relax_mixed(op, t_expr, &d_range)
}

/// `b.k = r.j` with `r.j ∈ set`: exact membership filter (valid for strings
/// as well as numerics).
fn exact_membership(lhs: &Expr, rhs: &Expr, site: &SiteConstraint) -> Option<Derived> {
    let (b, r) = match (lhs, rhs) {
        (Expr::BaseCol(b), Expr::DetailCol(r)) | (Expr::DetailCol(r), Expr::BaseCol(b)) => (*b, *r),
        _ => return None,
    };
    match site.get(r)? {
        ColumnConstraint::OneOf(set) => Some(Derived::Pred(Expr::base(b).in_set(set.clone()))),
        ColumnConstraint::Range(iv) => {
            // b.k = r.j with r.j ∈ iv  ⟹  b.k ∈ iv.
            Some(interval_to_pred(Expr::base(b), iv))
        }
    }
}

/// The predicate `expr ∈ iv` rendered with comparisons.
fn interval_to_pred(expr: Expr, iv: &Interval) -> Derived {
    let mut acc = Derived::True;
    if let Bound::Finite { value, closed } = iv.lo {
        let cmp = if closed { BinOp::Ge } else { BinOp::Gt };
        acc = acc.and(Derived::Pred(Expr::binary(
            cmp,
            expr.clone(),
            Expr::lit(value),
        )));
    }
    if let Bound::Finite { value, closed } = iv.hi {
        let cmp = if closed { BinOp::Le } else { BinOp::Lt };
        acc = acc.and(Derived::Pred(Expr::binary(
            cmp,
            expr.clone(),
            Expr::lit(value),
        )));
    }
    acc
}

/// Does `x op 0` hold for the constant `x`?
fn holds(op: BinOp, x: f64) -> bool {
    match op {
        BinOp::Eq => x == 0.0,
        BinOp::Ne => x != 0.0,
        BinOp::Lt => x < 0.0,
        BinOp::Le => x <= 0.0,
        BinOp::Gt => x > 0.0,
        BinOp::Ge => x >= 0.0,
        _ => unreachable!("non-comparison op"),
    }
}

fn decide_constant(op: BinOp, c: f64) -> Derived {
    if holds(op, c) {
        Derived::True
    } else {
        Derived::False
    }
}

/// Does some `x ∈ iv` satisfy `x op 0`?
fn decide_exists(op: BinOp, iv: &Interval) -> Derived {
    if iv.is_empty() {
        return Derived::False;
    }
    let sat = match op {
        BinOp::Eq => iv.contains(0.0),
        BinOp::Ne => *iv != Interval::singleton(0.0),
        BinOp::Lt => match iv.lo {
            Bound::Unbounded => true,
            Bound::Finite { value, .. } => value < 0.0,
        },
        BinOp::Le => match iv.lo {
            Bound::Unbounded => true,
            Bound::Finite { value, closed } => value < 0.0 || (value == 0.0 && closed),
        },
        BinOp::Gt => match iv.hi {
            Bound::Unbounded => true,
            Bound::Finite { value, .. } => value > 0.0,
        },
        BinOp::Ge => match iv.hi {
            Bound::Unbounded => true,
            Bound::Finite { value, closed } => value > 0.0 || (value == 0.0 && closed),
        },
        _ => unreachable!("non-comparison op"),
    };
    if sat {
        Derived::True
    } else {
        Derived::False
    }
}

/// Relax `T(b) + d  op  0` over `d ∈ d_range` into a predicate on `T(b)`.
fn relax_mixed(op: BinOp, t: Expr, d_range: &Interval) -> Derived {
    match op {
        BinOp::Ne => Derived::True,
        BinOp::Lt => match d_range.lo {
            Bound::Unbounded => Derived::True,
            // ∃d ≥/> lo: T + d < 0  ⟺  T + lo < 0 (strict either way).
            Bound::Finite { value, .. } => Derived::Pred(t.lt(Expr::lit(-value))),
        },
        BinOp::Le => match d_range.lo {
            Bound::Unbounded => Derived::True,
            Bound::Finite { value, closed } => {
                let cmp = if closed { BinOp::Le } else { BinOp::Lt };
                Derived::Pred(Expr::binary(cmp, t, Expr::lit(-value)))
            }
        },
        BinOp::Gt => match d_range.hi {
            Bound::Unbounded => Derived::True,
            Bound::Finite { value, .. } => Derived::Pred(t.gt(Expr::lit(-value))),
        },
        BinOp::Ge => match d_range.hi {
            Bound::Unbounded => Derived::True,
            Bound::Finite { value, closed } => {
                let cmp = if closed { BinOp::Ge } else { BinOp::Gt };
                Derived::Pred(Expr::binary(cmp, t, Expr::lit(-value)))
            }
        },
        // T + d = 0 for some d ∈ range ⟺ -T ∈ range ⟺ T ∈ -range.
        BinOp::Eq => interval_to_pred(t, &d_range.scale(-1.0)),
        _ => unreachable!("non-comparison op"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_base;
    use skalla_types::Row;

    fn passes(filter: &Expr, b: &Row) -> bool {
        match eval_base(filter, b).unwrap() {
            Value::Bool(x) => x,
            Value::Null => false,
            other => panic!("non-boolean filter result {other}"),
        }
    }

    /// Paper Example 2: θ contains `Flow.SourceAS = B.SourceAS`, site 1
    /// holds SourceAS ∈ [1, 25]  ⟹  `¬ψ₁(b)` is `b.SourceAS ∈ [1, 25]`.
    #[test]
    fn example_2_equality_on_partitioned_column() {
        // base: (sas=0, das=1); detail: (sas=0, das=1, nb=2)
        let theta = Expr::detail(0)
            .eq(Expr::base(0))
            .and(Expr::detail(1).eq(Expr::base(1)));
        let site = SiteConstraint::none().with_range(0, Interval::closed(1.0, 25.0));
        let f = derive_group_filter(&[&theta], &site);
        assert!(passes(&f, &vec![Value::Int(1), Value::Int(99)]));
        assert!(passes(&f, &vec![Value::Int(25), Value::Int(0)]));
        assert!(!passes(&f, &vec![Value::Int(26), Value::Int(0)]));
        assert!(!passes(&f, &vec![Value::Int(0), Value::Int(0)]));
    }

    /// Paper §4.1: θ revised to `B.DestAS + B.SourceAS < Flow.SourceAS * 2`
    /// with SourceAS ∈ [1, 25] becomes `b.DestAS + b.SourceAS < 50`.
    #[test]
    fn example_2_linear_arithmetic() {
        let theta = Expr::base(1)
            .add(Expr::base(0))
            .lt(Expr::detail(0).mul(Expr::lit(2)));
        let site = SiteConstraint::none().with_range(0, Interval::closed(1.0, 25.0));
        let f = derive_group_filter(&[&theta], &site);
        // sum 49 < 50 passes, 50 fails.
        assert!(passes(&f, &vec![Value::Int(24), Value::Int(25)]));
        assert!(!passes(&f, &vec![Value::Int(25), Value::Int(25)]));
    }

    #[test]
    fn string_membership_constraint() {
        // θ: b.name = r.name; site holds only two names.
        let theta = Expr::base(0).eq(Expr::detail(0));
        let site = SiteConstraint::none().with_values(0, [Value::str("alice"), Value::str("bob")]);
        let f = derive_group_filter(&[&theta], &site);
        assert!(passes(&f, &vec![Value::str("alice")]));
        assert!(!passes(&f, &vec![Value::str("carol")]));
    }

    #[test]
    fn no_knowledge_yields_true() {
        let theta = Expr::base(0).eq(Expr::detail(0));
        let f = derive_group_filter(&[&theta], &SiteConstraint::none());
        assert_eq!(f, Expr::lit(true));
    }

    #[test]
    fn unanalyzable_conjunct_relaxes_to_true() {
        // b.0 * r.0 = 7 is nonlinear.
        let theta = Expr::base(0).mul(Expr::detail(0)).eq(Expr::lit(7));
        let site = SiteConstraint::none().with_range(0, Interval::closed(0.0, 1.0));
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(true));
    }

    #[test]
    fn detail_only_unsatisfiable_prunes_site() {
        // θ: r.0 = 99 AND b.1 = r.1; site has r.0 ∈ [1, 25].
        let theta = Expr::detail(0)
            .eq(Expr::lit(99))
            .and(Expr::base(1).eq(Expr::detail(1)));
        let site = SiteConstraint::none().with_range(0, Interval::closed(1.0, 25.0));
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(false));
    }

    #[test]
    fn detail_only_satisfiable_is_not_pruned() {
        let theta = Expr::detail(0).eq(Expr::lit(10));
        let site = SiteConstraint::none().with_range(0, Interval::closed(1.0, 25.0));
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(true));
    }

    #[test]
    fn one_of_exact_satisfiability() {
        // r.0 = 7 with r.0 ∈ {3, 5}: hull [3,5] would say unsat too, but the
        // exact check also prunes holes: r.0 = 4 with r.0 ∈ {3, 5}.
        let theta = Expr::detail(0).eq(Expr::lit(4));
        let site = SiteConstraint::none().with_values(0, [Value::Int(3), Value::Int(5)]);
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(false));
        let theta = Expr::detail(0).eq(Expr::lit(5));
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(true));
    }

    #[test]
    fn disjunction_of_thetas_unions_filters() {
        // θ₁ matches sas ∈ [1,25]; θ₂ matches das ∈ [100,200].
        let theta1 = Expr::base(0).eq(Expr::detail(0));
        let theta2 = Expr::base(1).eq(Expr::detail(1));
        let site = SiteConstraint::none()
            .with_range(0, Interval::closed(1.0, 25.0))
            .with_range(1, Interval::closed(100.0, 200.0));
        let f = derive_group_filter(&[&theta1, &theta2], &site);
        assert!(passes(&f, &vec![Value::Int(10), Value::Int(0)])); // θ₁ side
        assert!(passes(&f, &vec![Value::Int(0), Value::Int(150)])); // θ₂ side
        assert!(!passes(&f, &vec![Value::Int(0), Value::Int(0)]));
    }

    #[test]
    fn or_within_theta_handled() {
        let theta = Expr::base(0)
            .eq(Expr::detail(0))
            .or(Expr::base(0).eq(Expr::lit(0)));
        let site = SiteConstraint::none().with_range(0, Interval::closed(1.0, 25.0));
        let f = derive_group_filter(&[&theta], &site);
        assert!(passes(&f, &vec![Value::Int(10)]));
        assert!(passes(&f, &vec![Value::Int(0)])); // second disjunct
        assert!(!passes(&f, &vec![Value::Int(30)]));
    }

    #[test]
    fn inequality_directions() {
        // θ: b.0 <= r.0, r.0 ∈ [1, 25] ⟹ b.0 <= 25.
        let theta = Expr::base(0).le(Expr::detail(0));
        let site = SiteConstraint::none().with_range(0, Interval::closed(1.0, 25.0));
        let f = derive_group_filter(&[&theta], &site);
        assert!(passes(&f, &vec![Value::Int(25)]));
        assert!(!passes(&f, &vec![Value::Int(26)]));

        // θ: b.0 >= r.0 ⟹ b.0 >= 1.
        let theta = Expr::base(0).ge(Expr::detail(0));
        let f = derive_group_filter(&[&theta], &site);
        assert!(passes(&f, &vec![Value::Int(1)]));
        assert!(!passes(&f, &vec![Value::Int(0)]));

        // Strict: b.0 < r.0 ⟹ b.0 < 25.
        let theta = Expr::base(0).lt(Expr::detail(0));
        let f = derive_group_filter(&[&theta], &site);
        assert!(passes(&f, &vec![Value::Int(24)]));
        assert!(!passes(&f, &vec![Value::Int(25)]));
    }

    #[test]
    fn not_equal_relaxes_to_true() {
        let theta = Expr::base(0).ne(Expr::detail(0));
        let site = SiteConstraint::none().with_range(0, Interval::closed(1.0, 25.0));
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(true));
    }

    #[test]
    fn base_only_conjuncts_kept() {
        let theta = Expr::base(0)
            .gt(Expr::lit(5))
            .and(Expr::base(1).eq(Expr::detail(0)));
        let site = SiteConstraint::none().with_range(0, Interval::closed(1.0, 25.0));
        let f = derive_group_filter(&[&theta], &site);
        assert!(passes(&f, &vec![Value::Int(6), Value::Int(10)]));
        assert!(!passes(&f, &vec![Value::Int(5), Value::Int(10)])); // base pred fails
        assert!(!passes(&f, &vec![Value::Int(6), Value::Int(30)])); // range fails
    }

    #[test]
    fn detail_in_set_conjunct_prunes() {
        let theta = Expr::detail(0)
            .in_set([Value::Int(1), Value::Int(2)])
            .and(Expr::base(0).eq(Expr::detail(1)));
        let site = SiteConstraint::none().with_values(0, [Value::Int(5)]);
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(false));

        let site = SiteConstraint::none().with_values(0, [Value::Int(2)]);
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(true));

        let site = SiteConstraint::none().with_range(0, Interval::closed(0.0, 0.5));
        assert_eq!(derive_group_filter(&[&theta], &site), Expr::lit(false));
    }

    #[test]
    fn empty_theta_list_is_false() {
        assert_eq!(
            derive_group_filter(&[], &SiteConstraint::none()),
            Expr::lit(false)
        );
    }

    #[test]
    fn constraint_interval_conversions() {
        let c = ColumnConstraint::OneOf([Value::Int(3), Value::Int(9)].into_iter().collect());
        assert_eq!(c.to_interval(), Interval::closed(3.0, 9.0));
        let c = ColumnConstraint::OneOf([Value::str("x")].into_iter().collect());
        assert_eq!(c.to_interval(), Interval::unbounded());
        let c = ColumnConstraint::Range(Interval::closed(0.0, 1.0));
        assert_eq!(c.to_interval(), Interval::closed(0.0, 1.0));
    }

    #[test]
    fn range_of_form_combines_columns() {
        let site = SiteConstraint::none()
            .with_range(0, Interval::closed(1.0, 2.0))
            .with_range(1, Interval::closed(10.0, 20.0));
        // f = 2*r.0 - r.1
        let f = extract_linear(&Expr::detail(0).mul(Expr::lit(2)).sub(Expr::detail(1))).unwrap();
        let range = site.range_of_form(&f.detail_part());
        assert_eq!(range, Interval::closed(2.0 - 20.0, 4.0 - 10.0));
    }
}
