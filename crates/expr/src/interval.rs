//! Interval arithmetic over `f64`, with open/closed/unbounded endpoints.
//!
//! Used by the group-reduction analysis ([`crate::reduction`]) to propagate
//! per-site constraints `φᵢ` on detail columns through linear expressions
//! (paper Theorem 4 and Example 2).

/// One endpoint of an [`Interval`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// Unbounded in this direction.
    Unbounded,
    /// Finite endpoint; `closed` means the endpoint is attained.
    Finite {
        /// The endpoint value.
        value: f64,
        /// Whether the endpoint is included.
        closed: bool,
    },
}

impl Bound {
    /// A closed finite bound.
    pub fn closed(value: f64) -> Bound {
        Bound::Finite {
            value,
            closed: true,
        }
    }

    /// An open finite bound.
    pub fn open(value: f64) -> Bound {
        Bound::Finite {
            value,
            closed: false,
        }
    }

    /// The finite value, if any.
    pub fn value(&self) -> Option<f64> {
        match self {
            Bound::Unbounded => None,
            Bound::Finite { value, .. } => Some(*value),
        }
    }

    /// Whether the bound is closed (`false` for unbounded).
    pub fn is_closed(&self) -> bool {
        matches!(self, Bound::Finite { closed: true, .. })
    }

    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (
                Bound::Finite {
                    value: a,
                    closed: ca,
                },
                Bound::Finite {
                    value: b,
                    closed: cb,
                },
            ) => Bound::Finite {
                value: a + b,
                closed: ca && cb,
            },
            _ => Bound::Unbounded,
        }
    }

    fn scale(self, k: f64) -> Bound {
        match self {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Finite { value, closed } => Bound::Finite {
                value: value * k,
                closed,
            },
        }
    }
}

/// An interval `[lo, hi]` (with each endpoint possibly open or unbounded)
/// over `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: Bound,
    /// Upper endpoint.
    pub hi: Bound,
}

impl Interval {
    /// The whole real line.
    pub fn unbounded() -> Interval {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// The closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Interval {
        Interval {
            lo: Bound::closed(lo),
            hi: Bound::closed(hi),
        }
    }

    /// The single point `{v}`.
    pub fn singleton(v: f64) -> Interval {
        Interval::closed(v, v)
    }

    /// `[lo, +∞)`.
    pub fn at_least(lo: f64) -> Interval {
        Interval {
            lo: Bound::closed(lo),
            hi: Bound::Unbounded,
        }
    }

    /// `(-∞, hi]`.
    pub fn at_most(hi: f64) -> Interval {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::closed(hi),
        }
    }

    /// `(lo, +∞)`.
    pub fn greater_than(lo: f64) -> Interval {
        Interval {
            lo: Bound::open(lo),
            hi: Bound::Unbounded,
        }
    }

    /// `(-∞, hi)`.
    pub fn less_than(hi: f64) -> Interval {
        Interval {
            lo: Bound::Unbounded,
            hi: Bound::open(hi),
        }
    }

    /// The smallest closed interval containing all `values` (empty input →
    /// `None`).
    pub fn hull_of(values: impl IntoIterator<Item = f64>) -> Option<Interval> {
        let mut it = values.into_iter();
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some(Interval::closed(lo, hi))
    }

    /// `true` if no real number lies in the interval.
    pub fn is_empty(&self) -> bool {
        match (self.lo, self.hi) {
            (
                Bound::Finite {
                    value: a,
                    closed: ca,
                },
                Bound::Finite {
                    value: b,
                    closed: cb,
                },
            ) => a > b || (a == b && !(ca && cb)),
            _ => false,
        }
    }

    /// `true` if `x` lies in the interval.
    pub fn contains(&self, x: f64) -> bool {
        let lo_ok = match self.lo {
            Bound::Unbounded => true,
            Bound::Finite { value, closed } => {
                if closed {
                    x >= value
                } else {
                    x > value
                }
            }
        };
        let hi_ok = match self.hi {
            Bound::Unbounded => true,
            Bound::Finite { value, closed } => {
                if closed {
                    x <= value
                } else {
                    x < value
                }
            }
        };
        lo_ok && hi_ok
    }

    /// Minkowski sum: `{a + b | a ∈ self, b ∈ other}`.
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.add(other.lo),
            hi: self.hi.add(other.hi),
        }
    }

    /// Scale by a constant: `{k·a | a ∈ self}`; flips endpoints for `k < 0`,
    /// collapses to `{0}` for `k = 0`.
    pub fn scale(&self, k: f64) -> Interval {
        if k == 0.0 {
            return Interval::singleton(0.0);
        }
        if k > 0.0 {
            Interval {
                lo: self.lo.scale(k),
                hi: self.hi.scale(k),
            }
        } else {
            Interval {
                lo: self.hi.scale(k),
                hi: self.lo.scale(k),
            }
        }
    }

    /// Shift by a constant.
    pub fn shift(&self, c: f64) -> Interval {
        self.add(&Interval::singleton(c))
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        let lo = match (self.lo, other.lo) {
            (Bound::Unbounded, b) | (b, Bound::Unbounded) => b,
            (
                Bound::Finite {
                    value: a,
                    closed: ca,
                },
                Bound::Finite {
                    value: b,
                    closed: cb,
                },
            ) => {
                if a > b {
                    Bound::Finite {
                        value: a,
                        closed: ca,
                    }
                } else if b > a {
                    Bound::Finite {
                        value: b,
                        closed: cb,
                    }
                } else {
                    Bound::Finite {
                        value: a,
                        closed: ca && cb,
                    }
                }
            }
        };
        let hi = match (self.hi, other.hi) {
            (Bound::Unbounded, b) | (b, Bound::Unbounded) => b,
            (
                Bound::Finite {
                    value: a,
                    closed: ca,
                },
                Bound::Finite {
                    value: b,
                    closed: cb,
                },
            ) => {
                if a < b {
                    Bound::Finite {
                        value: a,
                        closed: ca,
                    }
                } else if b < a {
                    Bound::Finite {
                        value: b,
                        closed: cb,
                    }
                } else {
                    Bound::Finite {
                        value: a,
                        closed: ca && cb,
                    }
                }
            }
        };
        Interval { lo, hi }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_respects_openness() {
        let i = Interval {
            lo: Bound::open(1.0),
            hi: Bound::closed(3.0),
        };
        assert!(!i.contains(1.0));
        assert!(i.contains(1.5));
        assert!(i.contains(3.0));
        assert!(!i.contains(3.1));
        assert!(Interval::unbounded().contains(f64::MAX));
    }

    #[test]
    fn emptiness() {
        assert!(Interval::closed(3.0, 1.0).is_empty());
        assert!(!Interval::closed(1.0, 1.0).is_empty());
        assert!(Interval {
            lo: Bound::open(1.0),
            hi: Bound::closed(1.0)
        }
        .is_empty());
        assert!(!Interval::unbounded().is_empty());
    }

    #[test]
    fn minkowski_add() {
        let a = Interval::closed(1.0, 2.0);
        let b = Interval::closed(10.0, 20.0);
        assert_eq!(a.add(&b), Interval::closed(11.0, 22.0));
        let u = Interval::at_least(1.0).add(&Interval::closed(1.0, 1.0));
        assert_eq!(u, Interval::at_least(2.0));
        // open + closed stays open
        let o = Interval {
            lo: Bound::open(0.0),
            hi: Bound::closed(1.0),
        };
        let s = o.add(&Interval::singleton(1.0));
        assert_eq!(s.lo, Bound::open(1.0));
        assert_eq!(s.hi, Bound::closed(2.0));
    }

    #[test]
    fn scaling_flips_for_negative() {
        let a = Interval::closed(1.0, 2.0);
        assert_eq!(a.scale(3.0), Interval::closed(3.0, 6.0));
        assert_eq!(a.scale(-1.0), Interval::closed(-2.0, -1.0));
        assert_eq!(a.scale(0.0), Interval::singleton(0.0));
        assert_eq!(Interval::at_least(1.0).scale(-2.0), Interval::at_most(-2.0));
    }

    #[test]
    fn intersection_picks_tighter_bounds() {
        let a = Interval::closed(0.0, 10.0);
        let b = Interval::closed(5.0, 20.0);
        assert_eq!(a.intersect(&b), Interval::closed(5.0, 10.0));
        let c = Interval::greater_than(5.0);
        let i = a.intersect(&c);
        assert_eq!(i.lo, Bound::open(5.0));
        assert_eq!(i.hi, Bound::closed(10.0));
        // Equal endpoint values: closedness is the AND of the two.
        let d = Interval {
            lo: Bound::open(0.0),
            hi: Bound::closed(10.0),
        };
        assert_eq!(a.intersect(&d).lo, Bound::open(0.0));
    }

    #[test]
    fn hull_spans_all_values() {
        assert_eq!(
            Interval::hull_of([3.0, 1.0, 2.0]),
            Some(Interval::closed(1.0, 3.0))
        );
        assert_eq!(Interval::hull_of([]), None);
        assert_eq!(Interval::hull_of([5.0]), Some(Interval::singleton(5.0)));
    }

    #[test]
    fn shift_moves_both_ends() {
        assert_eq!(
            Interval::closed(1.0, 2.0).shift(10.0),
            Interval::closed(11.0, 12.0)
        );
        assert_eq!(Interval::less_than(0.0).shift(1.0).hi, Bound::open(1.0));
    }

    #[test]
    fn bound_accessors() {
        assert_eq!(Bound::closed(1.0).value(), Some(1.0));
        assert_eq!(Bound::Unbounded.value(), None);
        assert!(Bound::closed(1.0).is_closed());
        assert!(!Bound::open(1.0).is_closed());
        assert!(!Bound::Unbounded.is_closed());
    }
}
