//! Name-resolved expression construction.
//!
//! [`ExprBuilder`] binds column names against a base schema and a detail
//! schema so queries can be written with names (`b("SourceAS")`,
//! `r("NumBytes")`) instead of raw indices.

use std::sync::Arc;

use skalla_types::{Result, Schema};

use crate::expr::Expr;

/// Resolves column names to [`Expr::BaseCol`] / [`Expr::DetailCol`] indices.
#[derive(Debug, Clone)]
pub struct ExprBuilder {
    base: Arc<Schema>,
    detail: Arc<Schema>,
}

impl ExprBuilder {
    /// Create a builder over the given base and detail schemas.
    pub fn new(base: Arc<Schema>, detail: Arc<Schema>) -> ExprBuilder {
        ExprBuilder { base, detail }
    }

    /// A builder with an empty base schema, for detail-only expressions.
    pub fn detail_only(detail: Arc<Schema>) -> ExprBuilder {
        ExprBuilder {
            base: Schema::empty().into_arc(),
            detail,
        }
    }

    /// A builder with an empty detail schema, for base-only expressions.
    pub fn base_only(base: Arc<Schema>) -> ExprBuilder {
        ExprBuilder {
            base,
            detail: Schema::empty().into_arc(),
        }
    }

    /// The base schema.
    pub fn base_schema(&self) -> &Arc<Schema> {
        &self.base
    }

    /// The detail schema.
    pub fn detail_schema(&self) -> &Arc<Schema> {
        &self.detail
    }

    /// Reference to the base column named `name`.
    pub fn b(&self, name: &str) -> Result<Expr> {
        Ok(Expr::BaseCol(self.base.index_of(name)?))
    }

    /// Reference to the detail column named `name`.
    pub fn r(&self, name: &str) -> Result<Expr> {
        Ok(Expr::DetailCol(self.detail.index_of(name)?))
    }

    /// Convenience: the equi-join condition `b.name = r.name` for each of
    /// `names`, conjoined. This is the common grouping condition shape of
    /// the paper's examples (`F.SAS = B.SAS AND F.DAS = B.DAS`).
    pub fn key_match(&self, names: &[&str]) -> Result<Expr> {
        let mut preds = Vec::with_capacity(names.len());
        for n in names {
            preds.push(self.b(n)?.eq(self.r(n)?));
        }
        Ok(Expr::conjunction(preds))
    }

    /// Convenience: `b.left = r.right` pairs, conjoined.
    pub fn key_match_renamed(&self, pairs: &[(&str, &str)]) -> Result<Expr> {
        let mut preds = Vec::with_capacity(pairs.len());
        for (bn, rn) in pairs {
            preds.push(self.b(bn)?.eq(self.r(rn)?));
        }
        Ok(Expr::conjunction(preds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::DataType;

    fn schemas() -> (Arc<Schema>, Arc<Schema>) {
        let base = Schema::from_pairs([("sas", DataType::Int64), ("das", DataType::Int64)])
            .unwrap()
            .into_arc();
        let detail = Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        (base, detail)
    }

    #[test]
    fn resolves_names_to_indices() {
        let (b, r) = schemas();
        let eb = ExprBuilder::new(b, r);
        assert_eq!(eb.b("das").unwrap(), Expr::BaseCol(1));
        assert_eq!(eb.r("nb").unwrap(), Expr::DetailCol(2));
        assert!(eb.b("nb").is_err());
        assert!(eb.r("missing").is_err());
    }

    #[test]
    fn key_match_builds_conjunction() {
        let (b, r) = schemas();
        let eb = ExprBuilder::new(b, r);
        let e = eb.key_match(&["sas", "das"]).unwrap();
        assert_eq!(e.to_string(), "((b.0 = r.0) AND (b.1 = r.1))");
        assert_eq!(eb.key_match(&[]).unwrap(), Expr::lit(true));
    }

    #[test]
    fn key_match_renamed_uses_both_names() {
        let (b, r) = schemas();
        let eb = ExprBuilder::new(b, r);
        let e = eb.key_match_renamed(&[("sas", "nb")]).unwrap();
        assert_eq!(e.to_string(), "(b.0 = r.2)");
    }

    #[test]
    fn single_sided_builders() {
        let (b, r) = schemas();
        let eb = ExprBuilder::base_only(b.clone());
        assert!(eb.r("sas").is_err());
        assert!(eb.b("sas").is_ok());
        let ed = ExprBuilder::detail_only(r);
        assert!(ed.b("sas").is_err());
        assert!(ed.r("sas").is_ok());
        assert_eq!(eb.base_schema().len(), 2);
        assert_eq!(eb.detail_schema().len(), 0);
    }
}
