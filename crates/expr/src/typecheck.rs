//! Static type inference for expressions.

use skalla_types::{DataType, Result, Schema, SkallaError};

use crate::expr::{BinOp, Expr, UnOp};

/// Infer the result type of `expr` against the given base and detail
/// schemas. Nullability is not tracked: every expression may produce `NULL`
/// at runtime.
pub fn infer_type(expr: &Expr, base: &Schema, detail: &Schema) -> Result<DataType> {
    match expr {
        Expr::Lit(v) => v
            .data_type()
            .ok_or_else(|| SkallaError::type_error("cannot infer type of NULL literal")),
        Expr::BaseCol(i) => base
            .fields()
            .get(*i)
            .map(|f| f.dtype)
            .ok_or_else(|| SkallaError::schema(format!("base column {i} out of range"))),
        Expr::DetailCol(i) => detail
            .fields()
            .get(*i)
            .map(|f| f.dtype)
            .ok_or_else(|| SkallaError::schema(format!("detail column {i} out of range"))),
        Expr::Binary { op, lhs, rhs } => {
            let lt = infer_type(lhs, base, detail)?;
            let rt = infer_type(rhs, base, detail)?;
            infer_binary(*op, lt, rt)
        }
        Expr::Unary { op, expr } => {
            let t = infer_type(expr, base, detail)?;
            match op {
                UnOp::Neg => {
                    if t.is_numeric() {
                        Ok(t)
                    } else {
                        Err(SkallaError::type_error(format!("cannot negate {t}")))
                    }
                }
                UnOp::Not => {
                    if t == DataType::Bool {
                        Ok(DataType::Bool)
                    } else {
                        Err(SkallaError::type_error(format!(
                            "NOT requires BOOL, got {t}"
                        )))
                    }
                }
                UnOp::IsNull => Ok(DataType::Bool),
            }
        }
        Expr::InSet { expr, .. } => {
            // The needle must typecheck; membership always yields BOOL.
            infer_type(expr, base, detail)?;
            Ok(DataType::Bool)
        }
    }
}

fn infer_binary(op: BinOp, lt: DataType, rt: DataType) -> Result<DataType> {
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul => lt.numeric_join(rt),
        BinOp::Div => {
            lt.numeric_join(rt)?;
            Ok(DataType::Float64)
        }
        BinOp::Mod => {
            if lt == DataType::Int64 && rt == DataType::Int64 {
                Ok(DataType::Int64)
            } else {
                Err(SkallaError::type_error(format!(
                    "modulo requires INT64 operands, got {lt} and {rt}"
                )))
            }
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let compatible = (lt.is_numeric() && rt.is_numeric()) || lt == rt;
            if compatible {
                Ok(DataType::Bool)
            } else {
                Err(SkallaError::type_error(format!(
                    "cannot compare {lt} with {rt}"
                )))
            }
        }
        BinOp::And | BinOp::Or => {
            if lt == DataType::Bool && rt == DataType::Bool {
                Ok(DataType::Bool)
            } else {
                Err(SkallaError::type_error(format!(
                    "{op} requires BOOL operands, got {lt} and {rt}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::from_pairs([("a", DataType::Int64), ("s", DataType::Utf8)]).unwrap(),
            Schema::from_pairs([("x", DataType::Float64), ("f", DataType::Bool)]).unwrap(),
        )
    }

    #[test]
    fn infers_arithmetic_types() {
        let (b, d) = schemas();
        let t = infer_type(&Expr::base(0).add(Expr::lit(1)), &b, &d).unwrap();
        assert_eq!(t, DataType::Int64);
        let t = infer_type(&Expr::base(0).add(Expr::detail(0)), &b, &d).unwrap();
        assert_eq!(t, DataType::Float64);
        let t = infer_type(&Expr::base(0).div(Expr::lit(2)), &b, &d).unwrap();
        assert_eq!(t, DataType::Float64);
        let t = infer_type(&Expr::base(0).rem(Expr::lit(2)), &b, &d).unwrap();
        assert_eq!(t, DataType::Int64);
    }

    #[test]
    fn rejects_bad_arithmetic() {
        let (b, d) = schemas();
        assert!(infer_type(&Expr::base(1).add(Expr::lit(1)), &b, &d).is_err());
        assert!(infer_type(&Expr::detail(0).rem(Expr::lit(2)), &b, &d).is_err());
    }

    #[test]
    fn comparison_and_logic_yield_bool() {
        let (b, d) = schemas();
        let t = infer_type(&Expr::base(0).lt(Expr::detail(0)), &b, &d).unwrap();
        assert_eq!(t, DataType::Bool);
        let t = infer_type(&Expr::detail(1).and(Expr::base(0).gt(Expr::lit(1))), &b, &d).unwrap();
        assert_eq!(t, DataType::Bool);
        assert!(infer_type(&Expr::base(1).lt(Expr::lit(1)), &b, &d).is_err());
        assert!(infer_type(&Expr::base(0).and(Expr::detail(1)), &b, &d).is_err());
    }

    #[test]
    fn unary_rules() {
        let (b, d) = schemas();
        assert_eq!(
            infer_type(&Expr::base(0).neg(), &b, &d).unwrap(),
            DataType::Int64
        );
        assert!(infer_type(&Expr::base(1).neg(), &b, &d).is_err());
        assert_eq!(
            infer_type(&Expr::detail(1).not(), &b, &d).unwrap(),
            DataType::Bool
        );
        assert!(infer_type(&Expr::base(0).not(), &b, &d).is_err());
        assert_eq!(
            infer_type(&Expr::base(1).is_null(), &b, &d).unwrap(),
            DataType::Bool
        );
    }

    #[test]
    fn out_of_range_columns_rejected() {
        let (b, d) = schemas();
        assert!(infer_type(&Expr::base(5), &b, &d).is_err());
        assert!(infer_type(&Expr::detail(5), &b, &d).is_err());
    }

    #[test]
    fn null_literal_has_no_type() {
        let (b, d) = schemas();
        assert!(infer_type(&Expr::Lit(skalla_types::Value::Null), &b, &d).is_err());
    }

    #[test]
    fn in_set_is_bool() {
        let (b, d) = schemas();
        let e = Expr::base(0).in_set([skalla_types::Value::Int(1)]);
        assert_eq!(infer_type(&e, &b, &d).unwrap(), DataType::Bool);
    }
}
