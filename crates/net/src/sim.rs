//! The simulated message-passing fabric.
//!
//! [`SimNetwork::full_mesh`] creates `n` [`Endpoint`]s connected pairwise by
//! unbounded crossbeam channels. Endpoints are `Send` and are moved into the
//! per-site worker threads by the distributed runtime; the shared
//! [`TransferStats`] (behind a `parking_lot` mutex) records every message.

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use skalla_types::{Result, SkallaError};

use crate::cost::{CostModel, TransferStats};

/// Identifies a node in the simulated network. By convention the
/// coordinator is node 0 and sites are 1..=n.
pub type NodeId = u32;

/// One message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Serialized payload.
    pub payload: Bytes,
}

/// A node's connection to the network: senders to every peer and one
/// receiver for all inbound traffic.
#[derive(Debug)]
pub struct Endpoint {
    id: NodeId,
    peers: Vec<Option<Sender<Envelope>>>,
    inbox: Receiver<Envelope>,
    stats: Arc<Mutex<TransferStats>>,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Send `payload` to `dst`, recording its size.
    pub fn send(&self, dst: NodeId, payload: Bytes) -> Result<()> {
        let sender = self
            .peers
            .get(dst as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| SkallaError::net(format!("unknown destination node {dst}")))?;
        self.stats.lock().record(self.id, dst, payload.len() as u64);
        sender
            .send(Envelope {
                src: self.id,
                dst,
                payload,
            })
            .map_err(|_| SkallaError::net(format!("node {dst} disconnected")))
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<Envelope> {
        self.inbox
            .recv()
            .map_err(|_| SkallaError::net("all peers disconnected"))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.inbox.try_recv().ok()
    }
}

/// The simulated network: construction plus shared accounting.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    stats: Arc<Mutex<TransferStats>>,
    cost: CostModel,
    num_nodes: usize,
}

impl SimNetwork {
    /// Create a full mesh of `n` nodes; returns the network handle and one
    /// endpoint per node (index = node id).
    pub fn full_mesh(n: usize, cost: CostModel) -> (SimNetwork, Vec<Endpoint>) {
        let stats = Arc::new(Mutex::new(TransferStats::new()));
        let mut inboxes: Vec<(Sender<Envelope>, Receiver<Envelope>)> =
            (0..n).map(|_| unbounded()).collect();
        let mut endpoints = Vec::with_capacity(n);
        for id in 0..n {
            let peers: Vec<Option<Sender<Envelope>>> = (0..n)
                .map(|peer| {
                    if peer == id {
                        None // no self-links
                    } else {
                        Some(inboxes[peer].0.clone())
                    }
                })
                .collect();
            let inbox = inboxes[id].1.clone();
            endpoints.push(Endpoint {
                id: id as NodeId,
                peers,
                inbox,
                stats: stats.clone(),
            });
        }
        // Drop the original senders so disconnects propagate when endpoints
        // are dropped.
        inboxes.clear();
        (
            SimNetwork {
                stats,
                cost,
                num_nodes: n,
            },
            endpoints,
        )
    }

    /// Snapshot of the transfer statistics.
    pub fn stats(&self) -> TransferStats {
        self.stats.lock().clone()
    }

    /// Reset transfer statistics.
    pub fn reset_stats(&self) {
        self.stats.lock().clear();
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_between_endpoints() {
        let (net, eps) = SimNetwork::full_mesh(3, CostModel::free());
        eps[0].send(1, Bytes::from_static(b"hello")).unwrap();
        eps[2].send(1, Bytes::from_static(b"world!")).unwrap();
        let a = eps[1].recv().unwrap();
        let b = eps[1].recv().unwrap();
        let mut srcs = vec![a.src, b.src];
        srcs.sort_unstable();
        assert_eq!(srcs, vec![0, 2]);
        assert_eq!(net.stats().total_bytes(), 11);
        assert_eq!(net.stats().link(0, 1).messages, 1);
        assert_eq!(net.num_nodes(), 3);
    }

    #[test]
    fn self_send_and_unknown_destination_rejected() {
        let (_net, eps) = SimNetwork::full_mesh(2, CostModel::free());
        assert!(eps[0].send(0, Bytes::new()).is_err());
        assert!(eps[0].send(9, Bytes::new()).is_err());
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (_net, eps) = SimNetwork::full_mesh(2, CostModel::free());
        assert!(eps[1].try_recv().is_none());
        eps[0].send(1, Bytes::from_static(b"x")).unwrap();
        assert!(eps[1].try_recv().is_some());
    }

    #[test]
    fn stats_reset() {
        let (net, eps) = SimNetwork::full_mesh(2, CostModel::free());
        eps[0].send(1, Bytes::from_static(b"abc")).unwrap();
        assert_eq!(net.stats().total_bytes(), 3);
        net.reset_stats();
        assert_eq!(net.stats().total_bytes(), 0);
    }

    #[test]
    fn works_across_threads() {
        let (net, mut eps) = SimNetwork::full_mesh(2, CostModel::lan_2002());
        let site = eps.pop().unwrap();
        let coord = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            let env = site.recv().unwrap();
            site.send(0, env.payload).unwrap(); // echo
        });
        coord.send(1, Bytes::from_static(b"ping")).unwrap();
        let back = coord.recv().unwrap();
        assert_eq!(&back.payload[..], b"ping");
        handle.join().unwrap();
        assert_eq!(net.stats().total_messages(), 2);
        assert!(net.cost_model().transfer_time(100) > 0.0);
    }

    #[test]
    fn recv_errors_after_all_peers_drop() {
        let (_net, mut eps) = SimNetwork::full_mesh(2, CostModel::free());
        let e1 = eps.pop().unwrap();
        drop(eps); // drops endpoint 0 and its cloned sender to e1
        assert!(e1.recv().is_err());
    }
}
