//! The simulated message-passing fabric.
//!
//! [`SimNetwork::full_mesh`] creates `n` [`Endpoint`]s connected pairwise by
//! unbounded crossbeam channels. Endpoints are `Send` and are moved into the
//! per-site worker threads by the distributed runtime; the shared
//! [`TransferStats`] (behind a `parking_lot` mutex) records every message.
//!
//! [`SimNetwork::full_mesh_with_faults`] threads a [`FaultPlan`] into every
//! endpoint: sends may be dropped or duplicated, receives may be reordered
//! through a bounded holdback queue, and a node may crash (its `recv` fails
//! permanently, which makes the owning site thread exit and every sender to
//! it observe a closed channel). All fault decisions are deterministic in
//! the plan's seed — see [`fault`](crate::fault).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use skalla_types::{Result, SkallaError};

use crate::cost::{CostModel, TransferStats};
use crate::fault::FaultPlan;

/// Identifies a node in the simulated network. By convention the
/// coordinator is node 0 and sites are 1..=n.
pub type NodeId = u32;

/// One message in flight.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Serialized payload.
    pub payload: Bytes,
    /// Reliable messages bypass drop/duplicate/delay injection (they still
    /// fail if the destination crashed or disconnected).
    pub reliable: bool,
}

/// Mutable fault bookkeeping for one endpoint (interior-mutable because
/// `send`/`recv` take `&self`).
#[derive(Debug, Default)]
struct FaultRuntime {
    /// Per-destination count of unreliable sends (fault decision ordinal).
    send_ordinals: Vec<u64>,
    /// Count of unreliable receives considered for delay.
    recv_ordinal: u64,
    /// Total messages delivered to this endpoint (crash countdown).
    delivered: u64,
    /// Messages held back to simulate delay/reordering.
    holdback: VecDeque<Envelope>,
}

/// Fault state attached to an endpoint by `full_mesh_with_faults`.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    crash_after: Option<u64>,
    rt: Mutex<FaultRuntime>,
}

/// A node's connection to the network: senders to every peer and one
/// receiver for all inbound traffic.
#[derive(Debug)]
pub struct Endpoint {
    id: NodeId,
    peers: Vec<Option<Sender<Envelope>>>,
    inbox: Receiver<Envelope>,
    stats: Arc<Mutex<TransferStats>>,
    fault: Option<FaultState>,
}

impl Endpoint {
    /// This endpoint's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Send `payload` to `dst`, recording its size. Subject to fault
    /// injection when the network was built with a [`FaultPlan`].
    pub fn send(&self, dst: NodeId, payload: Bytes) -> Result<()> {
        self.send_impl(dst, payload, false)
    }

    /// Send `payload` to `dst` bypassing drop/duplicate/delay injection.
    ///
    /// Used for control traffic (e.g. `Shutdown`) that must not be lost to
    /// an unlucky seed. A crashed or disconnected destination still fails.
    pub fn send_reliable(&self, dst: NodeId, payload: Bytes) -> Result<()> {
        self.send_impl(dst, payload, true)
    }

    fn send_impl(&self, dst: NodeId, payload: Bytes, reliable: bool) -> Result<()> {
        let sender = self
            .peers
            .get(dst as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| SkallaError::net(format!("unknown destination node {dst}")))?;
        let env = Envelope {
            src: self.id,
            dst,
            payload,
            reliable,
        };
        // Number of copies that hit the wire: 0 after a drop, 2 after a
        // duplication, 1 otherwise. Bytes are accounted per transmission
        // *attempt* (a dropped message still crossed the sender's NIC).
        let copies = match (&self.fault, reliable) {
            (Some(st), false) if !st.plan.is_noop() => {
                let ordinal = {
                    let mut rt = st.rt.lock();
                    if rt.send_ordinals.len() <= dst as usize {
                        rt.send_ordinals.resize(dst as usize + 1, 0);
                    }
                    let o = rt.send_ordinals[dst as usize];
                    rt.send_ordinals[dst as usize] += 1;
                    o
                };
                if st.plan.should_drop(self.id, dst, ordinal) {
                    0
                } else if st.plan.should_duplicate(self.id, dst, ordinal) {
                    2
                } else {
                    1
                }
            }
            _ => 1,
        };
        self.stats
            .lock()
            .record(self.id, dst, env.payload.len() as u64);
        for _ in 0..copies {
            sender
                .send(env.clone())
                .map_err(|_| SkallaError::net(format!("node {dst} disconnected")))?;
        }
        Ok(())
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<Envelope> {
        match self.recv_deadline(None)? {
            Some(env) => Ok(env),
            None => unreachable!("recv_deadline(None) never times out"),
        }
    }

    /// Block until a message arrives or `timeout` elapses; `Ok(None)` on
    /// timeout, `Err` when every peer disconnected (or this node crashed).
    pub fn try_recv_for(&self, timeout: Duration) -> Result<Option<Envelope>> {
        self.recv_deadline(Some(Instant::now() + timeout))
    }

    /// Like [`Endpoint::try_recv_for`] but a timeout is an error naming this
    /// endpoint and the elapsed deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope> {
        self.try_recv_for(timeout)?.ok_or_else(|| {
            SkallaError::net(format!(
                "endpoint {}: receive timed out after {:.3}s",
                self.id,
                timeout.as_secs_f64()
            ))
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        match &self.fault {
            None => self.inbox.try_recv().ok(),
            Some(_) => {
                if self.crashed() {
                    return None;
                }
                loop {
                    match self.inbox.try_recv() {
                        Ok(env) => {
                            if let Some(env) = self.consider(env) {
                                return Some(env);
                            }
                        }
                        Err(_) => return self.pop_holdback(),
                    }
                }
            }
        }
    }

    /// The shared receive core: `deadline == None` blocks forever.
    fn recv_deadline(&self, deadline: Option<Instant>) -> Result<Option<Envelope>> {
        if self.fault.is_none() {
            return match deadline {
                None => self
                    .inbox
                    .recv()
                    .map(Some)
                    .map_err(|_| self.disconnected_error()),
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    match self.inbox.recv_timeout(left) {
                        Ok(env) => Ok(Some(env)),
                        Err(RecvTimeoutError::Timeout) => Ok(None),
                        Err(RecvTimeoutError::Disconnected) => Err(self.disconnected_error()),
                    }
                }
            };
        }
        loop {
            if self.crashed() {
                return Err(SkallaError::net(format!(
                    "endpoint {}: site crashed (fault injection)",
                    self.id
                )));
            }
            // Drain ready traffic first so delay decisions can reorder it.
            match self.inbox.try_recv() {
                Ok(env) => {
                    if let Some(env) = self.consider(env) {
                        return Ok(Some(env));
                    }
                    continue;
                }
                Err(TryRecvError::Disconnected) => {
                    return match self.pop_holdback() {
                        Some(env) => Ok(Some(env)),
                        None => Err(self.disconnected_error()),
                    };
                }
                Err(TryRecvError::Empty) => {}
            }
            // Nothing ready: flush the oldest held-back message (this is
            // what bounds the delay — a quiet network delivers stragglers).
            if let Some(env) = self.pop_holdback() {
                return Ok(Some(env));
            }
            // Truly idle: block (with deadline) for new traffic.
            match deadline {
                None => match self.inbox.recv() {
                    Ok(env) => {
                        if let Some(env) = self.consider(env) {
                            return Ok(Some(env));
                        }
                    }
                    Err(_) => {
                        return match self.pop_holdback() {
                            Some(env) => Ok(Some(env)),
                            None => Err(self.disconnected_error()),
                        }
                    }
                },
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    match self.inbox.recv_timeout(left) {
                        Ok(env) => {
                            if let Some(env) = self.consider(env) {
                                return Ok(Some(env));
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => return Ok(None),
                        Err(RecvTimeoutError::Disconnected) => {
                            return match self.pop_holdback() {
                                Some(env) => Ok(Some(env)),
                                None => Err(self.disconnected_error()),
                            }
                        }
                    }
                }
            }
        }
    }

    /// Run one inbound envelope through the delay fault; `None` = held back.
    fn consider(&self, env: Envelope) -> Option<Envelope> {
        let st = self.fault.as_ref().expect("fault state");
        let mut rt = st.rt.lock();
        if !env.reliable {
            let ordinal = rt.recv_ordinal;
            rt.recv_ordinal += 1;
            if rt.holdback.len() < st.plan.delay_window
                && st.plan.should_delay(env.src, self.id, ordinal)
            {
                rt.holdback.push_back(env);
                return None;
            }
        }
        rt.delivered += 1;
        Some(env)
    }

    /// Deliver the oldest held-back message, if any.
    fn pop_holdback(&self) -> Option<Envelope> {
        let st = self.fault.as_ref()?;
        let mut rt = st.rt.lock();
        let env = rt.holdback.pop_front()?;
        rt.delivered += 1;
        Some(env)
    }

    /// Has this endpoint's crash fault triggered?
    fn crashed(&self) -> bool {
        match &self.fault {
            Some(st) => match st.crash_after {
                Some(n) => st.rt.lock().delivered >= n,
                None => false,
            },
            None => false,
        }
    }

    fn disconnected_error(&self) -> SkallaError {
        SkallaError::net(format!("endpoint {}: all peers disconnected", self.id))
    }
}

/// The simulated network: construction plus shared accounting.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    stats: Arc<Mutex<TransferStats>>,
    cost: CostModel,
    num_nodes: usize,
}

impl SimNetwork {
    /// Create a full mesh of `n` nodes; returns the network handle and one
    /// endpoint per node (index = node id).
    pub fn full_mesh(n: usize, cost: CostModel) -> (SimNetwork, Vec<Endpoint>) {
        SimNetwork::full_mesh_with_faults(n, cost, FaultPlan::none())
    }

    /// Like [`SimNetwork::full_mesh`], but every endpoint applies `plan`'s
    /// deterministic fault decisions to its traffic.
    pub fn full_mesh_with_faults(
        n: usize,
        cost: CostModel,
        plan: FaultPlan,
    ) -> (SimNetwork, Vec<Endpoint>) {
        let stats = Arc::new(Mutex::new(TransferStats::new()));
        let mut inboxes: Vec<(Sender<Envelope>, Receiver<Envelope>)> =
            (0..n).map(|_| unbounded()).collect();
        let mut endpoints = Vec::with_capacity(n);
        let active = !plan.is_noop();
        for id in 0..n {
            let peers: Vec<Option<Sender<Envelope>>> = (0..n)
                .map(|peer| {
                    if peer == id {
                        None // no self-links
                    } else {
                        Some(inboxes[peer].0.clone())
                    }
                })
                .collect();
            let inbox = inboxes[id].1.clone();
            let fault = active.then(|| FaultState {
                crash_after: plan.crash_after(id as NodeId),
                plan: plan.clone(),
                rt: Mutex::new(FaultRuntime::default()),
            });
            endpoints.push(Endpoint {
                id: id as NodeId,
                peers,
                inbox,
                stats: stats.clone(),
                fault,
            });
        }
        // Drop the original senders so disconnects propagate when endpoints
        // are dropped.
        inboxes.clear();
        (
            SimNetwork {
                stats,
                cost,
                num_nodes: n,
            },
            endpoints,
        )
    }

    /// Snapshot of the transfer statistics.
    pub fn stats(&self) -> TransferStats {
        self.stats.lock().clone()
    }

    /// Reset transfer statistics.
    pub fn reset_stats(&self) {
        self.stats.lock().clear();
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_flow_between_endpoints() {
        let (net, eps) = SimNetwork::full_mesh(3, CostModel::free());
        eps[0].send(1, Bytes::from_static(b"hello")).unwrap();
        eps[2].send(1, Bytes::from_static(b"world!")).unwrap();
        let a = eps[1].recv().unwrap();
        let b = eps[1].recv().unwrap();
        let mut srcs = vec![a.src, b.src];
        srcs.sort_unstable();
        assert_eq!(srcs, vec![0, 2]);
        assert_eq!(net.stats().total_bytes(), 11);
        assert_eq!(net.stats().link(0, 1).messages, 1);
        assert_eq!(net.num_nodes(), 3);
    }

    #[test]
    fn self_send_and_unknown_destination_rejected() {
        let (_net, eps) = SimNetwork::full_mesh(2, CostModel::free());
        assert!(eps[0].send(0, Bytes::new()).is_err());
        assert!(eps[0].send(9, Bytes::new()).is_err());
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (_net, eps) = SimNetwork::full_mesh(2, CostModel::free());
        assert!(eps[1].try_recv().is_none());
        eps[0].send(1, Bytes::from_static(b"x")).unwrap();
        assert!(eps[1].try_recv().is_some());
    }

    #[test]
    fn stats_reset() {
        let (net, eps) = SimNetwork::full_mesh(2, CostModel::free());
        eps[0].send(1, Bytes::from_static(b"abc")).unwrap();
        assert_eq!(net.stats().total_bytes(), 3);
        net.reset_stats();
        assert_eq!(net.stats().total_bytes(), 0);
    }

    #[test]
    fn works_across_threads() {
        let (net, mut eps) = SimNetwork::full_mesh(2, CostModel::lan_2002());
        let site = eps.pop().unwrap();
        let coord = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            let env = site.recv().unwrap();
            site.send(0, env.payload).unwrap(); // echo
        });
        coord.send(1, Bytes::from_static(b"ping")).unwrap();
        let back = coord.recv().unwrap();
        assert_eq!(&back.payload[..], b"ping");
        handle.join().unwrap();
        assert_eq!(net.stats().total_messages(), 2);
        assert!(net.cost_model().transfer_time(100) > 0.0);
    }

    #[test]
    fn recv_errors_after_all_peers_drop() {
        let (_net, mut eps) = SimNetwork::full_mesh(2, CostModel::free());
        let e1 = eps.pop().unwrap();
        drop(eps); // drops endpoint 0 and its cloned sender to e1
        let err = e1.recv().unwrap_err().to_string();
        assert!(
            err.contains("endpoint 1"),
            "error should name the node: {err}"
        );
    }

    #[test]
    fn recv_timeout_names_endpoint_and_deadline() {
        let (_net, eps) = SimNetwork::full_mesh(2, CostModel::free());
        let err = eps[1]
            .recv_timeout(Duration::from_millis(10))
            .unwrap_err()
            .to_string();
        assert!(err.contains("endpoint 1"), "{err}");
        assert!(err.contains("0.010"), "{err}");
    }

    #[test]
    fn try_recv_for_times_out_with_none() {
        let (_net, eps) = SimNetwork::full_mesh(2, CostModel::free());
        let got = eps[1].try_recv_for(Duration::from_millis(5)).unwrap();
        assert!(got.is_none());
        eps[0].send(1, Bytes::from_static(b"x")).unwrap();
        let got = eps[1].try_recv_for(Duration::from_millis(50)).unwrap();
        assert_eq!(&got.unwrap().payload[..], b"x");
    }

    #[test]
    fn dropped_messages_never_arrive() {
        let plan = FaultPlan::seeded(11).with_drop_rate(1.0);
        let (_net, eps) = SimNetwork::full_mesh_with_faults(2, CostModel::free(), plan);
        eps[0].send(1, Bytes::from_static(b"gone")).unwrap();
        assert!(eps[1]
            .try_recv_for(Duration::from_millis(10))
            .unwrap()
            .is_none());
        // Reliable sends bypass the drop fault.
        eps[0]
            .send_reliable(1, Bytes::from_static(b"kept"))
            .unwrap();
        let env = eps[1].recv().unwrap();
        assert_eq!(&env.payload[..], b"kept");
        assert!(env.reliable);
    }

    #[test]
    fn duplicated_messages_arrive_twice() {
        let plan = FaultPlan::seeded(11).with_dup_rate(1.0);
        let (_net, eps) = SimNetwork::full_mesh_with_faults(2, CostModel::free(), plan);
        eps[0].send(1, Bytes::from_static(b"twin")).unwrap();
        assert_eq!(&eps[1].recv().unwrap().payload[..], b"twin");
        assert_eq!(&eps[1].recv().unwrap().payload[..], b"twin");
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn delayed_messages_are_reordered_not_lost() {
        // Delay every other message; send a burst and check we still get
        // every payload exactly once.
        let plan = FaultPlan::seeded(5).with_delay_rate(0.5);
        let (_net, eps) = SimNetwork::full_mesh_with_faults(2, CostModel::free(), plan);
        let n = 20u8;
        for i in 0..n {
            eps[0].send(1, Bytes::from(vec![i])).unwrap();
        }
        let mut got: Vec<u8> = (0..n).map(|_| eps[1].recv().unwrap().payload[0]).collect();
        let in_order = got.windows(2).all(|w| w[0] < w[1]);
        got.sort_unstable();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
        assert!(!in_order, "seed 5 at rate 0.5 should reorder the burst");
    }

    #[test]
    fn crashed_node_recv_fails_and_senders_see_disconnect() {
        let plan = FaultPlan::seeded(1).with_crash(1, 2);
        let (_net, mut eps) = SimNetwork::full_mesh_with_faults(2, CostModel::free(), plan);
        let site = eps.pop().unwrap();
        let coord = eps.pop().unwrap();
        coord.send(1, Bytes::from_static(b"a")).unwrap();
        coord.send(1, Bytes::from_static(b"b")).unwrap();
        coord.send(1, Bytes::from_static(b"c")).unwrap();
        assert!(site.recv().is_ok());
        assert!(site.recv().is_ok());
        let err = site.recv().unwrap_err().to_string();
        assert!(err.contains("crashed"), "{err}");
        // The owning thread would now drop the endpoint; senders then fail.
        drop(site);
        assert!(coord.send(1, Bytes::from_static(b"d")).is_err());
    }

    #[test]
    fn fault_decisions_are_deterministic_across_runs() {
        let run = || {
            let plan = FaultPlan::seeded(77).with_drop_rate(0.4);
            let (_net, eps) = SimNetwork::full_mesh_with_faults(2, CostModel::free(), plan);
            for i in 0..30u8 {
                eps[0].send(1, Bytes::from(vec![i])).unwrap();
            }
            let mut got = Vec::new();
            while let Some(env) = eps[1].try_recv() {
                got.push(env.payload[0]);
            }
            got
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.len() < 30, "seed 77 at rate 0.4 should drop something");
    }
}
