//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes which faults the fabric injects: per-link
//! message **drop**, **duplication**, **delay** (reordering), and **site
//! crash** after a number of delivered messages. All decisions are pure
//! functions of `(seed, fault kind, src, dst, per-link ordinal)`, so a run
//! with the same plan, topology, and traffic is bit-for-bit reproducible —
//! which is what lets the test suite assert exact outcomes under faults.
//!
//! The plan is *passive*: it makes decisions, the [`Endpoint`] machinery in
//! [`sim`] applies them. Messages sent with `send_reliable` (control traffic
//! such as `Shutdown`) bypass drop/duplicate/delay entirely, so teardown
//! cannot be wedged by an unlucky seed; a crashed site, however, is dead to
//! reliable traffic too.
//!
//! [`Endpoint`]: crate::sim::Endpoint
//! [`sim`]: crate::sim

use crate::sim::NodeId;

/// Crash one node after it has received a number of messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The node that crashes.
    pub node: NodeId,
    /// How many messages the node receives before crashing. `0` means the
    /// node is dead on arrival (its first `recv` fails).
    pub after_messages: u64,
}

/// A deterministic description of the faults the simulated network injects.
///
/// The default plan ([`FaultPlan::none`]) injects nothing; `full_mesh` uses
/// it. Rates are probabilities in `[0, 1]` evaluated independently per
/// (link, message-ordinal) pair from the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault decisions.
    pub seed: u64,
    /// Probability an unreliable message is dropped in transit.
    pub drop_rate: f64,
    /// Probability an unreliable message is delivered twice.
    pub dup_rate: f64,
    /// Probability an unreliable message is held back behind later traffic
    /// (reordering).
    pub delay_rate: f64,
    /// Maximum number of messages a receiver holds back at once.
    pub delay_window: usize,
    /// Nodes that crash mid-run.
    pub crashes: Vec<CrashSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects no faults at all.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            delay_window: 4,
            crashes: Vec::new(),
        }
    }

    /// A fault-free plan with the given decision seed (rates start at zero;
    /// chain the `with_*` builders to enable faults).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Set the per-message drop probability.
    pub fn with_drop_rate(mut self, rate: f64) -> FaultPlan {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the per-message duplication probability.
    pub fn with_dup_rate(mut self, rate: f64) -> FaultPlan {
        self.dup_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Set the per-message delay (reorder) probability.
    pub fn with_delay_rate(mut self, rate: f64) -> FaultPlan {
        self.delay_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Crash `node` after it receives `after_messages` messages.
    pub fn with_crash(mut self, node: NodeId, after_messages: u64) -> FaultPlan {
        self.crashes.push(CrashSpec {
            node,
            after_messages,
        });
        self
    }

    /// A randomized single-site crash derived deterministically from `seed`:
    /// one of the sites `1..=num_sites` (node 0 is the coordinator) crashes
    /// after `0..max_after_messages` delivered messages. This is the unit of
    /// the failover soak matrix — sweeping `seed` sweeps both the victim and
    /// the crash point, and the same seed always reproduces the same run.
    pub fn random_single_crash(seed: u64, num_sites: u32, max_after_messages: u64) -> FaultPlan {
        let node = 1 + (splitmix64(seed ^ SALT_CRASH) % u64::from(num_sites.max(1))) as NodeId;
        let after = splitmix64(seed.wrapping_add(1) ^ SALT_CRASH) % max_after_messages.max(1);
        FaultPlan::seeded(seed).with_crash(node, after)
    }

    /// `true` when the plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.drop_rate == 0.0
            && self.dup_rate == 0.0
            && self.delay_rate == 0.0
            && self.crashes.is_empty()
    }

    /// When `node` is scheduled to crash, the message count it crashes after.
    pub fn crash_after(&self, node: NodeId) -> Option<u64> {
        self.crashes
            .iter()
            .find(|c| c.node == node)
            .map(|c| c.after_messages)
    }

    /// Should the `ordinal`-th unreliable message on link `src → dst` be
    /// dropped?
    pub fn should_drop(&self, src: NodeId, dst: NodeId, ordinal: u64) -> bool {
        self.decide(SALT_DROP, src, dst, ordinal) < self.drop_rate
    }

    /// Should the `ordinal`-th unreliable message on link `src → dst` be
    /// duplicated? (Evaluated only for messages that were not dropped.)
    pub fn should_duplicate(&self, src: NodeId, dst: NodeId, ordinal: u64) -> bool {
        self.decide(SALT_DUP, src, dst, ordinal) < self.dup_rate
    }

    /// Should the `ordinal`-th unreliable message *received* from `src` at
    /// `dst` be held back behind later traffic?
    pub fn should_delay(&self, src: NodeId, dst: NodeId, ordinal: u64) -> bool {
        self.decide(SALT_DELAY, src, dst, ordinal) < self.delay_rate
    }

    /// Uniform `[0, 1)` decision value for one (kind, link, ordinal) triple.
    fn decide(&self, salt: u64, src: NodeId, dst: NodeId, ordinal: u64) -> f64 {
        let mut h = self.seed ^ salt;
        h = splitmix64(h ^ u64::from(src));
        h = splitmix64(h ^ (u64::from(dst) << 32));
        h = splitmix64(h ^ ordinal);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

const SALT_DROP: u64 = 0x00D5_0A1B_DD0D_0001;
const SALT_DUP: u64 = 0x00D5_0A1B_DD0D_0002;
const SALT_DELAY: u64 = 0x00D5_0A1B_DD0D_0003;
const SALT_CRASH: u64 = 0x00D5_0A1B_DD0D_0004;

/// SplitMix64 mixing step — a tiny, well-distributed hash, so the fault
/// layer needs no external RNG dependency.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::seeded(42).with_drop_rate(0.3);
        let b = FaultPlan::seeded(42).with_drop_rate(0.3);
        for ord in 0..200 {
            assert_eq!(a.should_drop(0, 1, ord), b.should_drop(0, 1, ord));
            assert_eq!(a.should_delay(2, 0, ord), b.should_delay(2, 0, ord));
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::seeded(7).with_drop_rate(0.25);
        let dropped = (0..4000).filter(|&ord| plan.should_drop(1, 0, ord)).count();
        // Allow a generous band; the point is "about a quarter", not exact.
        assert!((600..1400).contains(&dropped), "dropped {dropped}/4000");
    }

    #[test]
    fn links_decide_independently() {
        let plan = FaultPlan::seeded(9).with_drop_rate(0.5);
        let a: Vec<bool> = (0..64).map(|o| plan.should_drop(0, 1, o)).collect();
        let b: Vec<bool> = (0..64).map(|o| plan.should_drop(0, 2, o)).collect();
        assert_ne!(a, b, "different links should see different loss patterns");
    }

    #[test]
    fn zero_rates_never_fire_and_one_always_does() {
        let silent = FaultPlan::seeded(3);
        let noisy = FaultPlan::seeded(3).with_drop_rate(1.0);
        for ord in 0..100 {
            assert!(!silent.should_drop(0, 1, ord));
            assert!(!silent.should_duplicate(0, 1, ord));
            assert!(!silent.should_delay(0, 1, ord));
            assert!(noisy.should_drop(0, 1, ord));
        }
        assert!(silent.is_noop());
        assert!(!noisy.is_noop());
    }

    #[test]
    fn random_single_crash_is_deterministic_and_in_range() {
        for seed in 0..64 {
            let a = FaultPlan::random_single_crash(seed, 4, 40);
            let b = FaultPlan::random_single_crash(seed, 4, 40);
            assert_eq!(a, b);
            assert_eq!(a.crashes.len(), 1);
            assert!((1..=4).contains(&a.crashes[0].node), "{:?}", a.crashes[0]);
            assert!(a.crashes[0].after_messages < 40);
        }
        // The sweep actually varies both the victim and the crash point.
        let victims: std::collections::BTreeSet<_> = (0..64)
            .map(|s| FaultPlan::random_single_crash(s, 4, 40).crashes[0].node)
            .collect();
        assert_eq!(victims.len(), 4, "all sites should appear as victims");
    }

    #[test]
    fn crash_lookup() {
        let plan = FaultPlan::seeded(1).with_crash(3, 5);
        assert_eq!(plan.crash_after(3), Some(5));
        assert_eq!(plan.crash_after(2), None);
        assert!(!plan.is_noop());
    }
}
