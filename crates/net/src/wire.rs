//! Binary wire format.
//!
//! A small, deterministic, self-describing-enough format:
//!
//! * unsigned integers: LEB128 varint,
//! * signed integers: zigzag + varint,
//! * floats: 8-byte little-endian IEEE-754,
//! * strings/bytes: varint length prefix + UTF-8 bytes,
//! * values: 1-byte tag + payload,
//! * schemas: field count + (name, type tag) pairs,
//! * relations: schema + row count + row-major values.
//!
//! Exactness matters: Fig. 2 (right) of the paper plots bytes transferred,
//! and Theorem 2's transfer bound is checked in integration tests against
//! these counts.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use skalla_types::{DataType, Field, Relation, Result, Schema, SkallaError, Value};

/// Types that can serialize themselves onto a byte buffer.
pub trait WireEncode {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encode into a fresh buffer.
    fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Exact number of bytes `encode` would append.
    ///
    /// The default encodes into a scratch buffer and measures it; impls in
    /// this module override it with a direct computation so size estimation
    /// (e.g. chunking decisions) never pays for a throwaway encode.
    fn wire_len(&self) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Number of bytes [`put_varint`] emits for `v`.
pub fn varint_len(v: u64) -> usize {
    // Each output byte carries 7 payload bits; zero still takes one byte.
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Number of bytes [`put_zigzag`] emits for `v`.
pub fn zigzag_len(v: i64) -> usize {
    varint_len(((v << 1) ^ (v >> 63)) as u64)
}

/// Types that can deserialize themselves from a [`WireReader`].
pub trait WireDecode: Sized {
    /// Read one value of `Self`, consuming bytes from `r`.
    fn decode(r: &mut WireReader<'_>) -> Result<Self>;

    /// Decode from a complete buffer, requiring full consumption.
    fn from_wire(bytes: &[u8]) -> Result<Self> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(SkallaError::net(format!(
                "{} trailing bytes after decode",
                r.remaining()
            )));
        }
        Ok(v)
    }
}

/// A cursor over a byte slice with checked reads.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf }
    }

    /// Bytes left.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        if self.buf.is_empty() {
            return Err(SkallaError::net("unexpected end of message"));
        }
        let b = self.buf[0];
        self.buf.advance(1);
        Ok(b)
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(SkallaError::net("varint overflow"));
            }
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-encoded signed integer.
    pub fn zigzag(&mut self) -> Result<i64> {
        let u = self.varint()?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    /// Read an 8-byte little-endian float.
    pub fn f64(&mut self) -> Result<f64> {
        if self.buf.len() < 8 {
            return Err(SkallaError::net("unexpected end of message (f64)"));
        }
        let v = f64::from_le_bytes(self.buf[..8].try_into().expect("8 bytes"));
        self.buf.advance(8);
        Ok(v)
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.varint()? as usize;
        if self.buf.len() < len {
            return Err(SkallaError::net("unexpected end of message (bytes)"));
        }
        let (head, tail) = self.buf.split_at(len);
        self.buf = tail;
        Ok(head)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SkallaError::net("invalid UTF-8 in message"))
    }
}

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

/// Append a zigzag varint.
pub fn put_zigzag(buf: &mut BytesMut, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a length-prefixed string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

impl WireEncode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self);
    }

    fn wire_len(&self) -> usize {
        varint_len(*self)
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        r.varint()
    }
}

impl WireEncode for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, u64::from(*self));
    }

    fn wire_len(&self) -> usize {
        varint_len(u64::from(*self))
    }
}

impl WireDecode for u32 {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let v = r.varint()?;
        u32::try_from(v).map_err(|_| SkallaError::net("u32 overflow"))
    }
}

impl WireEncode for usize {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self as u64);
    }

    fn wire_len(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl WireDecode for usize {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let v = r.varint()?;
        usize::try_from(v).map_err(|_| SkallaError::net("usize overflow"))
    }
}

impl WireEncode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }

    fn wire_len(&self) -> usize {
        1
    }
}

impl WireDecode for bool {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SkallaError::net(format!("invalid bool byte {other}"))),
        }
    }
}

impl WireEncode for String {
    fn encode(&self, buf: &mut BytesMut) {
        put_str(buf, self);
    }

    fn wire_len(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl WireDecode for String {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        r.string()
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }

    fn wire_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(T::wire_len).sum::<usize>()
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let n = r.varint()? as usize;
        // Guard against hostile/corrupt lengths: cap the pre-allocation.
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }

    fn wire_len(&self) -> usize {
        1 + self.as_ref().map_or(0, WireEncode::wire_len)
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(SkallaError::net(format!("invalid option byte {other}"))),
        }
    }
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

impl WireEncode for Value {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                put_zigzag(buf, *i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_slice(&f.to_le_bytes());
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                put_str(buf, s);
            }
            Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
            Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        }
    }

    fn wire_len(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(i) => 1 + zigzag_len(*i),
            Value::Float(_) => 1 + 8,
            Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len(),
        }
    }
}

impl WireDecode for Value {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        match r.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_INT => Ok(Value::Int(r.zigzag()?)),
            TAG_FLOAT => Ok(Value::Float(r.f64()?)),
            TAG_STR => Ok(Value::Str(Arc::from(r.string()?.as_str()))),
            TAG_BOOL_FALSE => Ok(Value::Bool(false)),
            TAG_BOOL_TRUE => Ok(Value::Bool(true)),
            other => Err(SkallaError::net(format!("invalid value tag {other}"))),
        }
    }
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType> {
    match t {
        0 => Ok(DataType::Int64),
        1 => Ok(DataType::Float64),
        2 => Ok(DataType::Utf8),
        3 => Ok(DataType::Bool),
        other => Err(SkallaError::net(format!("invalid data-type tag {other}"))),
    }
}

impl WireEncode for Schema {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        for f in self.fields() {
            put_str(buf, &f.name);
            buf.put_u8(dtype_tag(f.dtype));
        }
    }

    fn wire_len(&self) -> usize {
        varint_len(self.len() as u64)
            + self
                .fields()
                .iter()
                .map(|f| varint_len(f.name.len() as u64) + f.name.len() + 1)
                .sum::<usize>()
    }
}

impl WireDecode for Schema {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let n = r.varint()? as usize;
        let mut fields = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = r.string()?;
            let dtype = dtype_from_tag(r.u8()?)?;
            fields.push(Field::new(name, dtype));
        }
        Schema::new(fields)
    }
}

impl WireEncode for Relation {
    fn encode(&self, buf: &mut BytesMut) {
        self.schema().encode(buf);
        put_varint(buf, self.len() as u64);
        for row in self.rows() {
            for v in row {
                v.encode(buf);
            }
        }
    }

    fn wire_len(&self) -> usize {
        self.schema().wire_len()
            + varint_len(self.len() as u64)
            + self
                .rows()
                .iter()
                .flatten()
                .map(Value::wire_len)
                .sum::<usize>()
    }
}

impl WireDecode for Relation {
    fn decode(r: &mut WireReader<'_>) -> Result<Self> {
        let schema = Arc::new(Schema::decode(r)?);
        let n = r.varint()? as usize;
        let width = schema.len();
        let mut rows = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            let mut row = Vec::with_capacity(width);
            for _ in 0..width {
                row.push(Value::decode(r)?);
            }
            rows.push(row);
        }
        Ok(Relation::from_rows_unchecked(schema, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = v.to_wire();
        assert_eq!(bytes.len(), v.wire_len());
        let back = T::from_wire(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            round_trip(&v);
        }
    }

    #[test]
    fn zigzag_signed_values() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            let mut buf = BytesMut::new();
            put_zigzag(&mut buf, v);
            let mut r = WireReader::new(&buf);
            assert_eq!(r.zigzag().unwrap(), v);
        }
    }

    #[test]
    fn value_round_trips() {
        for v in [
            Value::Null,
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(3.5),
            Value::Float(f64::NEG_INFINITY),
            Value::str("héllo"),
            Value::str(""),
            Value::Bool(true),
            Value::Bool(false),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let v = Value::Float(f64::NAN);
        let back = Value::from_wire(&v.to_wire()).unwrap();
        match back {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other}"),
        }
    }

    #[test]
    fn schema_round_trips() {
        let s = Schema::from_pairs([
            ("a", DataType::Int64),
            ("b", DataType::Utf8),
            ("c", DataType::Float64),
            ("d", DataType::Bool),
        ])
        .unwrap();
        round_trip(&s);
        round_trip(&Schema::empty());
    }

    #[test]
    fn relation_round_trips() {
        let schema = Schema::from_pairs([("k", DataType::Int64), ("s", DataType::Utf8)])
            .unwrap()
            .into_arc();
        let rel = Relation::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Null, Value::str("")],
            ],
        )
        .unwrap();
        round_trip(&rel);
        round_trip(&Relation::empty(schema));
    }

    #[test]
    fn collections_round_trip() {
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Vec::<u64>::new());
        round_trip(&Some(7u32));
        round_trip(&Option::<u32>::None);
        round_trip(&String::from("plan"));
        round_trip(&true);
        round_trip(&false);
        round_trip(&42usize);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let rel_schema = Schema::from_pairs([("k", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rel = Relation::new(rel_schema, vec![vec![Value::Int(5)]]).unwrap();
        let bytes = rel.to_wire();
        for cut in 0..bytes.len() {
            assert!(Relation::from_wire(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Value::Int(1).to_wire().to_vec();
        bytes.push(0);
        assert!(Value::from_wire(&bytes).is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(Value::from_wire(&[99]).is_err());
        assert!(bool::from_wire(&[7]).is_err());
        assert!(Option::<u32>::from_wire(&[9]).is_err());
        // Schema with bad dtype tag.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 1);
        put_str(&mut buf, "x");
        buf.put_u8(9);
        assert!(Schema::from_wire(&buf).is_err());
    }

    #[test]
    fn varint_overflow_rejected() {
        // 10 bytes of 0xFF overflows a u64 varint.
        let bytes = [0xFFu8; 10];
        let mut r = WireReader::new(&bytes);
        assert!(r.varint().is_err());
    }

    #[test]
    fn wire_len_overrides_match_encoded_length() {
        // Every override must agree byte-for-byte with what encode() emits.
        fn check<T: WireEncode>(v: &T) {
            assert_eq!(v.wire_len(), v.to_wire().len());
        }
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            assert_eq!(varint_len(v), v.to_wire().len());
            check(&v);
        }
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = BytesMut::new();
            put_zigzag(&mut buf, v);
            assert_eq!(zigzag_len(v), buf.len());
        }
        check(&u32::MAX);
        check(&usize::MAX);
        check(&true);
        check(&String::from("schéma"));
        check(&vec![1u64, 300, u64::MAX]);
        check(&Some(Value::str("x")));
        check(&Option::<Value>::None);
        for v in [
            Value::Null,
            Value::Int(-300),
            Value::Float(f64::NAN),
            Value::str("columnar"),
            Value::Bool(true),
        ] {
            check(&v);
        }
        let schema = Schema::from_pairs([("key", DataType::Int64), ("name", DataType::Utf8)])
            .unwrap()
            .into_arc();
        check(&*schema);
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Null, Value::str("")],
            ],
        )
        .unwrap();
        check(&rel);
    }

    #[test]
    fn wire_len_scales_with_content() {
        let small = Value::Int(1).wire_len();
        let big = Value::str("a long string value crossing the network").wire_len();
        assert!(big > small);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_STR);
        put_varint(&mut buf, 2);
        buf.put_slice(&[0xff, 0xfe]);
        assert!(Value::from_wire(&buf).is_err());
    }
}
