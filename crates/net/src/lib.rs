#![warn(missing_docs)]

//! # skalla-net
//!
//! The (simulated) network substrate of Skalla.
//!
//! The paper's experiments run on a LAN of eight warehouse sites plus a
//! coordinator; the quantities it reports are *bytes transferred* (Fig. 2
//! right) and the communication component of query evaluation time (Fig. 5
//! right). This crate reproduces both measurably:
//!
//! * [`wire`] — a compact binary wire format ([`WireEncode`]/[`WireDecode`])
//!   for values, schemas, and relations. Every message crossing the
//!   simulated network is *actually serialized*, so byte counts are exact,
//!   not estimates.
//! * [`sim`] — [`SimNetwork`]: a full-mesh message-passing fabric built on
//!   crossbeam channels. Every send is recorded in [`TransferStats`].
//! * [`fault`] — [`FaultPlan`]: deterministic, seeded fault injection
//!   (drop / duplicate / delay / crash) threaded into every endpoint by
//!   [`SimNetwork::full_mesh_with_faults`], so the coordinator's recovery
//!   logic can be exercised reproducibly.
//! * [`cost`] — [`CostModel`]: latency + bandwidth model converting byte
//!   counts into modeled transfer seconds, used to report response-time
//!   *shapes* independently of the host machine.
//! * [`frame`] — length-prefixed framing for *real* byte streams (TCP),
//!   used by the serving layer's client/server protocol.

pub mod cost;
pub mod fault;
pub mod frame;
pub mod sim;
pub mod wire;

pub use cost::{CostModel, LinkStats, TransferStats};
pub use fault::{CrashSpec, FaultPlan};
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use sim::{Endpoint, Envelope, NodeId, SimNetwork};
pub use wire::{WireDecode, WireEncode, WireReader};
