//! Communication cost model and transfer accounting.
//!
//! The paper's testbed is a real LAN; ours is simulated. We keep the two
//! quantities that determine every curve in §5 measurable and exact:
//!
//! * **bytes transferred** — every message is serialized by `wire`, and its
//!   exact length is recorded per directed link in [`TransferStats`];
//! * **communication time** — modeled per message as
//!   `latency + bytes / bandwidth` by [`CostModel`]. Response-time *shapes*
//!   (linear vs. quadratic in the number of sites) depend only on byte
//!   volumes and round counts, which are exact.

use std::collections::HashMap;

use crate::sim::NodeId;

/// Latency/bandwidth model of one (homogeneous) network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl CostModel {
    /// A model resembling the paper's era: switched 100 Mbit LAN with
    /// ~1 ms per-message overhead.
    pub fn lan_2002() -> CostModel {
        CostModel {
            latency_s: 1e-3,
            bandwidth_bytes_per_s: 12.5e6,
        }
    }

    /// An idealized infinitely fast network (isolates computation costs).
    pub fn free() -> CostModel {
        CostModel {
            latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
        }
    }

    /// A slow WAN (sites far from the coordinator): 20 ms latency,
    /// 10 Mbit/s.
    pub fn wan() -> CostModel {
        CostModel {
            latency_s: 20e-3,
            bandwidth_bytes_per_s: 1.25e6,
        }
    }

    /// Modeled time to move `bytes` across one link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::lan_2002()
    }
}

/// Counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

/// Transfer counters for the whole network.
#[derive(Debug, Clone, Default)]
pub struct TransferStats {
    per_link: HashMap<(NodeId, NodeId), LinkStats>,
}

impl TransferStats {
    /// Empty stats.
    pub fn new() -> TransferStats {
        TransferStats::default()
    }

    /// Record one message of `bytes` payload on `src → dst`.
    pub fn record(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        let e = self.per_link.entry((src, dst)).or_default();
        e.messages += 1;
        e.bytes += bytes;
    }

    /// Counters for one directed link.
    pub fn link(&self, src: NodeId, dst: NodeId) -> LinkStats {
        self.per_link.get(&(src, dst)).copied().unwrap_or_default()
    }

    /// Total bytes over all links.
    pub fn total_bytes(&self) -> u64 {
        self.per_link.values().map(|l| l.bytes).sum()
    }

    /// Total messages over all links.
    pub fn total_messages(&self) -> u64 {
        self.per_link.values().map(|l| l.messages).sum()
    }

    /// Total bytes sent *from* `node`.
    pub fn bytes_from(&self, node: NodeId) -> u64 {
        self.per_link
            .iter()
            .filter(|((s, _), _)| *s == node)
            .map(|(_, l)| l.bytes)
            .sum()
    }

    /// Total bytes received *by* `node`.
    pub fn bytes_to(&self, node: NodeId) -> u64 {
        self.per_link
            .iter()
            .filter(|((_, d), _)| *d == node)
            .map(|(_, l)| l.bytes)
            .sum()
    }

    /// Modeled *serial* communication time: the sum of per-message transfer
    /// times over all links (an upper bound; rounds overlap transfers in
    /// reality).
    pub fn serial_time(&self, model: &CostModel) -> f64 {
        self.per_link
            .values()
            .map(|l| {
                l.messages as f64 * model.latency_s + l.bytes as f64 / model.bandwidth_bytes_per_s
            })
            .sum()
    }

    /// Per-link difference `self - earlier` (counters are monotone, so this
    /// isolates one phase of an execution between two snapshots).
    pub fn diff(&self, earlier: &TransferStats) -> TransferStats {
        let mut out = TransferStats::new();
        for (&k, l) in &self.per_link {
            let before = earlier.per_link.get(&k).copied().unwrap_or_default();
            let d = LinkStats {
                messages: l.messages.saturating_sub(before.messages),
                bytes: l.bytes.saturating_sub(before.bytes),
            };
            if d.messages > 0 || d.bytes > 0 {
                out.per_link.insert(k, d);
            }
        }
        out
    }

    /// Merge another stats object into this one.
    pub fn merge(&mut self, other: &TransferStats) {
        for (&k, l) in &other.per_link {
            let e = self.per_link.entry(k).or_default();
            e.messages += l.messages;
            e.bytes += l.bytes;
        }
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        self.per_link.clear();
    }

    /// Iterate over `(src, dst, stats)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, LinkStats)> + '_ {
        self.per_link.iter().map(|(&(s, d), &l)| (s, d, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let m = CostModel {
            latency_s: 0.5,
            bandwidth_bytes_per_s: 100.0,
        };
        assert_eq!(m.transfer_time(0), 0.5);
        assert_eq!(m.transfer_time(200), 0.5 + 2.0);
        assert_eq!(CostModel::free().transfer_time(1 << 30), 0.0);
    }

    #[test]
    fn record_and_query_links() {
        let mut s = TransferStats::new();
        s.record(0, 1, 100);
        s.record(0, 1, 50);
        s.record(1, 0, 10);
        assert_eq!(
            s.link(0, 1),
            LinkStats {
                messages: 2,
                bytes: 150
            }
        );
        assert_eq!(
            s.link(1, 0),
            LinkStats {
                messages: 1,
                bytes: 10
            }
        );
        assert_eq!(s.link(2, 0), LinkStats::default());
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.bytes_from(0), 150);
        assert_eq!(s.bytes_to(0), 10);
    }

    #[test]
    fn serial_time_sums_links() {
        let mut s = TransferStats::new();
        s.record(0, 1, 1000);
        s.record(1, 0, 1000);
        let m = CostModel {
            latency_s: 1.0,
            bandwidth_bytes_per_s: 1000.0,
        };
        assert!((s.serial_time(&m) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_clear() {
        let mut a = TransferStats::new();
        a.record(0, 1, 5);
        let mut b = TransferStats::new();
        b.record(0, 1, 7);
        b.record(2, 0, 1);
        a.merge(&b);
        assert_eq!(a.link(0, 1).bytes, 12);
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.iter().count(), 2);
        a.clear();
        assert_eq!(a.total_bytes(), 0);
    }

    #[test]
    fn diff_isolates_a_phase() {
        let mut before = TransferStats::new();
        before.record(0, 1, 100);
        let mut after = before.clone();
        after.record(0, 1, 50);
        after.record(1, 0, 25);
        let d = after.diff(&before);
        assert_eq!(
            d.link(0, 1),
            LinkStats {
                messages: 1,
                bytes: 50
            }
        );
        assert_eq!(
            d.link(1, 0),
            LinkStats {
                messages: 1,
                bytes: 25
            }
        );
        assert_eq!(d.iter().count(), 2);
        // Unchanged links are absent from the diff.
        let same = after.diff(&after);
        assert_eq!(same.iter().count(), 0);
    }

    #[test]
    fn preset_models_are_ordered() {
        // WAN is slower than LAN for the same payload.
        let payload = 1_000_000;
        assert!(
            CostModel::wan().transfer_time(payload) > CostModel::lan_2002().transfer_time(payload)
        );
    }
}
