//! Length-prefixed framing for real byte streams (TCP).
//!
//! The simulated fabric of [`crate::sim`] delivers whole messages, so the
//! wire format of [`crate::wire`] never needed framing. A TCP stream does:
//! the serving layer writes each request/response as a 4-byte
//! little-endian length followed by the payload bytes. The payload itself
//! is whatever the caller encoded — typically a [`crate::WireEncode`]
//! body with a leading tag byte.
//!
//! Properties:
//!
//! * A clean EOF *between* frames reads as `Ok(None)` — the peer hung up,
//!   which is how sessions end.
//! * An EOF *inside* a frame (truncated header or payload) is an error —
//!   the stream died mid-message.
//! * Lengths above [`MAX_FRAME`] are rejected before any allocation, so a
//!   corrupt or malicious length prefix cannot OOM the server.

use std::io::{ErrorKind, Read, Write};

use skalla_types::{Result, SkallaError};

/// Upper bound on a single frame's payload (256 MiB) — far above any
/// legitimate plan or result relation, low enough to bound allocation.
pub const MAX_FRAME: usize = 1 << 28;

/// Write one length-prefixed frame and flush it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(SkallaError::net(format!(
            "frame of {} bytes exceeds the {} byte limit",
            payload.len(),
            MAX_FRAME
        )));
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| SkallaError::net(format!("frame write failed: {e}")))
}

/// Read one length-prefixed frame. `Ok(None)` on a clean EOF before the
/// first header byte; an error on a truncated frame or an oversized
/// length.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None), // clean EOF between frames
            Ok(0) => {
                return Err(SkallaError::net("connection closed mid-frame header"));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(SkallaError::net(format!("frame read failed: {e}"))),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(SkallaError::net(format!(
            "frame length {len} exceeds the {MAX_FRAME} byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| SkallaError::net(format!("connection closed mid-frame payload: {e}")))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut c).unwrap().is_none()); // clean EOF
    }

    #[test]
    fn truncated_header_is_an_error() {
        let mut c = Cursor::new(vec![5u8, 0]);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn interleaved_reader_state_is_per_call() {
        // Two frames written by different calls read back independently.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"a").unwrap();
        write_frame(&mut buf, b"bb").unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"a");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"bb");
    }
}
