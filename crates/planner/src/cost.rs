//! Cost-based plan selection.
//!
//! The paper presents its §4 optimizations as *schemes* whose
//! applicability Egil proves; whether to apply one is then a cost
//! question. This module estimates the transfer profile of a plan from
//! table statistics and picks the cheapest flag combination —
//! [`choose_plan`] is a miniature cost-based optimizer on top of
//! [`crate::plan_query`].
//!
//! The estimator mirrors the execution model exactly:
//!
//! * each **standard round** ships the base down to every participating
//!   site and one fragment per site back up;
//! * **site-side group reduction** cuts each upstream fragment to the
//!   site's share of the groups (`1/n` under a partition attribute, full
//!   otherwise);
//! * **coordinator-side group reduction** cuts each downstream fragment
//!   the same way when constraints exist;
//! * a **local-run** segment ships nothing down and one (merged) fragment
//!   per site up.

use skalla_core::{BaseRound, DistPlan, OptFlags, Segment};
use skalla_gmdj::BaseSpec;
use skalla_net::CostModel;
use skalla_storage::TableStats;
use skalla_types::Result;

use crate::egil::{plan_query, PlanReport};
use crate::info::DistributionInfo;

/// Estimated transfer profile of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEstimate {
    /// Estimated result groups `|Q|`.
    pub est_groups: usize,
    /// Estimated tuples coordinator → sites over the whole plan.
    pub est_rows_down: u64,
    /// Estimated tuples sites → coordinator.
    pub est_rows_up: u64,
    /// Synchronizations.
    pub syncs: usize,
    /// Modeled communication seconds under the given cost model (assuming
    /// `bytes_per_row` per shipped tuple, serialized at the coordinator
    /// link).
    pub est_comm_s: f64,
}

/// Rough bytes per shipped group row (key + a few aggregate columns); only
/// relative plan ordering matters, not the absolute constant.
const BYTES_PER_ROW: f64 = 24.0;

/// Estimate the transfer profile of `plan` against `stats` (statistics of
/// the full detail relation) for `n_sites` sites.
pub fn estimate_plan(
    plan: &DistPlan,
    stats: &TableStats,
    n_sites: usize,
    cost: &CostModel,
) -> CostEstimate {
    let groups = match &plan.expr.base {
        BaseSpec::DistinctProject { cols } => stats.estimate_group_count(cols),
        BaseSpec::Relation(r) => r.len(),
    };
    // Fraction of the base a single site contributes/accepts under group
    // reduction. With a partition attribute each group lives at one site.
    let site_share = 1.0 / n_sites as f64;

    let mut rows_down = 0u64;
    let mut rows_up = 0u64;
    let mut messages = 0u64;

    // Base round.
    if matches!(plan.base_round, BaseRound::Distributed) {
        rows_up += (n_sites as f64 * groups as f64 * site_share) as u64;
        messages += 2 * n_sites as u64;
    }

    for seg in plan.segments() {
        let (start, local) = match seg {
            Segment::Standard { op } => (op, false),
            Segment::LocalRun { start, .. } => (start, true),
        };
        let spec = &plan.rounds[start];
        let local_base = start == 0 && matches!(plan.base_round, BaseRound::LocalOnly);
        messages += 2 * n_sites as u64;

        if !local_base {
            // Downstream: the base to every site, shrunk by coord filters.
            let per_site = if spec.coord_filters.is_some() {
                groups as f64 * site_share
            } else {
                groups as f64
            };
            rows_down += (n_sites as f64 * per_site) as u64;
        }
        // Upstream: one fragment per site.
        let per_site_up = if spec.site_group_reduction || local || local_base {
            groups as f64 * site_share
        } else {
            groups as f64
        };
        rows_up += (n_sites as f64 * per_site_up) as u64;
    }

    let bytes = (rows_down + rows_up) as f64 * BYTES_PER_ROW;
    let est_comm_s = messages as f64 * cost.latency_s + bytes / cost.bandwidth_bytes_per_s;

    CostEstimate {
        est_groups: groups,
        est_rows_down: rows_down,
        est_rows_up: rows_up,
        syncs: plan.num_synchronizations(),
        est_comm_s,
    }
}

/// Plan the query under every optimization-flag combination, estimate each,
/// and return the cheapest (by estimated communication time) together with
/// its report and estimate.
pub fn choose_plan(
    expr: &skalla_gmdj::GmdjExpr,
    dist: &DistributionInfo,
    stats: &TableStats,
    cost: &CostModel,
) -> Result<(DistPlan, PlanReport, CostEstimate)> {
    let mut best: Option<(DistPlan, PlanReport, CostEstimate)> = None;
    for bits in 0..16u32 {
        let flags = OptFlags {
            coalesce: bits & 1 != 0,
            site_group_reduction: bits & 2 != 0,
            coord_group_reduction: bits & 4 != 0,
            sync_reduction: bits & 8 != 0,
        };
        let (plan, report) = plan_query(expr, dist, flags)?;
        let est = estimate_plan(&plan, stats, dist.num_sites, cost);
        let better = match &best {
            None => true,
            Some((_, _, b)) => est.est_comm_s < b.est_comm_s,
        };
        if better {
            best = Some((plan, report, est));
        }
    }
    Ok(best.expect("16 candidates evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_expr::Expr;
    use skalla_gmdj::{AggSpec, GmdjBlock, GmdjExpr, GmdjOp};
    use skalla_storage::{partition_by_hash, Table};
    use skalla_types::{DataType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs([("g", DataType::Int64), ("v", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rows: Vec<Vec<Value>> = (0..400)
            .map(|i| vec![Value::Int(i % 40), Value::Int(i)])
            .collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    fn query() -> GmdjExpr {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("c1"),
                AggSpec::avg(Expr::detail(1), "a1").unwrap(),
            ],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c2")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::detail(1).ge(Expr::base(2))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "t",
            vec![md1, md2],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn estimates_track_reductions() {
        let t = table();
        let stats = TableStats::collect(&t);
        let parts = partition_by_hash(&t, 0, 4).unwrap();
        let dist = DistributionInfo::from_partitioning(&parts);
        let cost = CostModel::lan_2002();

        let (p_none, _) = plan_query(&query(), &dist, OptFlags::none()).unwrap();
        let (p_all, _) = plan_query(&query(), &dist, OptFlags::all()).unwrap();
        let e_none = estimate_plan(&p_none, &stats, 4, &cost);
        let e_all = estimate_plan(&p_all, &stats, 4, &cost);

        assert_eq!(e_none.est_groups, 40);
        assert!(e_all.est_rows_down < e_none.est_rows_down);
        assert!(e_all.est_rows_up < e_none.est_rows_up);
        assert!(e_all.est_comm_s < e_none.est_comm_s);
        assert!(e_all.syncs < e_none.syncs);
    }

    #[test]
    fn chooser_picks_full_optimization_under_partition_attribute() {
        let t = table();
        let stats = TableStats::collect(&t);
        let parts = partition_by_hash(&t, 0, 4).unwrap();
        let dist = DistributionInfo::from_partitioning(&parts);
        let (plan, report, est) =
            choose_plan(&query(), &dist, &stats, &CostModel::lan_2002()).unwrap();
        // Sync reduction collapses everything to one synchronization; the
        // chooser must find it.
        assert_eq!(report.num_synchronizations, 1);
        assert_eq!(est.syncs, 1);
        assert!(plan.flags.sync_reduction);
    }

    #[test]
    fn chosen_plan_estimate_matches_execution_shape() {
        use skalla_core::DistributedWarehouse;
        use skalla_storage::Catalog;

        let t = table();
        let stats = TableStats::collect(&t);
        let parts = partition_by_hash(&t, 0, 4).unwrap();
        let dist = DistributionInfo::from_partitioning(&parts);
        let (plan, _, est) = choose_plan(&query(), &dist, &stats, &CostModel::lan_2002()).unwrap();

        let catalogs: Vec<Catalog> = parts
            .parts
            .iter()
            .map(|p| {
                let mut c = Catalog::new();
                c.register("t", p.clone());
                c
            })
            .collect();
        let wh = DistributedWarehouse::launch(catalogs, CostModel::lan_2002()).unwrap();
        let (result, metrics) = wh.execute(&plan).unwrap();
        wh.shutdown().unwrap();

        assert_eq!(result.len(), est.est_groups);
        // The estimate is a model, not a measurement — require the right
        // order of magnitude (within 2×), which is what plan ranking needs.
        let measured = (metrics.total_rows_down() + metrics.total_rows_up()).max(1) as f64;
        let estimated = (est.est_rows_down + est.est_rows_up).max(1) as f64;
        let ratio = (measured / estimated).max(estimated / measured);
        assert!(ratio <= 2.0, "estimate off by ×{ratio:.2}");
    }

    #[test]
    fn no_knowledge_still_chooses_something_sound() {
        let t = table();
        let stats = TableStats::collect(&t);
        let dist = DistributionInfo::unknown(4);
        let (plan, report, _) =
            choose_plan(&query(), &dist, &stats, &CostModel::lan_2002()).unwrap();
        // Without a partition attribute Cor 1 can't fire…
        assert!(report.local_only_rounds.is_empty());
        // …but Prop 2 and site-side reduction still can.
        plan.validate().unwrap();
    }
}
