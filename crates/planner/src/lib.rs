#![warn(missing_docs)]

//! # skalla-planner
//!
//! **Egil**, the Skalla GMDJ query optimizer (paper §3.2, §4). Given a GMDJ
//! expression, knowledge about how the fact relation is distributed, and a
//! set of optimization toggles, Egil produces a
//! [`skalla_core::DistPlan`]:
//!
//! * **coalescing** (§4.3) merges adjacent GMDJs whose outer conditions
//!   ignore the inner outputs;
//! * **distribution-aware group reduction** (§4.1, Theorem 4) derives a
//!   per-site base filter `¬ψᵢ` from the conditions and each site's
//!   constraint `φᵢ`;
//! * **distribution-independent group reduction** (§4.2, Proposition 1)
//!   turns on the sites' `|RNG| > 0` shipping filter;
//! * **synchronization reduction** (§4.3, Proposition 2 / Theorem 5 /
//!   Corollary 1) eliminates the base synchronization and intermediate
//!   round synchronizations when the conditions entail equality on a
//!   partition attribute.
//!
//! The module also provides a small textual query language ([`parser`])
//! used by the examples, `EXPLAIN`-style plan reports, and a cost-based
//! plan chooser ([`cost`]) built on table statistics.

pub mod cost;
pub mod egil;
pub mod info;
pub mod parser;

pub use cost::{choose_plan, estimate_plan, CostEstimate};
pub use egil::{plan_query, PlanReport};
pub use info::{DistributionInfo, PartitionInfo};
pub use parser::parse_query;
