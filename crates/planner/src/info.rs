//! Distribution knowledge.
//!
//! What the coordinator knows about how the fact relation is spread across
//! sites. This is the input to the *distribution-aware* optimizations:
//! Theorem 4 consumes the per-site constraints `φᵢ`; Corollary 1 consumes
//! the partition attribute (paper Definition 2).

use skalla_expr::SiteConstraint;
use skalla_storage::{load_imbalance, Partitioning};
use skalla_types::{Result, SkallaError};

/// Per-partition load statistics the coordinator has learned (from the
/// skew sketches sites piggyback on round replies, or from a deployment's
/// catalog statistics). Input to the skew-aware planning decision.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionInfo {
    /// Detail rows per partition (0 = unknown).
    pub rows: Vec<u64>,
    /// Largest single-group share of any partition's rows reported by the
    /// heavy-hitter sketches (0.0 = unknown).
    pub top_share: f64,
}

impl PartitionInfo {
    /// Load imbalance across the known partitions: `max / mean` over the
    /// non-zero entries (1.0 when uniform or unknown).
    pub fn imbalance(&self) -> f64 {
        load_imbalance(&self.rows)
    }

    /// Partitions whose load exceeds `threshold ×` the mean of the known
    /// loads, heaviest first.
    pub fn hot_parts(&self, threshold: f64) -> Vec<usize> {
        let known: Vec<u64> = self.rows.iter().copied().filter(|&r| r > 0).collect();
        if known.len() < 2 || !(threshold.is_finite() && threshold > 0.0) {
            return Vec::new();
        }
        let mean = known.iter().sum::<u64>() as f64 / known.len() as f64;
        let mut hot: Vec<usize> = (0..self.rows.len())
            .filter(|&p| self.rows[p] as f64 > threshold * mean)
            .collect();
        hot.sort_by(|&a, &b| self.rows[b].cmp(&self.rows[a]).then(a.cmp(&b)));
        hot
    }
}

/// Knowledge about the distribution of the (default) detail relation.
#[derive(Debug, Clone, Default)]
pub struct DistributionInfo {
    /// Number of sites.
    pub num_sites: usize,
    /// Detail column the relation is partitioned on, if any.
    pub partition_col: Option<usize>,
    /// `true` if `partition_col`'s value sets are pairwise disjoint across
    /// sites (Definition 2) — the precondition of Corollary 1.
    pub is_partition_attribute: bool,
    /// Per-site constraints `φᵢ` on detail columns, in site order.
    pub site_constraints: Option<Vec<SiteConstraint>>,
    /// Replication factor of the detail relation's partitions (1 = each
    /// partition lives on exactly one site). Purely informational to the
    /// planner — per-partition `φᵢ` stay accurate because replicas are
    /// addressed by partition, not by plain table name — but `> 1` is what
    /// makes the Failover degraded mode effective at runtime.
    pub replication: usize,
    /// Per-partition load statistics, when known. With `replication > 1`
    /// an imbalanced load profile makes Egil enable skew-aware execution
    /// (hot-partition splitting and straggler offload) on the plan.
    pub partition_info: Option<PartitionInfo>,
}

impl DistributionInfo {
    /// No knowledge at all: only distribution-independent optimizations can
    /// apply.
    pub fn unknown(num_sites: usize) -> DistributionInfo {
        DistributionInfo {
            num_sites,
            replication: 1,
            ..Default::default()
        }
    }

    /// Record the partitions' replication factor (ring placement, as built
    /// by `skalla_storage::replicate_catalogs`).
    pub fn with_replication(mut self, replication: usize) -> DistributionInfo {
        self.replication = replication.max(1);
        self
    }

    /// Attach per-partition load statistics (learned from runtime sketches
    /// or catalog statistics).
    pub fn with_partition_info(mut self, info: PartitionInfo) -> DistributionInfo {
        self.partition_info = Some(info);
        self
    }

    /// Extract full knowledge from a concrete [`Partitioning`] (what a
    /// deployment would keep in its distribution catalog).
    pub fn from_partitioning(p: &Partitioning) -> DistributionInfo {
        DistributionInfo {
            num_sites: p.num_sites(),
            partition_col: p.partition_col,
            is_partition_attribute: p.is_partition_attribute(),
            site_constraints: Some(p.site_constraints()),
            replication: 1,
            partition_info: None,
        }
    }

    /// Like [`Self::from_partitioning`] but with the cheaper min/max range
    /// constraints instead of exact value sets.
    pub fn from_partitioning_ranges(p: &Partitioning) -> Result<DistributionInfo> {
        Ok(DistributionInfo {
            num_sites: p.num_sites(),
            partition_col: p.partition_col,
            is_partition_attribute: p.is_partition_attribute(),
            site_constraints: Some(p.site_range_constraints()?),
            replication: 1,
            partition_info: None,
        })
    }

    /// Supply explicit per-site constraints.
    pub fn with_constraints(
        num_sites: usize,
        partition_col: Option<usize>,
        is_partition_attribute: bool,
        site_constraints: Vec<SiteConstraint>,
    ) -> Result<DistributionInfo> {
        if site_constraints.len() != num_sites {
            return Err(SkallaError::plan(format!(
                "{} site constraints for {} sites",
                site_constraints.len(),
                num_sites
            )));
        }
        Ok(DistributionInfo {
            num_sites,
            partition_col,
            is_partition_attribute,
            site_constraints: Some(site_constraints),
            replication: 1,
            partition_info: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_storage::{partition_by_hash, Table};
    use skalla_types::{DataType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Int64)])
            .unwrap()
            .into_arc();
        let rows: Vec<Vec<Value>> = (0..60)
            .map(|i| vec![Value::Int(i % 6), Value::Int(i)])
            .collect();
        Table::from_rows(schema, &rows).unwrap()
    }

    #[test]
    fn from_partitioning_captures_everything() {
        let p = partition_by_hash(&table(), 0, 3).unwrap();
        let d = DistributionInfo::from_partitioning(&p);
        assert_eq!(d.num_sites, 3);
        assert_eq!(d.partition_col, Some(0));
        assert!(d.is_partition_attribute);
        assert_eq!(d.site_constraints.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn range_variant_uses_intervals() {
        let p = skalla_storage::partition_by_ranges(&table(), 0, &[3.0]).unwrap();
        let d = DistributionInfo::from_partitioning_ranges(&p).unwrap();
        let cs = d.site_constraints.unwrap();
        assert_eq!(
            cs[0].interval_of(0),
            skalla_expr::Interval::closed(0.0, 2.0)
        );
    }

    #[test]
    fn unknown_has_no_knowledge() {
        let d = DistributionInfo::unknown(8);
        assert_eq!(d.num_sites, 8);
        assert!(d.partition_col.is_none());
        assert!(!d.is_partition_attribute);
        assert!(d.site_constraints.is_none());
    }

    #[test]
    fn partition_info_imbalance_and_hot_parts() {
        let pi = PartitionInfo {
            rows: vec![400, 100, 0, 100],
            top_share: 0.4,
        };
        // Unknown (zero) entries are excluded from the mean.
        assert!(pi.imbalance() > 1.9, "{}", pi.imbalance());
        assert_eq!(pi.hot_parts(1.5), vec![0]);
        assert!(pi.hot_parts(f64::NAN).is_empty());
        let uniform = PartitionInfo {
            rows: vec![10, 10],
            top_share: 0.0,
        };
        assert_eq!(uniform.imbalance(), 1.0);
        assert!(uniform.hot_parts(1.5).is_empty());
    }

    #[test]
    fn with_constraints_validates_arity() {
        let ok = DistributionInfo::with_constraints(
            2,
            Some(0),
            true,
            vec![SiteConstraint::none(), SiteConstraint::none()],
        );
        assert!(ok.is_ok());
        let bad = DistributionInfo::with_constraints(2, None, false, vec![SiteConstraint::none()]);
        assert!(bad.is_err());
    }
}
