//! Egil plan construction.
//!
//! [`plan_query`] applies the optimizations of paper §4 in order:
//! coalescing first (it shortens the chain every later analysis runs over),
//! then synchronization reduction (Proposition 2 for the base, Corollary 1
//! between rounds), then the two group reductions per round.

use skalla_core::{BaseRound, DistPlan, OptFlags, RetryPolicy, RoundSpec, SkewPolicy};
use skalla_expr::{analysis, derive_group_filter, ColumnConstraint, Expr, SiteConstraint};
use skalla_gmdj::{coalesce_chain, BaseSpec, GmdjExpr, GmdjOp};
use skalla_types::{Result, SkallaError};

use crate::info::DistributionInfo;

/// What Egil decided and why — returned alongside the plan for
/// `EXPLAIN`-style output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanReport {
    /// Number of coalescing steps applied.
    pub coalesce_steps: usize,
    /// Base synchronization eliminated (Proposition 2).
    pub base_sync_eliminated: bool,
    /// Round indices (post-coalescing) marked `local_only` (Corollary 1).
    pub local_only_rounds: Vec<usize>,
    /// Rounds for which per-site coordinator filters were derived, with the
    /// number of non-trivial (not constant `TRUE`) filters.
    pub coord_filters: Vec<(usize, usize)>,
    /// Rounds with site-side group reduction enabled.
    pub site_reduced_rounds: Vec<usize>,
    /// Synchronizations in the final plan (the quantity §4.3 minimizes).
    pub num_synchronizations: usize,
    /// Skew-aware execution enabled: the partition load statistics showed
    /// imbalance past the split threshold and replication permits splitting
    /// hot partitions across replicas (plus straggler offload).
    pub skew_enabled: bool,
    /// The load imbalance (max/mean partition rows) that drove the skew
    /// decision, 0.0 when no statistics were available.
    pub skew_imbalance: f64,
}

impl PlanReport {
    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "coalescing steps:        {}\n",
            self.coalesce_steps
        ));
        out.push_str(&format!(
            "base sync eliminated:    {} (Proposition 2)\n",
            self.base_sync_eliminated
        ));
        out.push_str(&format!(
            "local-only rounds:       {:?} (Corollary 1)\n",
            self.local_only_rounds
        ));
        out.push_str(&format!(
            "coordinator filters:     {:?} (Theorem 4; (round, non-trivial sites))\n",
            self.coord_filters
        ));
        out.push_str(&format!(
            "site-reduced rounds:     {:?} (Proposition 1)\n",
            self.site_reduced_rounds
        ));
        out.push_str(&format!(
            "synchronizations:        {}\n",
            self.num_synchronizations
        ));
        out.push_str(&format!(
            "skew-aware execution:    {}{}",
            self.skew_enabled,
            if self.skew_imbalance > 0.0 {
                format!(" ({:.2}\u{d7} imbalance)", self.skew_imbalance)
            } else {
                String::new()
            }
        ));
        out
    }
}

/// Build a distributed plan for `expr` under `dist` knowledge with the
/// requested optimizations.
pub fn plan_query(
    expr: &GmdjExpr,
    dist: &DistributionInfo,
    flags: OptFlags,
) -> Result<(DistPlan, PlanReport)> {
    if dist.num_sites == 0 {
        return Err(SkallaError::plan("distribution info reports zero sites"));
    }
    let mut report = PlanReport::default();

    // 0. Condition simplification: folding constants exposes equality
    // conjuncts and linear forms to the analyses below.
    let mut expr = expr.clone();
    for op in &mut expr.ops {
        for block in &mut op.blocks {
            block.theta = skalla_expr::simplify(&block.theta);
        }
    }

    // 1. Coalescing.
    let expr = if flags.coalesce {
        let (coalesced, steps) = coalesce_chain(&expr)?;
        report.coalesce_steps = steps;
        coalesced
    } else {
        expr
    };

    // 2. Synchronization reduction.
    let mut base_round = match &expr.base {
        BaseSpec::Relation(r) => BaseRound::Coordinator(r.clone()),
        BaseSpec::DistinctProject { .. } => BaseRound::Distributed,
    };
    let mut rounds: Vec<RoundSpec> = expr.ops.iter().map(|_| RoundSpec::basic()).collect();

    if flags.sync_reduction {
        if proposition2_applies(&expr) {
            base_round = BaseRound::LocalOnly;
            report.base_sync_eliminated = true;
        }
        // Corollary 1: mark round k local_only when rounds k and k+1 are
        // both anchored on a partition attribute. The declared partition
        // column qualifies directly; any other detail column qualifies when
        // the per-site constraint value sets prove it is *derived-
        // partitioned* (pairwise-disjoint values across sites — e.g.
        // custname under nationkey partitioning).
        let n_ops = expr.ops.len();
        for (k, round) in rounds.iter_mut().enumerate().take(n_ops.saturating_sub(1)) {
            let candidates = common_anchor_detail_cols(&expr, k);
            let anchored = candidates.iter().any(|&(bcol, dcol)| {
                let _ = bcol;
                let declared = dist.partition_col == Some(dcol) && dist.is_partition_attribute;
                declared || column_values_disjoint_across_sites(dist, dcol)
            });
            if anchored {
                round.local_only = true;
                report.local_only_rounds.push(k);
            }
        }
    }

    // 3. Group reductions per round.
    for (k, (op, round)) in expr.ops.iter().zip(rounds.iter_mut()).enumerate() {
        if flags.site_group_reduction {
            round.site_group_reduction = true;
            report.site_reduced_rounds.push(k);
        }
        if flags.coord_group_reduction {
            if let Some(constraints) = &dist.site_constraints {
                let filters = derive_filters(op, constraints);
                let nontrivial = filters.iter().filter(|f| **f != Expr::lit(true)).count();
                if nontrivial > 0 {
                    report.coord_filters.push((k, nontrivial));
                    round.coord_filters = Some(filters);
                }
            }
        }
    }

    // 4. Skew-aware execution: when the distribution catalog carries
    // partition load statistics showing imbalance past the default split
    // threshold AND replication gives hot partitions a second host,
    // enable hot-partition splitting and straggler offload. Both are
    // exactness-preserving (row-range fragments over bit-identical
    // replicas), so this is purely a performance decision.
    let mut skew = SkewPolicy::disabled();
    if dist.replication > 1 {
        if let Some(pi) = &dist.partition_info {
            let imbalance = pi.imbalance();
            report.skew_imbalance = imbalance;
            if imbalance > SkewPolicy::default().split_threshold {
                skew = SkewPolicy::default();
                skew.split = true;
                skew.offload = true;
                report.skew_enabled = true;
            }
        }
    }

    let plan = DistPlan {
        expr,
        base_round,
        rounds,
        flags,
        block_rows: None,
        site_parallelism: 1,
        coord_parallelism: 1,
        sync_shards: None,
        retry: RetryPolicy::default(),
        skew,
        segment_prune: true,
    };
    plan.validate()?;
    report.num_synchronizations = plan.num_synchronizations();
    Ok((plan, report))
}

/// Proposition 2 precondition: the base is a distinct projection of the
/// (default) detail relation, the declared key covers every base column,
/// and every θ of the *first* operator entails equality between each base
/// column and the detail column it was projected from.
fn proposition2_applies(expr: &GmdjExpr) -> bool {
    let BaseSpec::DistinctProject { cols } = &expr.base else {
        return false;
    };
    // Key must cover the whole projection (each base tuple is determined by
    // its own columns — always true for a distinct projection, but the
    // declared key drives synchronization, so require it explicitly).
    let all: Vec<usize> = (0..cols.len()).collect();
    let mut declared = expr.key.clone();
    declared.sort_unstable();
    if declared != all {
        return false;
    }
    // The first operator must read the same relation the base is projected
    // from.
    if expr.ops[0].detail_name.is_some() {
        return false;
    }
    expr.ops[0]
        .thetas()
        .iter()
        .all(|theta| match analysis::entails_key_equality(theta, &all) {
            Some(detail_cols) => detail_cols == *cols,
            None => false,
        })
}

/// The `(base_col, detail_col)` equi-join anchors present in **every** θ of
/// both op `k` and op `k+1` (Corollary 1 needs the *same* grouping anchor
/// throughout, so one site owns each group across both rounds).
fn common_anchor_detail_cols(
    expr: &GmdjExpr,
    k: usize,
) -> std::collections::BTreeSet<(usize, usize)> {
    let anchors = |op: &GmdjOp| -> Vec<std::collections::BTreeSet<(usize, usize)>> {
        op.thetas()
            .iter()
            .map(|t| {
                analysis::equality_pairs(t)
                    .iter()
                    .map(|p| (p.base_col, p.detail_col))
                    .collect()
            })
            .collect()
    };
    let mut iter = anchors(&expr.ops[k])
        .into_iter()
        .chain(anchors(&expr.ops[k + 1]));
    let Some(mut acc) = iter.next() else {
        return Default::default();
    };
    for s in iter {
        acc = acc.intersection(&s).copied().collect();
        if acc.is_empty() {
            break;
        }
    }
    acc
}

/// Is `col` a (possibly derived) partition attribute according to the
/// per-site constraints: every site's value set known exactly and pairwise
/// disjoint (Definition 2)?
fn column_values_disjoint_across_sites(dist: &DistributionInfo, col: usize) -> bool {
    let Some(constraints) = &dist.site_constraints else {
        return false;
    };
    if constraints.len() != dist.num_sites {
        return false;
    }
    let mut seen = std::collections::BTreeSet::new();
    for sc in constraints {
        match sc.get(col) {
            Some(ColumnConstraint::OneOf(set)) => {
                if set.iter().any(|v| seen.contains(v)) {
                    return false;
                }
                seen.extend(set.iter().cloned());
            }
            // Ranges or missing knowledge: cannot *prove* disjointness.
            _ => return false,
        }
    }
    true
}

/// Theorem 4: derive one base filter per site from the op's conditions.
fn derive_filters(op: &GmdjOp, constraints: &[SiteConstraint]) -> Vec<Expr> {
    let thetas = op.thetas();
    constraints
        .iter()
        .map(|sc| derive_group_filter(&thetas, sc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_core::Segment;
    use skalla_expr::Interval;
    use skalla_gmdj::{AggSpec, GmdjBlock};

    fn key_theta() -> Expr {
        Expr::base(0)
            .eq(Expr::detail(0))
            .and(Expr::base(1).eq(Expr::detail(1)))
    }

    /// Example 1: correlated 2-GMDJ query keyed on (sas, das), detail cols
    /// (sas=0, das=1, nb=2).
    fn example1() -> GmdjExpr {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt1"),
                AggSpec::sum(Expr::detail(2), "sum1").unwrap(),
            ],
            key_theta(),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("cnt2")],
            key_theta().and(Expr::detail(2).ge(Expr::base(3).div(Expr::base(2)))),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap()
    }

    fn dist_with_partition() -> DistributionInfo {
        let constraints = vec![
            SiteConstraint::none().with_range(0, Interval::closed(0.0, 3.0)),
            SiteConstraint::none().with_range(0, Interval::closed(4.0, 7.0)),
        ];
        DistributionInfo::with_constraints(2, Some(0), true, constraints).unwrap()
    }

    #[test]
    fn unoptimized_flags_produce_basic_plan() {
        let (plan, report) =
            plan_query(&example1(), &DistributionInfo::unknown(2), OptFlags::none()).unwrap();
        assert_eq!(plan.base_round, BaseRound::Distributed);
        assert!(plan
            .rounds
            .iter()
            .all(|r| !r.site_group_reduction && r.coord_filters.is_none() && !r.local_only));
        assert_eq!(report.num_synchronizations, 3);
    }

    /// Paper Example 5: partition attribute + key-covering θs collapse the
    /// whole query to a single synchronization.
    #[test]
    fn example5_single_synchronization() {
        let (plan, report) =
            plan_query(&example1(), &dist_with_partition(), OptFlags::all()).unwrap();
        assert!(report.base_sync_eliminated);
        assert_eq!(report.local_only_rounds, vec![0]);
        assert_eq!(report.num_synchronizations, 1);
        assert_eq!(
            plan.segments(),
            vec![Segment::LocalRun { start: 0, end: 1 }]
        );
        assert!(report.render().contains("synchronizations:        1"));
    }

    #[test]
    fn coord_filters_derived_from_constraints() {
        let flags = OptFlags {
            coord_group_reduction: true,
            ..OptFlags::none()
        };
        let (plan, report) = plan_query(&example1(), &dist_with_partition(), flags).unwrap();
        // Both rounds join on the partitioned column sas → filters derived.
        assert_eq!(report.coord_filters.len(), 2);
        let fs = plan.rounds[0].coord_filters.as_ref().unwrap();
        assert_eq!(fs.len(), 2);
        assert_ne!(fs[0], Expr::lit(true));
    }

    #[test]
    fn no_constraints_no_filters() {
        let flags = OptFlags {
            coord_group_reduction: true,
            ..OptFlags::none()
        };
        let (plan, report) = plan_query(&example1(), &DistributionInfo::unknown(4), flags).unwrap();
        assert!(report.coord_filters.is_empty());
        assert!(plan.rounds[0].coord_filters.is_none());
    }

    #[test]
    fn site_reduction_flag_propagates() {
        let flags = OptFlags {
            site_group_reduction: true,
            ..OptFlags::none()
        };
        let (plan, report) = plan_query(&example1(), &DistributionInfo::unknown(4), flags).unwrap();
        assert!(plan.rounds.iter().all(|r| r.site_group_reduction));
        assert_eq!(report.site_reduced_rounds, vec![0, 1]);
    }

    #[test]
    fn prop2_requires_matching_projection() {
        // Base projected from cols (0, 1) but θ joins on detail col 2:
        // entailment fails.
        let md = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::base(0)
                .eq(Expr::detail(2))
                .and(Expr::base(1).eq(Expr::detail(1))),
        )]);
        let e = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md],
            vec![0, 1],
        )
        .unwrap();
        assert!(!proposition2_applies(&e));
        // And the original example does satisfy it.
        assert!(proposition2_applies(&example1()));
    }

    #[test]
    fn prop2_requires_full_key() {
        let mut e = example1();
        e.key = vec![0]; // declared key no longer covers the projection
        assert!(!proposition2_applies(&e));
    }

    #[test]
    fn cor1_requires_partition_attribute() {
        // Same constraints but not a partition attribute.
        let constraints = vec![SiteConstraint::none(), SiteConstraint::none()];
        let dist = DistributionInfo::with_constraints(2, Some(0), false, constraints).unwrap();
        let (plan, report) = plan_query(&example1(), &dist, OptFlags::all()).unwrap();
        assert!(report.local_only_rounds.is_empty());
        assert_eq!(plan.segments().len(), 2);
    }

    #[test]
    fn cor1_requires_anchor_in_every_theta() {
        // Second op's θ has no equality on the partition column.
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c1")],
            key_theta(),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c2")],
            Expr::base(1).eq(Expr::detail(1)), // das only
        )]);
        let e = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap();
        let flags = OptFlags {
            sync_reduction: true,
            ..OptFlags::none()
        };
        let (_, report) = plan_query(&e, &dist_with_partition(), flags).unwrap();
        assert!(report.local_only_rounds.is_empty());
    }

    #[test]
    fn cor1_fires_on_derived_partition_attribute() {
        // No declared partition column, but the per-site value sets of the
        // grouping column are provably disjoint — the generalized Cor. 1
        // analysis must still collapse the chain.
        let constraints = vec![
            SiteConstraint::none().with_values(0, (0..4).map(skalla_types::Value::Int)),
            SiteConstraint::none().with_values(0, (4..8).map(skalla_types::Value::Int)),
        ];
        let dist = DistributionInfo::with_constraints(2, None, false, constraints).unwrap();
        let flags = OptFlags {
            sync_reduction: true,
            ..OptFlags::none()
        };
        let (_, report) = plan_query(&example1(), &dist, flags).unwrap();
        assert_eq!(report.local_only_rounds, vec![0]);
        assert_eq!(report.num_synchronizations, 1);

        // Overlapping value sets must NOT fire.
        let overlapping = vec![
            SiteConstraint::none().with_values(0, (0..5).map(skalla_types::Value::Int)),
            SiteConstraint::none().with_values(0, (4..8).map(skalla_types::Value::Int)),
        ];
        let dist = DistributionInfo::with_constraints(2, None, false, overlapping).unwrap();
        let (_, report) = plan_query(&example1(), &dist, flags).unwrap();
        assert!(report.local_only_rounds.is_empty());
    }

    #[test]
    fn coalescing_folds_independent_ops() {
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c1")],
            key_theta(),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c2")],
            key_theta().and(Expr::detail(2).gt(Expr::lit(0))),
        )]);
        let e = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap();
        let flags = OptFlags {
            coalesce: true,
            ..OptFlags::none()
        };
        let (plan, report) = plan_query(&e, &DistributionInfo::unknown(2), flags).unwrap();
        assert_eq!(report.coalesce_steps, 1);
        assert_eq!(plan.expr.ops.len(), 1);
        assert_eq!(report.num_synchronizations, 2); // base + one round
    }

    #[test]
    fn skew_enabled_only_with_replication_and_imbalance() {
        use crate::info::PartitionInfo;
        let skewed = PartitionInfo {
            rows: vec![400, 100, 100, 100],
            top_share: 0.5,
        };
        let uniform = PartitionInfo {
            rows: vec![100, 100, 100, 100],
            top_share: 0.0,
        };

        // Imbalance + replication → skew-aware plan.
        let dist = DistributionInfo::unknown(4)
            .with_replication(2)
            .with_partition_info(skewed.clone());
        let (plan, report) = plan_query(&example1(), &dist, OptFlags::none()).unwrap();
        assert!(report.skew_enabled);
        assert!(report.skew_imbalance > 1.5, "{}", report.skew_imbalance);
        assert!(plan.skew.split && plan.skew.offload);
        assert!(report.render().contains("skew-aware execution:    true"));

        // No replication: nowhere to split to.
        let dist = DistributionInfo::unknown(4).with_partition_info(skewed);
        let (plan, report) = plan_query(&example1(), &dist, OptFlags::none()).unwrap();
        assert!(!report.skew_enabled);
        assert!(plan.skew.is_disabled());

        // Uniform load: nothing to split.
        let dist = DistributionInfo::unknown(4)
            .with_replication(2)
            .with_partition_info(uniform);
        let (plan, report) = plan_query(&example1(), &dist, OptFlags::none()).unwrap();
        assert!(!report.skew_enabled);
        assert!(plan.skew.is_disabled());
    }

    #[test]
    fn zero_sites_rejected() {
        assert!(plan_query(&example1(), &DistributionInfo::unknown(0), OptFlags::none()).is_err());
    }

    #[test]
    fn shared_anchor_requires_common_base_col() {
        // op1 joins b.0 = r.0; op2 joins b.1 = r.0 — both anchored on the
        // partition col but through different base columns → no shared
        // anchor, Corollary 1 must not fire.
        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c1")],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c2")],
            Expr::base(1).eq(Expr::detail(0)),
        )]);
        let e = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "flow",
            vec![md1, md2],
            vec![0, 1],
        )
        .unwrap();
        let flags = OptFlags {
            sync_reduction: true,
            ..OptFlags::none()
        };
        let (_, report) = plan_query(&e, &dist_with_partition(), flags).unwrap();
        assert!(report.local_only_rounds.is_empty());
    }
}
