//! A small textual surface for GMDJ expressions.
//!
//! The paper's queries are algebraic; for the examples and ad-hoc
//! exploration we provide a compact query language:
//!
//! ```text
//! BASE DISTINCT sas, das FROM flow KEY sas, das;
//! MD COUNT(*) AS cnt1, SUM(nb) AS sum1
//!    WHERE b.sas = r.sas AND b.das = r.das;
//! MD COUNT(*) AS cnt2
//!    WHERE b.sas = r.sas AND b.das = r.das AND r.nb >= b.sum1 / b.cnt1;
//! ```
//!
//! * `BASE DISTINCT cols FROM table [KEY cols]` declares
//!   `B₀ = π_cols(table)`; `KEY` defaults to all projected columns.
//! * Each `MD … WHERE …` clause is one GMDJ operator (one block); an
//!   optional trailing `FROM table` overrides the detail relation.
//! * `b.name` references the evolving base relation (projected columns
//!   plus aggregates of earlier `MD` clauses); `r.name` references the
//!   detail relation.
//! * Keywords are case-insensitive; strings use single quotes.

use std::collections::HashMap;
use std::sync::Arc;

use skalla_expr::{BinOp, Expr};
use skalla_gmdj::{AggFunc, AggSpec, BaseSpec, GmdjBlock, GmdjExpr, GmdjOp};
use skalla_types::{Result, Schema, SkallaError, Value};

/// Parse a query against the given table schemas.
pub fn parse_query(text: &str, schemas: &HashMap<String, Arc<Schema>>) -> Result<GmdjExpr> {
    let tokens = tokenize(text)?;
    Parser {
        tokens,
        pos: 0,
        schemas,
    }
    .query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

fn keyword_eq(t: &Tok, kw: &str) -> bool {
    matches!(t, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn tokenize(text: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // -- line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | ';' | '*' | '/' | '%' | '+' | '-' | '.' => {
                out.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ';' => ";",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '+' => "+",
                    '-' => "-",
                    _ => ".",
                }));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Tok::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym(">="));
                    i += 2;
                } else {
                    out.push(Tok::Sym(">"));
                    i += 1;
                }
            }
            '=' => {
                out.push(Tok::Sym("="));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym("<>"));
                    i += 2;
                } else {
                    return Err(SkallaError::parse("stray `!`"));
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(SkallaError::parse("unterminated string literal"));
                }
                out.push(Tok::Str(text[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let s = &text[start..i];
                if is_float {
                    out.push(Tok::Float(s.parse().map_err(|_| {
                        SkallaError::parse(format!("bad float literal `{s}`"))
                    })?));
                } else {
                    out.push(Tok::Int(s.parse().map_err(|_| {
                        SkallaError::parse(format!("bad integer literal `{s}`"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(text[start..i].to_string()));
            }
            other => {
                return Err(SkallaError::parse(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    schemas: &'a HashMap<String, Arc<Schema>>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SkallaError::parse("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_sym(&mut self, s: &str) -> Result<()> {
        match self.next()? {
            Tok::Sym(t) if t == s => Ok(()),
            other => Err(SkallaError::parse(format!("expected `{s}`, got {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        let t = self.next()?;
        if keyword_eq(&t, kw) {
            Ok(())
        } else {
            Err(SkallaError::parse(format!("expected `{kw}`, got {t:?}")))
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| keyword_eq(t, kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn try_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(SkallaError::parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        let mut out = vec![self.ident()?];
        while self.try_sym(",") {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn schema(&self, table: &str) -> Result<Arc<Schema>> {
        self.schemas
            .get(table)
            .cloned()
            .ok_or_else(|| SkallaError::not_found(format!("table `{table}`")))
    }

    fn query(mut self) -> Result<GmdjExpr> {
        // BASE DISTINCT cols FROM table [KEY cols];
        self.eat_keyword("BASE")?;
        self.eat_keyword("DISTINCT")?;
        let proj_names = self.ident_list()?;
        self.eat_keyword("FROM")?;
        let detail_name = self.ident()?;
        let detail = self.schema(&detail_name)?;
        let cols = proj_names
            .iter()
            .map(|n| detail.index_of(n))
            .collect::<Result<Vec<_>>>()?;
        let key = if self.try_keyword("KEY") {
            let key_names = self.ident_list()?;
            key_names
                .iter()
                .map(|n| {
                    proj_names.iter().position(|p| p == n).ok_or_else(|| {
                        SkallaError::parse(format!("key column `{n}` not in projection"))
                    })
                })
                .collect::<Result<Vec<_>>>()?
        } else {
            (0..cols.len()).collect()
        };
        self.eat_sym(";")?;

        // Evolving base schema for b.name resolution.
        let mut base_schema = detail.project(&cols)?;

        let mut ops = Vec::new();
        while self.peek().is_some() {
            if self.try_sym(";") {
                continue; // tolerate empty statements / trailing semicolon
            }
            self.eat_keyword("MD")?;
            let (op, new_fields) = self.md_clause(&base_schema, &detail_name)?;
            base_schema = base_schema.extended(&new_fields)?;
            ops.push(op);
            if self.peek().is_some() {
                self.eat_sym(";")?;
            }
        }
        if ops.is_empty() {
            return Err(SkallaError::parse("query has no MD clauses"));
        }
        GmdjExpr::new(BaseSpec::DistinctProject { cols }, detail_name, ops, key)
    }

    /// `agg_list WHERE expr [FROM table]` — returns the operator and the
    /// output fields to append to the base schema.
    fn md_clause(
        &mut self,
        base: &Schema,
        default_detail: &str,
    ) -> Result<(GmdjOp, Vec<skalla_types::Field>)> {
        // Aggregates are parsed first but their argument expressions need
        // the detail schema, which the optional trailing FROM may override.
        // Two-phase: remember the token position, scan ahead for FROM after
        // the WHERE expression is parsed. Simpler approach: parse against
        // the default detail; an override changes name resolution, so we
        // re-parse with the right schema if a FROM shows up.
        let clause_start = self.pos;
        let detail = self.schema(default_detail)?;
        let parsed = self.md_body(base, &detail);
        match parsed {
            Ok((aggs, theta)) => {
                if self.try_keyword("FROM") {
                    let override_name = self.ident()?;
                    if override_name != default_detail {
                        // Re-parse the clause body against the real schema.
                        let end = self.pos;
                        self.pos = clause_start;
                        let detail = self.schema(&override_name)?;
                        let (aggs, theta) = self.md_body(base, &detail)?;
                        // Skip back over FROM table.
                        self.pos = end;
                        return self.finish_md(aggs, theta, Some(override_name), &detail);
                    }
                }
                self.finish_md(aggs, theta, None, &detail)
            }
            Err(e) => Err(e),
        }
    }

    fn finish_md(
        &mut self,
        aggs: Vec<AggSpec>,
        theta: Expr,
        detail_name: Option<String>,
        detail: &Schema,
    ) -> Result<(GmdjOp, Vec<skalla_types::Field>)> {
        let fields = aggs
            .iter()
            .map(|a| a.output_field(detail))
            .collect::<Result<Vec<_>>>()?;
        let op = GmdjOp {
            blocks: vec![GmdjBlock::new(aggs, theta)],
            detail_name,
        };
        Ok((op, fields))
    }

    fn md_body(&mut self, base: &Schema, detail: &Schema) -> Result<(Vec<AggSpec>, Expr)> {
        let mut aggs = vec![self.agg(detail)?];
        while self.try_sym(",") {
            aggs.push(self.agg(detail)?);
        }
        self.eat_keyword("WHERE")?;
        let theta = self.expr(base, detail)?;
        Ok((aggs, theta))
    }

    fn agg(&mut self, detail: &Schema) -> Result<AggSpec> {
        let name = self.ident()?;
        let func = match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            other => return Err(SkallaError::parse(format!("unknown aggregate `{other}`"))),
        };
        self.eat_sym("(")?;
        let spec = if func == AggFunc::Count && self.try_sym("*") {
            self.eat_sym(")")?;
            self.eat_keyword("AS")?;
            AggSpec::count_star(self.ident()?)
        } else {
            let arg = self.expr(&Schema::empty(), detail)?;
            self.eat_sym(")")?;
            self.eat_keyword("AS")?;
            AggSpec::new(func, arg, self.ident()?)?
        };
        Ok(spec)
    }

    // Expression grammar (lowest to highest precedence):
    // or  := and (OR and)*
    // and := not (AND not)*
    // not := NOT not | cmp
    // cmp := add ((=|<>|<|<=|>|>=) add | IN (lits) | IS [NOT] NULL)?
    // add := mul ((+|-) mul)*
    // mul := unary ((*|/|%) unary)*
    // unary := - unary | primary
    fn expr(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        self.or_expr(base, detail)
    }

    fn or_expr(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        let mut e = self.and_expr(base, detail)?;
        while self.try_keyword("OR") {
            let r = self.and_expr(base, detail)?;
            e = e.or(r);
        }
        Ok(e)
    }

    fn and_expr(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        let mut e = self.not_expr(base, detail)?;
        while self.try_keyword("AND") {
            let r = self.not_expr(base, detail)?;
            e = e.and(r);
        }
        Ok(e)
    }

    fn not_expr(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        if self.try_keyword("NOT") {
            Ok(self.not_expr(base, detail)?.not())
        } else {
            self.cmp_expr(base, detail)
        }
    }

    fn cmp_expr(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        let lhs = self.add_expr(base, detail)?;
        if self.try_keyword("IN") {
            self.eat_sym("(")?;
            let mut vals = vec![self.literal()?];
            while self.try_sym(",") {
                vals.push(self.literal()?);
            }
            self.eat_sym(")")?;
            return Ok(lhs.in_set(vals));
        }
        if self.try_keyword("IS") {
            let negated = self.try_keyword("NOT");
            self.eat_keyword("NULL")?;
            let e = lhs.is_null();
            return Ok(if negated { e.not() } else { e });
        }
        let op = match self.peek() {
            Some(Tok::Sym("=")) => Some(BinOp::Eq),
            Some(Tok::Sym("<>")) => Some(BinOp::Ne),
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym("<=")) => Some(BinOp::Le),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            Some(Tok::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.add_expr(base, detail)?;
                Ok(Expr::binary(op, lhs, rhs))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        let mut e = self.mul_expr(base, detail)?;
        loop {
            if self.try_sym("+") {
                e = e.add(self.mul_expr(base, detail)?);
            } else if self.try_sym("-") {
                e = e.sub(self.mul_expr(base, detail)?);
            } else {
                return Ok(e);
            }
        }
    }

    fn mul_expr(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        let mut e = self.unary_expr(base, detail)?;
        loop {
            if self.try_sym("*") {
                e = e.mul(self.unary_expr(base, detail)?);
            } else if self.try_sym("/") {
                e = e.div(self.unary_expr(base, detail)?);
            } else if self.try_sym("%") {
                e = e.rem(self.unary_expr(base, detail)?);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary_expr(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        if self.try_sym("-") {
            Ok(self.unary_expr(base, detail)?.neg())
        } else {
            self.primary(base, detail)
        }
    }

    fn primary(&mut self, base: &Schema, detail: &Schema) -> Result<Expr> {
        match self.next()? {
            Tok::Int(i) => Ok(Expr::lit(i)),
            Tok::Float(f) => Ok(Expr::lit(f)),
            Tok::Str(s) => Ok(Expr::lit(s.as_str())),
            Tok::Sym("(") => {
                let e = self.expr(base, detail)?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Tok::Ident(id) if id.eq_ignore_ascii_case("true") => Ok(Expr::lit(true)),
            Tok::Ident(id) if id.eq_ignore_ascii_case("false") => Ok(Expr::lit(false)),
            Tok::Ident(id) if id.eq_ignore_ascii_case("null") => Ok(Expr::Lit(Value::Null)),
            Tok::Ident(id) if id.eq_ignore_ascii_case("b") => {
                self.eat_sym(".")?;
                let col = self.ident()?;
                Ok(Expr::BaseCol(base.index_of(&col)?))
            }
            Tok::Ident(id) if id.eq_ignore_ascii_case("r") => {
                self.eat_sym(".")?;
                let col = self.ident()?;
                Ok(Expr::DetailCol(detail.index_of(&col)?))
            }
            // A bare identifier resolves against the detail relation (the
            // common case inside aggregate arguments, e.g. `SUM(nb)`).
            Tok::Ident(id) => Ok(Expr::DetailCol(detail.index_of(&id)?)),
            other => Err(SkallaError::parse(format!("unexpected token {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Tok::Int(i) => Ok(Value::Int(i)),
            Tok::Float(f) => Ok(Value::Float(f)),
            Tok::Str(s) => Ok(Value::str(s)),
            Tok::Ident(id) if id.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Tok::Ident(id) if id.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Tok::Ident(id) if id.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Tok::Sym("-") => match self.next()? {
                Tok::Int(i) => Ok(Value::Int(-i)),
                Tok::Float(f) => Ok(Value::Float(-f)),
                other => Err(SkallaError::parse(format!(
                    "expected number after `-`, got {other:?}"
                ))),
            },
            other => Err(SkallaError::parse(format!(
                "expected literal, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_types::DataType;

    fn schemas() -> HashMap<String, Arc<Schema>> {
        let flow = Schema::from_pairs([
            ("sas", DataType::Int64),
            ("das", DataType::Int64),
            ("nb", DataType::Int64),
        ])
        .unwrap()
        .into_arc();
        HashMap::from([("flow".to_string(), flow)])
    }

    const EXAMPLE1: &str = "
        BASE DISTINCT sas, das FROM flow KEY sas, das;
        MD COUNT(*) AS cnt1, SUM(nb) AS sum1
           WHERE b.sas = r.sas AND b.das = r.das;
        MD COUNT(*) AS cnt2
           WHERE b.sas = r.sas AND b.das = r.das AND r.nb >= b.sum1 / b.cnt1;
    ";

    #[test]
    fn parses_example1() {
        let e = parse_query(EXAMPLE1, &schemas()).unwrap();
        assert_eq!(e.detail_name, "flow");
        assert_eq!(e.ops.len(), 2);
        assert_eq!(e.key, vec![0, 1]);
        let detail = schemas()["flow"].clone();
        e.validate(&detail).unwrap();
        assert_eq!(
            e.output_schema(&detail).unwrap().names(),
            vec!["sas", "das", "cnt1", "sum1", "cnt2"]
        );
        // θ₂ must reference the computed aggregates (base cols 2 and 3).
        let theta2 = &e.ops[1].blocks[0].theta;
        let used = skalla_expr::base_cols_used(theta2);
        assert!(used.contains(&2) && used.contains(&3));
    }

    #[test]
    fn key_defaults_to_projection() {
        let q = "BASE DISTINCT das, sas FROM flow;
                 MD COUNT(*) AS c WHERE b.das = r.das;";
        let e = parse_query(q, &schemas()).unwrap();
        assert_eq!(e.key, vec![0, 1]);
        // Projection order is respected: das first.
        match &e.base {
            BaseSpec::DistinctProject { cols } => assert_eq!(cols, &vec![1, 0]),
            other => panic!("unexpected base {other:?}"),
        }
    }

    #[test]
    fn aggregates_parse_all_functions() {
        let q = "BASE DISTINCT sas FROM flow;
                 MD COUNT(r.nb) AS c, SUM(r.nb) AS s, AVG(r.nb) AS a,
                    MIN(r.nb) AS lo, MAX(r.nb * 2) AS hi
                 WHERE b.sas = r.sas;";
        let e = parse_query(q, &schemas()).unwrap();
        let aggs = &e.ops[0].blocks[0].aggs;
        assert_eq!(aggs.len(), 5);
        assert_eq!(aggs[2].func, AggFunc::Avg);
        assert_eq!(aggs[4].name, "hi");
        assert!(aggs[0].arg.is_some());
    }

    #[test]
    fn operators_and_precedence() {
        let q = "BASE DISTINCT sas FROM flow;
                 MD COUNT(*) AS c
                 WHERE b.sas = r.sas AND r.nb + 1 * 2 >= 3 OR NOT r.nb < 5;";
        let e = parse_query(q, &schemas()).unwrap();
        let t = e.ops[0].blocks[0].theta.to_string();
        // * binds tighter than +, AND tighter than OR.
        assert_eq!(
            t,
            "(((b.0 = r.0) AND ((r.2 + (1 * 2)) >= 3)) OR (NOT (r.2 < 5)))"
        );
    }

    #[test]
    fn in_and_is_null_and_strings() {
        let q = "BASE DISTINCT sas FROM flow;
                 MD COUNT(*) AS c
                 WHERE b.sas IN (1, 2, -3) AND r.nb IS NOT NULL AND 'x' = 'x';";
        let e = parse_query(q, &schemas()).unwrap();
        let t = e.ops[0].blocks[0].theta.to_string();
        assert!(t.contains("IN {-3, 1, 2}"));
        assert!(t.contains("(NOT (r.2 IS NULL))"));
        assert!(t.contains("('x' = 'x')"));
    }

    #[test]
    fn comments_and_case_insensitivity() {
        let q = "base distinct SAS from flow; -- nope, case matters for idents
                 md count(*) as c where b.SAS = r.SAS;";
        // Column names are case-sensitive: SAS doesn't exist.
        assert!(parse_query(q, &schemas()).is_err());
        let q = "base distinct sas from flow; -- comment here
                 md count(*) as c where b.sas = r.sas;";
        parse_query(q, &schemas()).unwrap();
    }

    #[test]
    fn errors_are_reported() {
        let s = schemas();
        assert!(parse_query("", &s).is_err());
        assert!(parse_query(
            "BASE DISTINCT sas FROM missing; MD COUNT(*) AS c WHERE true;",
            &s
        )
        .is_err());
        assert!(parse_query(
            "BASE DISTINCT zz FROM flow; MD COUNT(*) AS c WHERE true;",
            &s
        )
        .is_err());
        assert!(parse_query("BASE DISTINCT sas FROM flow;", &s).is_err()); // no MD
        assert!(parse_query(
            "BASE DISTINCT sas FROM flow KEY das; MD COUNT(*) AS c WHERE true;",
            &s
        )
        .is_err()); // key not in projection
        assert!(parse_query(
            "BASE DISTINCT sas FROM flow; MD FOO(*) AS c WHERE true;",
            &s
        )
        .is_err());
        assert!(parse_query(
            "BASE DISTINCT sas FROM flow; MD COUNT(*) AS c WHERE b.sas = ;",
            &s
        )
        .is_err());
        assert!(parse_query(
            "BASE DISTINCT sas FROM flow; MD COUNT(*) AS c WHERE 'open;",
            &s
        )
        .is_err());
    }

    #[test]
    fn parsed_query_runs_centralized() {
        use skalla_storage::{Catalog, Table};
        let e = parse_query(EXAMPLE1, &schemas()).unwrap();
        let t = Table::from_rows(
            schemas()["flow"].clone(),
            &[
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(1), Value::Int(10), Value::Int(300)],
                vec![Value::Int(2), Value::Int(20), Value::Int(50)],
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.register("flow", t);
        let out = skalla_gmdj::eval_expr_centralized(&e, &cat)
            .unwrap()
            .sorted();
        assert_eq!(
            out.row(0),
            &vec![
                Value::Int(1),
                Value::Int(10),
                Value::Int(2),
                Value::Int(400),
                Value::Int(1)
            ]
        );
    }

    #[test]
    fn trailing_semicolon_tolerated() {
        let q = "BASE DISTINCT sas FROM flow;
                 MD COUNT(*) AS c WHERE b.sas = r.sas;;";
        parse_query(q, &schemas()).unwrap();
    }
}
