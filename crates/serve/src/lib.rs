#![warn(missing_docs)]

//! # skalla-serve
//!
//! The multi-client serving layer: a TCP endpoint in front of the
//! distributed warehouse, turning the single-query engine of
//! `skalla-core` into something many dashboards can share.
//!
//! The paper's coordinator (§5) evaluates one GMDJ expression at a
//! time; Theorem 1 — the synchronized base-result after round *k* *is*
//! the entire query state — is what makes a serving layer cheap to add:
//! queries are round-granular state machines ([`skalla_core::QueryRun`])
//! that a single executor can interleave fairly, and a finished query's
//! base-result is exactly the relation worth caching.
//!
//! * [`protocol`] — the framed request/response protocol: query text or
//!   pre-compiled plans in, relations + cost summaries out, with
//!   explicit `Busy` backpressure and a stats/invalidate control plane.
//! * [`server`] — [`Server`]: accept loop, session threads, the shared
//!   [`skalla_core::QueryScheduler`], and the TPCR engine builder.
//! * [`client`] — [`ServeClient`]: a blocking client with
//!   backoff-on-`Busy` retry, used by the CLI's client mode, the
//!   serving bench, and the tests.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{QueryOutcome, ServeClient};
pub use protocol::{QueryReply, Request, Response, ServeStats, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server};
