//! The client↔server protocol of the serving layer.
//!
//! Each request and response travels as one length-prefixed frame
//! ([`skalla_net::frame`]); the payload is a tag byte followed by a
//! [`WireEncode`] body, reusing the same compact wire format the
//! coordinator↔site protocol uses. A [`crate::protocol::Request::Plan`]
//! carries a full [`DistPlan`] encoded exactly as the coordinator would
//! ship it to a site (`Message::Plan` wire body), so a client can submit
//! either query *text* (planned server-side, cost-based) or a
//! pre-compiled *plan* (run verbatim).

use bytes::{BufMut, BytesMut};

use skalla_core::message::Message;
use skalla_core::{CacheStats, DistPlan, SchedStats};
use skalla_net::wire::{put_str, put_varint};
use skalla_net::{WireDecode, WireEncode, WireReader};
use skalla_types::{Relation, Result, SkallaError};

/// Protocol revision. A `Hello` with any other version is refused, so
/// incompatible clients fail loudly at connect time rather than
/// misdecoding frames later.
pub const PROTOCOL_VERSION: u32 = 1;

/// A client request. The first request on a connection should be
/// [`Request::Hello`]; everything after is a free-form sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session, declaring the client's protocol version.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Submit query text; the server parses and cost-plans it.
    Query {
        /// The GMDJ query text (`BASE … FROM …; MD …;`).
        text: String,
    },
    /// Submit a pre-compiled distributed plan, run exactly as encoded
    /// (retry policy and parallelism included).
    Plan(Box<DistPlan>),
    /// Ask for server-wide scheduler and cache counters.
    Stats,
    /// Drop every cached result (call after any catalog change).
    Invalidate,
}

/// A server response; one per request, in order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session accepted.
    Welcome {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Number of warehouse sites behind the coordinator.
        sites: usize,
    },
    /// The query finished; here is its result.
    Rows(QueryReply),
    /// The admission queue is full — retry after a backoff.
    Busy,
    /// The request failed (parse error, plan error, execution error, or
    /// protocol violation).
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Counters, answering [`Request::Stats`].
    Stats(ServeStats),
    /// The result cache was cleared, answering [`Request::Invalidate`].
    Invalidated,
}

/// A finished query's result and how it was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// The final result relation.
    pub rows: Relation,
    /// The coordinator's one-line cost summary for this execution.
    pub summary: String,
    /// Whether the result came from the plan-fingerprint cache.
    pub cache_hit: bool,
    /// Wall-clock seconds the query spent in the executor (zero for
    /// cache hits).
    pub wall_s: f64,
}

/// Server-wide counters: session/query totals plus the scheduler's
/// admission counters and the result cache's hit/miss breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Connections accepted since the server started.
    pub sessions: u64,
    /// Query requests received (text and plan forms).
    pub queries: u64,
    /// Admission and completion counters from the scheduler.
    pub sched: SchedStats,
    /// Result-cache counters.
    pub cache: CacheStats,
}

impl WireEncode for Request {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Request::Hello { version } => {
                buf.put_u8(0);
                version.encode(buf);
            }
            Request::Query { text } => {
                buf.put_u8(1);
                put_str(buf, text);
            }
            Request::Plan(plan) => {
                buf.put_u8(2);
                let body = Message::Plan((**plan).clone()).to_wire();
                put_varint(buf, body.len() as u64);
                buf.put_slice(&body);
            }
            Request::Stats => buf.put_u8(3),
            Request::Invalidate => buf.put_u8(4),
        }
    }
}

impl WireDecode for Request {
    fn decode(r: &mut WireReader<'_>) -> Result<Request> {
        Ok(match r.u8()? {
            0 => Request::Hello {
                version: u32::decode(r)?,
            },
            1 => Request::Query { text: r.string()? },
            2 => {
                let body = r.bytes()?;
                match Message::from_wire(body)? {
                    Message::Plan(p) => Request::Plan(Box::new(p)),
                    other => {
                        return Err(SkallaError::net(format!(
                            "plan request carried a non-plan message: {other:?}"
                        )))
                    }
                }
            }
            3 => Request::Stats,
            4 => Request::Invalidate,
            tag => return Err(SkallaError::net(format!("unknown request tag {tag}"))),
        })
    }
}

impl WireEncode for Response {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Response::Welcome { version, sites } => {
                buf.put_u8(0);
                version.encode(buf);
                sites.encode(buf);
            }
            Response::Rows(reply) => {
                buf.put_u8(1);
                reply.encode(buf);
            }
            Response::Busy => buf.put_u8(2),
            Response::Error { message } => {
                buf.put_u8(3);
                put_str(buf, message);
            }
            Response::Stats(stats) => {
                buf.put_u8(4);
                stats.encode(buf);
            }
            Response::Invalidated => buf.put_u8(5),
        }
    }
}

impl WireDecode for Response {
    fn decode(r: &mut WireReader<'_>) -> Result<Response> {
        Ok(match r.u8()? {
            0 => Response::Welcome {
                version: u32::decode(r)?,
                sites: usize::decode(r)?,
            },
            1 => Response::Rows(QueryReply::decode(r)?),
            2 => Response::Busy,
            3 => Response::Error {
                message: r.string()?,
            },
            4 => Response::Stats(ServeStats::decode(r)?),
            5 => Response::Invalidated,
            tag => return Err(SkallaError::net(format!("unknown response tag {tag}"))),
        })
    }
}

impl WireEncode for QueryReply {
    fn encode(&self, buf: &mut BytesMut) {
        self.cache_hit.encode(buf);
        buf.put_slice(&self.wall_s.to_le_bytes());
        put_str(buf, &self.summary);
        self.rows.encode(buf);
    }
}

impl WireDecode for QueryReply {
    fn decode(r: &mut WireReader<'_>) -> Result<QueryReply> {
        Ok(QueryReply {
            cache_hit: bool::decode(r)?,
            wall_s: r.f64()?,
            summary: r.string()?,
            rows: Relation::decode(r)?,
        })
    }
}

impl WireEncode for ServeStats {
    fn encode(&self, buf: &mut BytesMut) {
        for v in [
            self.sessions,
            self.queries,
            self.sched.submitted,
            self.sched.rejected,
            self.sched.completed,
            self.sched.failed,
            self.sched.queue_depth as u64,
            self.sched.in_flight as u64,
            self.cache.hits,
            self.cache.misses,
            self.cache.insertions,
            self.cache.rejected_partial,
            self.cache.evictions,
            self.cache.collisions,
            self.cache.invalidations,
            self.cache.entries as u64,
        ] {
            put_varint(buf, v);
        }
    }
}

impl WireDecode for ServeStats {
    fn decode(r: &mut WireReader<'_>) -> Result<ServeStats> {
        Ok(ServeStats {
            sessions: r.varint()?,
            queries: r.varint()?,
            sched: SchedStats {
                submitted: r.varint()?,
                rejected: r.varint()?,
                completed: r.varint()?,
                failed: r.varint()?,
                queue_depth: r.varint()? as usize,
                in_flight: r.varint()? as usize,
            },
            cache: CacheStats {
                hits: r.varint()?,
                misses: r.varint()?,
                insertions: r.varint()?,
                rejected_partial: r.varint()?,
                evictions: r.varint()?,
                collisions: r.varint()?,
                invalidations: r.varint()?,
                entries: r.varint()? as usize,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skalla_core::OptFlags;
    use skalla_expr::Expr;
    use skalla_gmdj::{AggSpec, BaseSpec, GmdjBlock, GmdjExpr, GmdjOp};
    use skalla_types::{DataType, Schema, Value};

    fn roundtrip_req(req: Request) {
        assert_eq!(Request::from_wire(&req.to_wire()).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        assert_eq!(Response::from_wire(&resp.to_wire()).unwrap(), resp);
    }

    fn sample_plan() -> DistPlan {
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        DistPlan::unoptimized(
            GmdjExpr::new(
                BaseSpec::DistinctProject { cols: vec![0] },
                "flow",
                vec![op],
                vec![0],
            )
            .unwrap(),
        )
    }

    fn sample_rel() -> Relation {
        Relation::new(
            Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Utf8)])
                .unwrap()
                .into_arc(),
            vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(2), Value::str("b")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_req(Request::Query {
            text: "BASE DISTINCT x FROM t; MD COUNT(*) AS c WHERE b.x = r.x;".into(),
        });
        roundtrip_req(Request::Plan(Box::new(sample_plan())));
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Invalidate);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Welcome {
            version: PROTOCOL_VERSION,
            sites: 8,
        });
        roundtrip_resp(Response::Rows(QueryReply {
            rows: sample_rel(),
            summary: "4 rounds | …".into(),
            cache_hit: true,
            wall_s: 0.125,
        }));
        roundtrip_resp(Response::Busy);
        roundtrip_resp(Response::Error {
            message: "no such table".into(),
        });
        roundtrip_resp(Response::Stats(ServeStats {
            sessions: 3,
            queries: 17,
            sched: SchedStats {
                submitted: 17,
                rejected: 2,
                completed: 14,
                failed: 1,
                queue_depth: 64,
                in_flight: 2,
            },
            cache: CacheStats {
                hits: 5,
                misses: 12,
                insertions: 11,
                rejected_partial: 1,
                evictions: 0,
                collisions: 0,
                invalidations: 1,
                entries: 9,
            },
        }));
        roundtrip_resp(Response::Invalidated);
    }

    #[test]
    fn plan_request_preserves_optimizer_flags() {
        let mut plan = sample_plan();
        plan.flags = OptFlags::all();
        let wire = Request::Plan(Box::new(plan.clone())).to_wire();
        match Request::from_wire(&wire).unwrap() {
            Request::Plan(back) => assert_eq!(*back, plan),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn garbage_tag_is_rejected() {
        assert!(Request::from_wire(&[200]).is_err());
        assert!(Response::from_wire(&[200]).is_err());
    }
}
