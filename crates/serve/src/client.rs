//! A small blocking client for the serving protocol.
//!
//! One [`ServeClient`] is one session: a TCP connection plus the
//! `Hello`/`Welcome` handshake. Requests are strictly request/response,
//! so the client is a thin frame-and-decode wrapper; the interesting
//! part is [`ServeClient::query_with_retry`], which turns the server's
//! `Busy` backpressure into bounded exponential backoff — the behavior
//! a well-mannered dashboard should have.

use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use skalla_core::DistPlan;
use skalla_net::{read_frame, write_frame, WireDecode, WireEncode};
use skalla_types::{Result, SkallaError};

use crate::protocol::{QueryReply, Request, Response, ServeStats, PROTOCOL_VERSION};

/// What a single (non-retrying) query submission produced.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The query ran (or was served from cache); here is its result.
    Done(QueryReply),
    /// The admission queue was full; retry after a backoff.
    Busy,
}

/// A connected session with a serving endpoint.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect and perform the `Hello`/`Welcome` handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| SkallaError::net(format!("connect failed: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut client = ServeClient { stream };
        match client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Welcome { .. } => Ok(client),
            Response::Error { message } => Err(SkallaError::net(message)),
            other => Err(SkallaError::net(format!(
                "unexpected handshake response: {other:?}"
            ))),
        }
    }

    /// Submit query text once. `Busy` is returned, not retried.
    pub fn query(&mut self, text: &str) -> Result<QueryOutcome> {
        let resp = self.call(&Request::Query {
            text: text.to_string(),
        })?;
        Self::into_outcome(resp)
    }

    /// Submit a pre-compiled plan once, run by the server exactly as
    /// encoded. `Busy` is returned, not retried.
    pub fn query_plan(&mut self, plan: DistPlan) -> Result<QueryOutcome> {
        let resp = self.call(&Request::Plan(Box::new(plan)))?;
        Self::into_outcome(resp)
    }

    /// Submit query text, retrying `Busy` answers with exponential
    /// backoff (1 ms, 2 ms, 4 ms, … capped at 64 ms) up to `attempts`
    /// total submissions. Returns the number of `Busy` answers absorbed
    /// alongside the reply.
    pub fn query_with_retry(&mut self, text: &str, attempts: u32) -> Result<(QueryReply, u32)> {
        let mut busy = 0u32;
        loop {
            match self.query(text)? {
                QueryOutcome::Done(reply) => return Ok((reply, busy)),
                QueryOutcome::Busy => {
                    busy += 1;
                    if busy >= attempts {
                        return Err(SkallaError::exec(format!(
                            "server still busy after {attempts} attempts"
                        )));
                    }
                    let backoff = 1u64 << busy.min(6);
                    thread::sleep(Duration::from_millis(backoff));
                }
            }
        }
    }

    /// Fetch server-wide scheduler and cache counters.
    pub fn stats(&mut self) -> Result<ServeStats> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { message } => Err(SkallaError::net(message)),
            other => Err(SkallaError::net(format!(
                "unexpected stats response: {other:?}"
            ))),
        }
    }

    /// Drop every cached result on the server (catalog change).
    pub fn invalidate(&mut self) -> Result<()> {
        match self.call(&Request::Invalidate)? {
            Response::Invalidated => Ok(()),
            Response::Error { message } => Err(SkallaError::net(message)),
            other => Err(SkallaError::net(format!(
                "unexpected invalidate response: {other:?}"
            ))),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &req.to_wire())?;
        match read_frame(&mut self.stream)? {
            Some(frame) => Response::from_wire(&frame),
            None => Err(SkallaError::net("server closed the connection")),
        }
    }

    fn into_outcome(resp: Response) -> Result<QueryOutcome> {
        match resp {
            Response::Rows(reply) => Ok(QueryOutcome::Done(reply)),
            Response::Busy => Ok(QueryOutcome::Busy),
            Response::Error { message } => Err(SkallaError::exec(message)),
            other => Err(SkallaError::net(format!(
                "unexpected query response: {other:?}"
            ))),
        }
    }
}
