//! The serving endpoint: a TCP listener multiplexing many client
//! sessions over one shared warehouse.
//!
//! Threading model (no async runtime — plain OS threads, like the site
//! engines themselves):
//!
//! * one *accept* thread hands each connection to a *session* thread;
//! * session threads parse/plan requests and submit plans to the shared
//!   [`QueryScheduler`], blocking on their ticket while the scheduler's
//!   single executor interleaves rounds from every admitted query;
//! * backpressure is end-to-end: when the admission queue is full the
//!   session immediately answers [`Response::Busy`] and the client
//!   retries with backoff.
//!
//! The warehouse is the TPCR generator's denormalized fact table,
//! nation-partitioned across sites — the same engine the CLI's `\load`
//! builds, so results are comparable across the shell, the benches, and
//! the server.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use skalla_core::{
    Admission, DegradedMode, DistPlan, DistributedWarehouse, ExecMetrics, QueryScheduler,
    RetryPolicy, SchedConfig,
};
use skalla_net::{read_frame, write_frame, CostModel, FaultPlan, WireDecode, WireEncode};
use skalla_planner::{choose_plan, parse_query, DistributionInfo};
use skalla_storage::{Catalog, TableStats};
use skalla_tpcr::{
    generate, partition_by_nation, TpcrConfig, CITYNAME_COL, CUSTKEY_COL, CUSTNAME_COL,
    NATIONKEY_COL,
};
use skalla_types::{Relation, Result, Schema, SkallaError};

use crate::protocol::{QueryReply, Request, Response, ServeStats, PROTOCOL_VERSION};

/// Everything needed to start a server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port `0` to let the OS pick (see
    /// [`Server::local_addr`]).
    pub listen: String,
    /// TPCR scale factor for the generated warehouse.
    pub scale: f64,
    /// Number of warehouse sites.
    pub sites: usize,
    /// Partition replication factor (ring); `1` disables replication.
    pub replication: usize,
    /// Fault injection for the simulated fabric under the engine.
    pub faults: FaultPlan,
    /// Retry/deadline budget applied to every planned query.
    pub retry: RetryPolicy,
    /// Coordinator behavior once retries are exhausted.
    pub degraded: DegradedMode,
    /// Coordinator synchronization workers per query.
    pub coord_workers: usize,
    /// Sharded-sync shard count override (rounded up to a power of two by
    /// the engine); `None` keeps the default of 4 shards per worker.
    pub sync_shards: Option<usize>,
    /// Admission queue bound; submissions beyond it answer `Busy`.
    pub queue_depth: usize,
    /// How many admitted queries the executor interleaves round-robin.
    pub max_interleave: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_entries: usize,
    /// Per-session socket read timeout: a client that connects and then
    /// goes silent for this long is disconnected and its session thread
    /// freed, so an idle or stalled client can never pin a session
    /// thread (and its connection-registry slot) until server shutdown.
    /// `None` waits forever. The timeout applies between requests, not
    /// during query execution — a session blocked on its scheduler
    /// ticket is working, not idle.
    pub session_read_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: "127.0.0.1:0".to_string(),
            scale: 0.05,
            sites: 4,
            replication: 1,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            degraded: DegradedMode::Fail,
            coord_workers: 1,
            sync_shards: None,
            queue_depth: 64,
            max_interleave: 4,
            cache_entries: 128,
            session_read_timeout: Some(Duration::from_secs(300)),
        }
    }
}

/// Server-side planning state: schema registry, distribution knowledge,
/// and table statistics for the cost-based optimizer — the same inputs
/// the CLI session keeps after `\load`.
struct Planner {
    schemas: HashMap<String, Arc<Schema>>,
    dist: DistributionInfo,
    stats: TableStats,
    retry: RetryPolicy,
    coord_workers: usize,
    sync_shards: Option<usize>,
}

impl Planner {
    /// Parse and cost-plan query text, then apply the server's retry
    /// policy and coordinator parallelism.
    fn plan(&self, text: &str) -> Result<DistPlan> {
        let expr = parse_query(text, &self.schemas)?;
        let (mut plan, _report, _) =
            choose_plan(&expr, &self.dist, &self.stats, &CostModel::lan_2002())?;
        plan.retry = self.retry.clone();
        plan.coord_parallelism = self.coord_workers.max(1);
        plan.sync_shards = self.sync_shards;
        Ok(plan)
    }
}

/// State shared by every session thread.
struct SessionCtx {
    scheduler: QueryScheduler,
    planner: Planner,
    sites: usize,
    sessions: AtomicU64,
    queries: AtomicU64,
}

impl SessionCtx {
    fn handle(&self, req: Request) -> Response {
        match req {
            Request::Hello { version } if version == PROTOCOL_VERSION => Response::Welcome {
                version: PROTOCOL_VERSION,
                sites: self.sites,
            },
            Request::Hello { version } => Response::Error {
                message: format!(
                    "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
                ),
            },
            Request::Query { text } => {
                self.queries.fetch_add(1, Ordering::Relaxed);
                match self.planner.plan(&text) {
                    Ok(plan) => self.run(plan),
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Plan(plan) => {
                self.queries.fetch_add(1, Ordering::Relaxed);
                self.run(*plan)
            }
            Request::Stats => Response::Stats(ServeStats {
                sessions: self.sessions.load(Ordering::Relaxed),
                queries: self.queries.load(Ordering::Relaxed),
                sched: self.scheduler.stats(),
                cache: self.scheduler.cache_stats(),
            }),
            Request::Invalidate => {
                self.scheduler.invalidate_cache();
                Response::Invalidated
            }
        }
    }

    /// Submit a plan without blocking on admission; a full queue is a
    /// `Busy` answer, an admitted query blocks this session thread (not
    /// the executor) until its rounds complete.
    fn run(&self, plan: DistPlan) -> Response {
        match self.scheduler.try_submit(plan) {
            Ok(Admission::Admitted(ticket)) => match ticket.wait() {
                Ok((rows, metrics)) => Response::Rows(reply_of(rows, &metrics)),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Ok(Admission::Busy) => Response::Busy,
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        }
    }
}

fn reply_of(rows: Relation, metrics: &ExecMetrics) -> QueryReply {
    QueryReply {
        rows,
        summary: metrics.summary(),
        cache_hit: metrics.cache_hits > 0,
        wall_s: metrics.wall_s,
    }
}

/// A running serving endpoint. Dropping it without calling
/// [`Server::shutdown`] leaks the accept thread until process exit;
/// call `shutdown` for an orderly stop.
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<SessionCtx>,
    wh: Arc<DistributedWarehouse>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Generate the TPCR warehouse, launch the site engines and the
    /// scheduler, bind the listener, and start accepting sessions.
    pub fn start(cfg: ServeConfig) -> Result<Server> {
        let (wh, planner) = build_engine(&cfg)?;
        let wh = Arc::new(wh);
        let scheduler = QueryScheduler::launch(
            wh.clone(),
            SchedConfig {
                queue_depth: cfg.queue_depth,
                max_interleave: cfg.max_interleave,
                cache_capacity: cfg.cache_entries,
            },
        );
        let listener = TcpListener::bind(&cfg.listen)
            .map_err(|e| SkallaError::net(format!("bind {} failed: {e}", cfg.listen)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| SkallaError::net(format!("local_addr failed: {e}")))?;

        let ctx = Arc::new(SessionCtx {
            scheduler,
            planner,
            sites: cfg.sites,
            sessions: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let (ctx, stop, conns, workers) =
                (ctx.clone(), stop.clone(), conns.clone(), workers.clone());
            let read_timeout = cfg.session_read_timeout;
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || {
                    for incoming in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = incoming else { continue };
                        let _ = stream.set_nodelay(true);
                        // An expired timeout surfaces as a read error in
                        // `serve_session`'s loop: the session ends and the
                        // stream closes — a clean disconnect, not a hang.
                        let _ = stream.set_read_timeout(read_timeout);
                        ctx.sessions.fetch_add(1, Ordering::Relaxed);
                        if let Ok(clone) = stream.try_clone() {
                            conns.lock().expect("conn registry poisoned").push(clone);
                        }
                        let ctx = ctx.clone();
                        let handle = thread::Builder::new()
                            .name("serve-session".into())
                            .spawn(move || serve_session(stream, &ctx))
                            .expect("spawn session thread");
                        workers
                            .lock()
                            .expect("worker registry poisoned")
                            .push(handle);
                    }
                })
                .map_err(|e| SkallaError::net(format!("spawn accept thread: {e}")))?
        };

        Ok(Server {
            addr,
            ctx,
            wh,
            stop,
            conns,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address — the actual port when the config asked for `0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-wide counters without going through a connection.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            sessions: self.ctx.sessions.load(Ordering::Relaxed),
            queries: self.ctx.queries.load(Ordering::Relaxed),
            sched: self.ctx.scheduler.stats(),
            cache: self.ctx.scheduler.cache_stats(),
        }
    }

    /// Orderly stop: close the listener and every live connection, join
    /// the session threads, drain the scheduler, and shut the site
    /// engines down.
    pub fn shutdown(mut self) -> Result<()> {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for conn in self.conns.lock().expect("conn registry poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for h in self
            .workers
            .lock()
            .expect("worker registry poisoned")
            .drain(..)
        {
            let _ = h.join();
        }
        let Server { ctx, wh, .. } = self;
        let ctx = Arc::try_unwrap(ctx)
            .map_err(|_| SkallaError::exec("session threads still hold the server context"))?;
        ctx.scheduler.shutdown()?;
        drop(ctx);
        match Arc::try_unwrap(wh) {
            Ok(wh) => wh.shutdown(),
            Err(_) => Err(SkallaError::exec(
                "warehouse still referenced after scheduler shutdown",
            )),
        }
    }
}

/// One session: read a frame, handle it, write the response, repeat
/// until the peer hangs up, the stream dies, or the per-session read
/// timeout expires. The final `shutdown` is load-bearing: the accept
/// loop keeps an fd clone in the connection registry, so dropping our
/// copy alone would leave the socket open and a timed-out client
/// blocked forever waiting for a reply that will never come.
fn serve_session(mut stream: TcpStream, ctx: &SessionCtx) {
    while let Ok(Some(frame)) = read_frame(&mut stream) {
        let resp = match Request::from_wire(&frame) {
            Ok(req) => ctx.handle(req),
            Err(e) => Response::Error {
                message: format!("malformed request: {e}"),
            },
        };
        if write_frame(&mut stream, &resp.to_wire()).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Build the TPCR engine exactly as the CLI's `\load` does: generate,
/// nation-partition, collect statistics, derive distribution knowledge
/// for the nationkey column family, and launch the sites.
fn build_engine(cfg: &ServeConfig) -> Result<(DistributedWarehouse, Planner)> {
    let table = generate(&TpcrConfig::scale(cfg.scale));
    let parts = partition_by_nation(&table, cfg.sites)?;
    let stats = TableStats::collect(&table);
    let constraints =
        parts.site_constraints_for(&[NATIONKEY_COL, CUSTKEY_COL, CUSTNAME_COL, CITYNAME_COL]);
    let dist =
        DistributionInfo::with_constraints(cfg.sites, Some(NATIONKEY_COL), true, constraints)?
            .with_replication(cfg.replication);
    let schemas = HashMap::from([("tpcr".to_string(), table.schema().clone())]);
    let wh = if cfg.replication > 1 {
        DistributedWarehouse::launch_replicated(
            "tpcr",
            &parts,
            cfg.replication,
            CostModel::lan_2002(),
            cfg.faults.clone(),
        )?
    } else {
        let catalogs: Vec<Catalog> = parts
            .parts
            .iter()
            .map(|p| {
                let mut c = Catalog::new();
                c.register("tpcr", p.clone());
                c
            })
            .collect();
        DistributedWarehouse::launch_with_faults(
            catalogs,
            CostModel::lan_2002(),
            cfg.faults.clone(),
        )?
    };
    let mut retry = cfg.retry.clone();
    retry.degraded = cfg.degraded;
    Ok((
        wh,
        Planner {
            schemas,
            dist,
            stats,
            retry,
            coord_workers: cfg.coord_workers,
            sync_shards: cfg.sync_shards,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{QueryOutcome, ServeClient};

    fn tiny_server() -> Server {
        Server::start(ServeConfig {
            scale: 0.02,
            sites: 3,
            ..ServeConfig::default()
        })
        .unwrap()
    }

    const Q: &str = "BASE DISTINCT nationname FROM tpcr;
                     MD COUNT(*) AS orders, SUM(extendedprice) AS rev
                        WHERE b.nationname = r.nationname;";

    #[test]
    fn end_to_end_query_and_cache_hit() {
        let server = tiny_server();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();

        let first = match client.query(Q).unwrap() {
            QueryOutcome::Done(r) => r,
            QueryOutcome::Busy => panic!("empty server reported busy"),
        };
        assert!(!first.cache_hit);
        assert!(!first.rows.is_empty(), "TPCR has nations");

        let second = match client.query(Q).unwrap() {
            QueryOutcome::Done(r) => r,
            QueryOutcome::Busy => panic!("empty server reported busy"),
        };
        assert!(second.cache_hit, "identical query must hit the cache");
        assert_eq!(second.rows.sorted(), first.rows.sorted());

        let stats = client.stats().unwrap();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.cache.hits, 1);

        client.invalidate().unwrap();
        let third = match client.query(Q).unwrap() {
            QueryOutcome::Done(r) => r,
            QueryOutcome::Busy => panic!("empty server reported busy"),
        };
        assert!(!third.cache_hit, "invalidation must force re-execution");
        assert_eq!(third.rows.sorted(), first.rows.sorted());

        server.shutdown().unwrap();
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let server = tiny_server();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        let err = client.query("THIS IS NOT A QUERY").unwrap_err();
        assert!(!err.to_string().is_empty());
        // The session survives the error.
        assert!(matches!(client.query(Q).unwrap(), QueryOutcome::Done(_)));
        server.shutdown().unwrap();
    }

    #[test]
    fn version_mismatch_is_refused() {
        let server = tiny_server();
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        let hello = Request::Hello { version: 999 }.to_wire();
        write_frame(&mut stream, &hello).unwrap();
        let frame = read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::from_wire(&frame).unwrap(),
            Response::Error { .. }
        ));
        drop(stream);
        server.shutdown().unwrap();
    }
}
