//! Row-oriented relations.
//!
//! [`Relation`] is the workhorse container for base-values relations,
//! base-result structures shipped between coordinator and sites, and final
//! query results. Detail (fact) data lives in the columnar tables of
//! `skalla-storage` instead.

use std::fmt;
use std::sync::Arc;

use crate::error::{Result, SkallaError};
use crate::schema::Schema;
use crate::value::Value;
use crate::Row;

/// A schema plus a vector of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from rows, validating row arity against the schema.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Result<Relation> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != schema.len() {
                return Err(SkallaError::schema(format!(
                    "row {i} has {} values, schema has {} columns",
                    row.len(),
                    schema.len()
                )));
            }
        }
        Ok(Relation { schema, rows })
    }

    /// Build from rows without validation. Callers must guarantee every row
    /// matches the schema arity; used on hot paths (synchronization).
    pub fn from_rows_unchecked(schema: Arc<Schema>, rows: Vec<Row>) -> Relation {
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        Relation { schema, rows }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to rows (arity invariants are the caller's duty).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Row at `idx`.
    pub fn row(&self, idx: usize) -> &Row {
        &self.rows[idx]
    }

    /// Append a row, validating arity.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(SkallaError::schema(format!(
                "pushed row has {} values, schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Consume into the row vector.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Project onto the columns at `indices` (cloning values).
    pub fn project(&self, indices: &[usize]) -> Result<Relation> {
        let schema = Arc::new(self.schema.project(indices)?);
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(Relation { schema, rows })
    }

    /// Distinct rows (exact duplicates removed), preserving first-seen order.
    pub fn distinct(&self) -> Relation {
        let mut seen = std::collections::HashSet::with_capacity(self.rows.len());
        let mut rows = Vec::new();
        for r in &self.rows {
            if seen.insert(r.clone()) {
                rows.push(r.clone());
            }
        }
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Multiset union with `other` (schemas must match).
    pub fn union_all(&mut self, other: Relation) -> Result<()> {
        if *other.schema != *self.schema {
            return Err(SkallaError::schema(format!(
                "union of incompatible schemas {} and {}",
                self.schema, other.schema
            )));
        }
        self.rows.extend(other.rows);
        Ok(())
    }

    /// Sort rows lexicographically (total order on [`Value`]); useful for
    /// deterministic comparisons in tests.
    pub fn sorted(&self) -> Relation {
        let mut rows = self.rows.clone();
        rows.sort();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Row-wise comparison with a relative tolerance on float values.
    ///
    /// Distributed aggregation reassociates floating-point sums (per-site
    /// partial sums merge in fragment-arrival order), so `SUM`/`AVG` over
    /// `FLOAT64` columns can differ from a serial evaluation by rounding —
    /// exactly as in other parallel engines. Use this for result
    /// equivalence checks on float-bearing queries; integer aggregates are
    /// always exact and can use `==`.
    pub fn approx_eq(&self, other: &Relation, rel_tol: f64) -> bool {
        if *self.schema() != *other.schema() || self.len() != other.len() {
            return false;
        }
        self.rows.iter().zip(other.rows()).all(|(a, b)| {
            a.iter().zip(b).all(|(x, y)| match (x, y) {
                (Value::Float(p), Value::Float(q)) => {
                    (p - q).abs() <= rel_tol * p.abs().max(q.abs()).max(1.0)
                }
                _ => x == y,
            })
        })
    }

    /// Approximate in-memory payload size in bytes (used by the network cost
    /// model as a sanity cross-check against exact wire sizes).
    pub fn approx_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Null => 1,
                        Value::Int(_) => 9,
                        Value::Float(_) => 9,
                        Value::Bool(_) => 2,
                        Value::Str(s) => 5 + s.len(),
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

impl fmt::Display for Relation {
    /// Render as an aligned ASCII table (header row + data rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, n) in names.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{:width$}", n, width = widths[i])?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{:width$}", cell, width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema_ab() -> Arc<Schema> {
        Schema::from_pairs([("a", DataType::Int64), ("b", DataType::Utf8)])
            .unwrap()
            .into_arc()
    }

    fn rel() -> Relation {
        Relation::new(
            schema_ab(),
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
                vec![Value::Int(1), Value::str("x")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_arity() {
        let r = Relation::new(schema_ab(), vec![vec![Value::Int(1)]]);
        assert!(r.is_err());
    }

    #[test]
    fn push_validates_arity() {
        let mut r = Relation::empty(schema_ab());
        assert!(r.push(vec![Value::Int(1)]).is_err());
        assert!(r.push(vec![Value::Int(1), Value::str("z")]).is_ok());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn distinct_removes_duplicates_in_order() {
        let d = rel().distinct();
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(0)[0], Value::Int(1));
        assert_eq!(d.row(1)[0], Value::Int(2));
    }

    #[test]
    fn project_reorders_columns() {
        let p = rel().project(&[1, 0]).unwrap();
        assert_eq!(p.schema().names(), vec!["b", "a"]);
        assert_eq!(p.row(0), &vec![Value::str("x"), Value::Int(1)]);
    }

    #[test]
    fn union_all_checks_schema() {
        let mut r = rel();
        let other = rel();
        r.union_all(other).unwrap();
        assert_eq!(r.len(), 6);

        let other_schema = Schema::from_pairs([("z", DataType::Int64)])
            .unwrap()
            .into_arc();
        assert!(r.union_all(Relation::empty(other_schema)).is_err());
    }

    #[test]
    fn sorted_orders_rows() {
        let s = rel().sorted();
        assert!(s.row(0) <= s.row(1) && s.row(1) <= s.row(2));
    }

    #[test]
    fn display_renders_header_and_rows() {
        let out = rel().to_string();
        assert!(out.contains("a | b"));
        assert!(out.contains("1 | x"));
    }

    #[test]
    fn approx_eq_tolerates_float_rounding() {
        let schema = Schema::from_pairs([("k", DataType::Int64), ("x", DataType::Float64)])
            .unwrap()
            .into_arc();
        let a = Relation::new(
            schema.clone(),
            vec![vec![Value::Int(1), Value::Float(100.0)]],
        )
        .unwrap();
        let b = Relation::new(
            schema.clone(),
            vec![vec![Value::Int(1), Value::Float(100.0 + 1e-10)]],
        )
        .unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-14));
        // Non-float mismatches are never tolerated.
        let c = Relation::new(schema, vec![vec![Value::Int(2), Value::Float(100.0)]]).unwrap();
        assert!(!a.approx_eq(&c, 1.0));
        // Length mismatch.
        let d = Relation::empty(a.schema().clone());
        assert!(!a.approx_eq(&d, 1.0));
    }

    #[test]
    fn approx_bytes_scales_with_content() {
        let empty = Relation::empty(schema_ab());
        assert_eq!(empty.approx_bytes(), 0);
        assert!(rel().approx_bytes() > 0);
    }
}
