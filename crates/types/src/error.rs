//! Shared error type for all Skalla crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T, E = SkallaError> = std::result::Result<T, E>;

/// Errors produced anywhere in the Skalla system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkallaError {
    /// A value or expression had an unexpected type.
    Type(String),
    /// A named column or table was not found.
    NotFound(String),
    /// A schema was malformed or two schemas were incompatible.
    Schema(String),
    /// A query plan was invalid or an optimization precondition failed.
    Plan(String),
    /// A failure in the (simulated) network layer or wire format.
    Net(String),
    /// A failure during distributed execution.
    Exec(String),
    /// Arithmetic failure (division by zero, overflow).
    Arithmetic(String),
    /// Query-text parse error.
    Parse(String),
    /// On-disk data failed an integrity check (checksum mismatch, torn
    /// file, impossible frame). Distinct from [`SkallaError::Exec`] so the
    /// coordinator can route it straight to the degradation ladder —
    /// retrying the same corrupt bytes can never succeed.
    SegmentCorrupt(String),
}

impl SkallaError {
    /// Construct a [`SkallaError::Type`].
    pub fn type_error(msg: impl Into<String>) -> Self {
        SkallaError::Type(msg.into())
    }

    /// Construct a [`SkallaError::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> Self {
        SkallaError::NotFound(msg.into())
    }

    /// Construct a [`SkallaError::Schema`].
    pub fn schema(msg: impl Into<String>) -> Self {
        SkallaError::Schema(msg.into())
    }

    /// Construct a [`SkallaError::Plan`].
    pub fn plan(msg: impl Into<String>) -> Self {
        SkallaError::Plan(msg.into())
    }

    /// Construct a [`SkallaError::Net`].
    pub fn net(msg: impl Into<String>) -> Self {
        SkallaError::Net(msg.into())
    }

    /// Construct a [`SkallaError::Exec`].
    pub fn exec(msg: impl Into<String>) -> Self {
        SkallaError::Exec(msg.into())
    }

    /// Construct a [`SkallaError::Arithmetic`].
    pub fn arithmetic(msg: impl Into<String>) -> Self {
        SkallaError::Arithmetic(msg.into())
    }

    /// Construct a [`SkallaError::Parse`].
    pub fn parse(msg: impl Into<String>) -> Self {
        SkallaError::Parse(msg.into())
    }

    /// Construct a [`SkallaError::SegmentCorrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        SkallaError::SegmentCorrupt(msg.into())
    }

    /// `true` for [`SkallaError::SegmentCorrupt`] — a deterministic
    /// storage-integrity failure that no retry can fix.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, SkallaError::SegmentCorrupt(_))
    }
}

impl fmt::Display for SkallaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkallaError::Type(m) => write!(f, "type error: {m}"),
            SkallaError::NotFound(m) => write!(f, "not found: {m}"),
            SkallaError::Schema(m) => write!(f, "schema error: {m}"),
            SkallaError::Plan(m) => write!(f, "plan error: {m}"),
            SkallaError::Net(m) => write!(f, "network error: {m}"),
            SkallaError::Exec(m) => write!(f, "execution error: {m}"),
            SkallaError::Arithmetic(m) => write!(f, "arithmetic error: {m}"),
            SkallaError::Parse(m) => write!(f, "parse error: {m}"),
            SkallaError::SegmentCorrupt(m) => write!(f, "segment corrupt: {m}"),
        }
    }
}

impl std::error::Error for SkallaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(
            SkallaError::type_error("bad").to_string(),
            "type error: bad"
        );
        assert_eq!(SkallaError::not_found("tbl").to_string(), "not found: tbl");
        assert_eq!(SkallaError::plan("p").to_string(), "plan error: p");
        assert_eq!(SkallaError::net("n").to_string(), "network error: n");
        assert_eq!(SkallaError::exec("e").to_string(), "execution error: e");
        assert_eq!(SkallaError::parse("x").to_string(), "parse error: x");
        assert_eq!(
            SkallaError::arithmetic("div").to_string(),
            "arithmetic error: div"
        );
        assert_eq!(SkallaError::schema("s").to_string(), "schema error: s");
        assert_eq!(
            SkallaError::corrupt("bad crc").to_string(),
            "segment corrupt: bad crc"
        );
    }

    #[test]
    fn corrupt_predicate() {
        assert!(SkallaError::corrupt("x").is_corrupt());
        assert!(!SkallaError::exec("x").is_corrupt());
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SkallaError::exec("x"));
    }
}
