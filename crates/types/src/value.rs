//! Dynamically typed scalar values and their data types.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Result, SkallaError};

/// The logical type of a column or scalar expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Signed 64-bit integer.
    Int64,
    /// IEEE-754 double-precision float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
}

impl DataType {
    /// `true` if the type is numeric (integer or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }

    /// The common numeric type of two numeric operands: `Int64` only when
    /// both sides are integers, `Float64` otherwise.
    pub fn numeric_join(self, other: DataType) -> Result<DataType> {
        match (self, other) {
            (DataType::Int64, DataType::Int64) => Ok(DataType::Int64),
            (a, b) if a.is_numeric() && b.is_numeric() => Ok(DataType::Float64),
            (a, b) => Err(SkallaError::type_error(format!(
                "no common numeric type for {a} and {b}"
            ))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int64 => write!(f, "INT64"),
            DataType::Float64 => write!(f, "FLOAT64"),
            DataType::Utf8 => write!(f, "UTF8"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A dynamically typed scalar value.
///
/// `Value` implements a *total* order and consistent hashing so it can serve
/// as a grouping key:
///
/// * `Null` compares less than every non-null value and is equal to itself
///   (SQL three-valued logic is handled at the expression layer, not here).
/// * `Int` and `Float` compare numerically across variants; `NaN` sorts
///   greater than every other float and equal to itself.
/// * Values of different non-numeric kinds order by a fixed kind rank
///   (`Null < Bool < numeric < Utf8`), so mixed-type collections still sort
///   deterministically.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string. `Arc<str>` keeps row cloning cheap: base-result rows are
    /// cloned when shipped between coordinator and sites.
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Utf8),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as `i64`, failing on non-integers.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(SkallaError::type_error(format!(
                "expected INT64, got {other}"
            ))),
        }
    }

    /// Interpret as `f64`, coercing integers.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(SkallaError::type_error(format!(
                "expected numeric, got {other}"
            ))),
        }
    }

    /// Interpret as `bool`, failing on other kinds.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(SkallaError::type_error(format!(
                "expected BOOL, got {other}"
            ))),
        }
    }

    /// Interpret as `&str`, failing on other kinds.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(SkallaError::type_error(format!(
                "expected UTF8, got {other}"
            ))),
        }
    }

    /// Rank used to order values of different kinds; numeric variants share a
    /// rank so they compare by value.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

/// Total-order comparison of two floats: `NaN` equals itself and sorts
/// last; `-0.0` is identified with `0.0` (both equal `Int(0)`, so they
/// must equal each other for transitivity).
///
/// This is the float ordering used by [`Value`]'s `Ord`; compiled kernels
/// use it directly so comparisons over raw `f64` lanes agree bit-for-bit
/// with the interpreter.
pub fn total_cmp_f64(a: f64, b: f64) -> Ordering {
    let a = if a == 0.0 { 0.0 } else { a };
    let b = if b == 0.0 { 0.0 } else { b };
    a.total_cmp(&b)
}

/// Exact comparison of an `i64` with an `f64`, without the precision loss of
/// an `as f64` cast (which would make e.g. `i64::MAX` and `i64::MAX - 1`
/// both equal `2^63 as f64` and break `Ord` transitivity).
pub fn cmp_int_float(i: i64, f: f64) -> Ordering {
    if f.is_nan() {
        // NaN sorts after every integer.
        return Ordering::Less;
    }
    // 2^63 as f64 is exact.
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    if f >= TWO_63 {
        return Ordering::Less;
    }
    if f < -TWO_63 {
        return Ordering::Greater;
    }
    // Now -2^63 <= f < 2^63, so floor(f) fits in i64 exactly.
    let fl = f.floor();
    let fi = fl as i64;
    match i.cmp(&fi) {
        Ordering::Equal => {
            if f > fl {
                Ordering::Less
            } else {
                Ordering::Equal
            }
        }
        other => other,
    }
}

/// `Some(i)` if `f` is exactly the integer `i` (integral, in `i64` range).
pub fn exact_i64(f: f64) -> Option<i64> {
    const TWO_63: f64 = 9_223_372_036_854_775_808.0;
    if f.is_finite() && f.fract() == 0.0 && (-TWO_63..TWO_63).contains(&f) {
        Some(f as i64)
    } else {
        None
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_cmp_f64(*a, *b),
            (Int(a), Float(b)) => cmp_int_float(*a, *b),
            (Float(a), Int(b)) => cmp_int_float(*b, *a).reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => a.kind_rank().cmp(&b.kind_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Integers and floats must hash identically when they compare
            // equal. Numbers exactly representable as i64 hash via the
            // integer; all other floats hash via their (NaN-normalized) bits.
            // Under `cmp_int_float` an Int can only equal a Float whose exact
            // value is that integer, so the two paths never collide.
            Value::Int(i) => {
                state.write_u8(2);
                state.write_i64(*i);
            }
            Value::Float(f) => {
                if let Some(i) = exact_i64(*f) {
                    state.write_u8(2);
                    state.write_i64(i);
                } else {
                    state.write_u8(3);
                    state.write_u64(norm_f64_bits(*f));
                }
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

/// Canonicalize NaN payloads so every NaN hashes identically (all NaNs
/// compare equal under our `Ord`). Zeros never reach this function: both
/// `0.0` and `-0.0` take the exact-integer hash path.
fn norm_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_compare() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_eq!(hash_of(&Value::str("ab")), hash_of(&Value::str("ab")));
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [
            Value::Int(1),
            Value::Null,
            Value::str("a"),
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
    }

    #[test]
    fn nan_is_self_equal_and_sorts_last() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert!(Value::Float(f64::INFINITY) < nan);
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
    }

    #[test]
    fn zero_signs_identified() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(Value::Float(-0.0), Value::Int(0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Int(0)));
    }

    #[test]
    fn exact_int_float_boundary_comparison() {
        // i64::MAX < 2^63 exactly, even though the lossy cast would say equal.
        let two63 = 9_223_372_036_854_775_808.0f64;
        assert!(Value::Int(i64::MAX) < Value::Float(two63));
        assert!(Value::Float(two63) > Value::Int(i64::MAX));
        assert!(Value::Int(i64::MIN) == Value::Float(-two63));
        assert!(Value::Int(5) < Value::Float(5.5));
        assert!(Value::Float(4.5) < Value::Int(5));
    }

    #[test]
    fn large_int_unrepresentable_as_f64() {
        // i64::MAX is not exactly representable as f64; it must still be
        // self-equal and hash-stable.
        let v = Value::Int(i64::MAX);
        assert_eq!(v, v.clone());
        assert_eq!(hash_of(&v), hash_of(&Value::Int(i64::MAX)));
        assert_ne!(Value::Int(i64::MAX), Value::Float(i64::MAX as f64));
    }

    #[test]
    fn accessors_enforce_types() {
        assert!(Value::str("x").as_int().is_err());
        assert!(Value::Int(1).as_bool().is_err());
        assert_eq!(Value::Int(4).as_f64().unwrap(), 4.0);
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::str("y").as_str().unwrap(), "y");
    }

    #[test]
    fn numeric_join_rules() {
        assert_eq!(
            DataType::Int64.numeric_join(DataType::Int64).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            DataType::Int64.numeric_join(DataType::Float64).unwrap(),
            DataType::Float64
        );
        assert!(DataType::Utf8.numeric_join(DataType::Int64).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::str("hi").to_string(), "hi");
        assert_eq!(DataType::Utf8.to_string(), "UTF8");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
