#![warn(missing_docs)]

//! # skalla-types
//!
//! Foundational data model for the Skalla distributed OLAP system: dynamically
//! typed [`Value`]s, [`Schema`]s describing relations, row-oriented
//! [`Relation`]s used for base-values relations and query results, and the
//! shared [`SkallaError`] type.
//!
//! Skalla (Akinde, Böhlen, Johnson, Lakshmanan, Srivastava; EDBT 2002)
//! evaluates OLAP queries expressed as GMDJ expressions over a distributed
//! data warehouse. Every crate in this workspace builds on the types defined
//! here.
//!
//! ## Design notes
//!
//! * [`Value`] is a small tagged union with a *total* order (`Null` sorts
//!   first, integers and floats compare numerically across the two variants)
//!   so that values can be used directly as grouping keys in hash maps and
//!   sorted outputs.
//! * Detail data is stored columnar in `skalla-storage`; [`Relation`] here is
//!   row-oriented because base-result structures are small (bounded by the
//!   query result size, per Theorem 2 of the paper) and are shipped, merged,
//!   and indexed row-at-a-time by the coordinator.

pub mod error;
pub mod relation;
pub mod schema;
pub mod value;

pub use error::{Result, SkallaError};
pub use relation::Relation;
pub use schema::{Field, Schema};
pub use value::{cmp_int_float, exact_i64, total_cmp_f64, DataType, Value};

/// A single row of [`Value`]s.
///
/// Rows do not carry their schema; pair them with a [`Schema`] from the
/// enclosing [`Relation`] or table.
pub type Row = Vec<Value>;
