//! Relation schemas: ordered, named, typed fields.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Result, SkallaError};
use crate::value::DataType;

/// A named, typed column in a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name. Names are case-sensitive and unique within a schema.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.dtype)
    }
}

/// An ordered list of uniquely named [`Field`]s, with O(1) lookup by name.
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl Eq for Schema {}

impl Schema {
    /// Build a schema from fields, failing on duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(SkallaError::schema(format!(
                    "duplicate column name `{}`",
                    f.name
                )));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Build a schema from `(name, type)` pairs, failing on duplicates.
    pub fn from_pairs<I, S>(pairs: I) -> Result<Schema>
    where
        I: IntoIterator<Item = (S, DataType)>,
        S: Into<String>,
    {
        Schema::new(pairs.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    /// The empty schema.
    pub fn empty() -> Schema {
        Schema {
            fields: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the field named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| SkallaError::not_found(format!("column `{name}`")))
    }

    /// `true` if a field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Field looked up by name.
    pub fn field_by_name(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// A new schema consisting of this schema's fields followed by `extra`,
    /// failing on name collisions.
    pub fn extended(&self, extra: &[Field]) -> Result<Schema> {
        let mut fields = self.fields.clone();
        fields.extend_from_slice(extra);
        Schema::new(fields)
    }

    /// A new schema with only the fields at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let fields = indices
            .iter()
            .map(|&i| {
                self.fields
                    .get(i)
                    .cloned()
                    .ok_or_else(|| SkallaError::schema(format!("column index {i} out of range")))
            })
            .collect::<Result<Vec<_>>>()?;
        Schema::new(fields)
    }

    /// Resolve a list of column names to their indices.
    pub fn indices_of(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Wrap in an `Arc` (the common way schemas are shared between tables,
    /// plans, and messages).
    pub fn into_arc(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_pairs([
            ("a", DataType::Int64),
            ("b", DataType::Utf8),
            ("c", DataType::Float64),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = abc();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field(2).name, "c");
        assert!(s.index_of("zz").is_err());
        assert!(s.contains("a"));
        assert!(!s.contains("zz"));
        assert_eq!(s.field_by_name("c").unwrap().dtype, DataType::Float64);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::from_pairs([("a", DataType::Int64), ("a", DataType::Utf8)]);
        assert!(matches!(r, Err(SkallaError::Schema(_))));
    }

    #[test]
    fn extended_appends_and_checks_collisions() {
        let s = abc();
        let s2 = s.extended(&[Field::new("d", DataType::Bool)]).unwrap();
        assert_eq!(s2.len(), 4);
        assert_eq!(s2.index_of("d").unwrap(), 3);
        assert!(s.extended(&[Field::new("a", DataType::Bool)]).is_err());
    }

    #[test]
    fn project_selects_and_reorders() {
        let s = abc();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(abc().to_string(), "(a INT64, b UTF8, c FLOAT64)");
        assert_eq!(Schema::empty().to_string(), "()");
    }

    #[test]
    fn indices_of_maps_names() {
        let s = abc();
        assert_eq!(s.indices_of(&["c", "a"]).unwrap(), vec![2, 0]);
        assert!(s.indices_of(&["c", "nope"]).is_err());
    }

    #[test]
    fn schema_equality_ignores_lookup_map() {
        assert_eq!(abc(), abc());
        assert!(Schema::empty().is_empty());
    }
}
