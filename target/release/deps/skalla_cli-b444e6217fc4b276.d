/root/repo/target/release/deps/skalla_cli-b444e6217fc4b276.d: crates/cli/src/lib.rs

/root/repo/target/release/deps/libskalla_cli-b444e6217fc4b276.rlib: crates/cli/src/lib.rs

/root/repo/target/release/deps/libskalla_cli-b444e6217fc4b276.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
