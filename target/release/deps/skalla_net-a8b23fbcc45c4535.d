/root/repo/target/release/deps/skalla_net-a8b23fbcc45c4535.d: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libskalla_net-a8b23fbcc45c4535.rlib: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libskalla_net-a8b23fbcc45c4535.rmeta: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/sim.rs:
crates/net/src/wire.rs:
