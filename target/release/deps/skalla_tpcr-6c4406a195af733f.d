/root/repo/target/release/deps/skalla_tpcr-6c4406a195af733f.d: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

/root/repo/target/release/deps/libskalla_tpcr-6c4406a195af733f.rlib: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

/root/repo/target/release/deps/libskalla_tpcr-6c4406a195af733f.rmeta: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

crates/tpcr/src/lib.rs:
crates/tpcr/src/io.rs:
