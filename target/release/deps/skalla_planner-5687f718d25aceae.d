/root/repo/target/release/deps/skalla_planner-5687f718d25aceae.d: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

/root/repo/target/release/deps/libskalla_planner-5687f718d25aceae.rlib: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

/root/repo/target/release/deps/libskalla_planner-5687f718d25aceae.rmeta: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

crates/planner/src/lib.rs:
crates/planner/src/cost.rs:
crates/planner/src/egil.rs:
crates/planner/src/info.rs:
crates/planner/src/parser.rs:
