/root/repo/target/release/deps/skalla-e1466fb84695aaf9.d: crates/cli/src/main.rs

/root/repo/target/release/deps/skalla-e1466fb84695aaf9: crates/cli/src/main.rs

crates/cli/src/main.rs:
