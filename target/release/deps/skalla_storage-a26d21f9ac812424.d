/root/repo/target/release/deps/skalla_storage-a26d21f9ac812424.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs

/root/repo/target/release/deps/libskalla_storage-a26d21f9ac812424.rlib: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs

/root/repo/target/release/deps/libskalla_storage-a26d21f9ac812424.rmeta: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/column.rs:
crates/storage/src/index.rs:
crates/storage/src/partition.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
