/root/repo/target/release/deps/bytes-47cc0cdbafbbe04d.d: .devstubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-47cc0cdbafbbe04d.rlib: .devstubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-47cc0cdbafbbe04d.rmeta: .devstubs/bytes/src/lib.rs

.devstubs/bytes/src/lib.rs:
