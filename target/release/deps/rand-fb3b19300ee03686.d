/root/repo/target/release/deps/rand-fb3b19300ee03686.d: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-fb3b19300ee03686.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-fb3b19300ee03686.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
