/root/repo/target/release/deps/parking_lot-5e9871a68c2e704f.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-5e9871a68c2e704f.rlib: .devstubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-5e9871a68c2e704f.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
