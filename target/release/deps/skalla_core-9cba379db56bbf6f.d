/root/repo/target/release/deps/skalla_core-9cba379db56bbf6f.d: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs

/root/repo/target/release/deps/libskalla_core-9cba379db56bbf6f.rlib: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs

/root/repo/target/release/deps/libskalla_core-9cba379db56bbf6f.rmeta: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs

crates/core/src/lib.rs:
crates/core/src/baseresult.rs:
crates/core/src/message.rs:
crates/core/src/metrics.rs:
crates/core/src/plan.rs:
crates/core/src/site.rs:
crates/core/src/tree.rs:
crates/core/src/warehouse.rs:
