/root/repo/target/release/deps/skalla_types-34a4a81e351b4999.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

/root/repo/target/release/deps/libskalla_types-34a4a81e351b4999.rlib: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

/root/repo/target/release/deps/libskalla_types-34a4a81e351b4999.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/relation.rs:
crates/types/src/schema.rs:
crates/types/src/value.rs:
