/root/repo/target/release/deps/skalla_expr-1354b40658c90eb3.d: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs

/root/repo/target/release/deps/libskalla_expr-1354b40658c90eb3.rlib: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs

/root/repo/target/release/deps/libskalla_expr-1354b40658c90eb3.rmeta: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs

crates/expr/src/lib.rs:
crates/expr/src/analysis.rs:
crates/expr/src/builder.rs:
crates/expr/src/eval.rs:
crates/expr/src/expr.rs:
crates/expr/src/interval.rs:
crates/expr/src/linear.rs:
crates/expr/src/reduction.rs:
crates/expr/src/simplify.rs:
crates/expr/src/typecheck.rs:
