/root/repo/target/release/deps/skalla-e0ec119127348a14.d: src/lib.rs

/root/repo/target/release/deps/libskalla-e0ec119127348a14.rlib: src/lib.rs

/root/repo/target/release/deps/libskalla-e0ec119127348a14.rmeta: src/lib.rs

src/lib.rs:
