/root/repo/target/release/deps/skalla_gmdj-b13f179b827aa112.d: crates/gmdj/src/lib.rs crates/gmdj/src/agg.rs crates/gmdj/src/centralized.rs crates/gmdj/src/coalesce.rs crates/gmdj/src/eval.rs crates/gmdj/src/olap.rs crates/gmdj/src/op.rs crates/gmdj/src/sql.rs

/root/repo/target/release/deps/libskalla_gmdj-b13f179b827aa112.rlib: crates/gmdj/src/lib.rs crates/gmdj/src/agg.rs crates/gmdj/src/centralized.rs crates/gmdj/src/coalesce.rs crates/gmdj/src/eval.rs crates/gmdj/src/olap.rs crates/gmdj/src/op.rs crates/gmdj/src/sql.rs

/root/repo/target/release/deps/libskalla_gmdj-b13f179b827aa112.rmeta: crates/gmdj/src/lib.rs crates/gmdj/src/agg.rs crates/gmdj/src/centralized.rs crates/gmdj/src/coalesce.rs crates/gmdj/src/eval.rs crates/gmdj/src/olap.rs crates/gmdj/src/op.rs crates/gmdj/src/sql.rs

crates/gmdj/src/lib.rs:
crates/gmdj/src/agg.rs:
crates/gmdj/src/centralized.rs:
crates/gmdj/src/coalesce.rs:
crates/gmdj/src/eval.rs:
crates/gmdj/src/olap.rs:
crates/gmdj/src/op.rs:
crates/gmdj/src/sql.rs:
