/root/repo/target/release/deps/crossbeam-9163e11ec7978d5b.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-9163e11ec7978d5b.rlib: .devstubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-9163e11ec7978d5b.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
