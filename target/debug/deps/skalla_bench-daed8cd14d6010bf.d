/root/repo/target/debug/deps/skalla_bench-daed8cd14d6010bf.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs

/root/repo/target/debug/deps/libskalla_bench-daed8cd14d6010bf.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs

/root/repo/target/debug/deps/libskalla_bench-daed8cd14d6010bf.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/queries.rs:
