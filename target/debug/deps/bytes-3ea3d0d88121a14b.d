/root/repo/target/debug/deps/bytes-3ea3d0d88121a14b.d: .devstubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3ea3d0d88121a14b.rlib: .devstubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3ea3d0d88121a14b.rmeta: .devstubs/bytes/src/lib.rs

.devstubs/bytes/src/lib.rs:
