/root/repo/target/debug/deps/skalla_tpcr-1255ab8b132c8b48.d: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_tpcr-1255ab8b132c8b48.rmeta: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs Cargo.toml

crates/tpcr/src/lib.rs:
crates/tpcr/src/io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
