/root/repo/target/debug/deps/skalla_tpcr-7ac14c6d128b8f6e.d: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

/root/repo/target/debug/deps/libskalla_tpcr-7ac14c6d128b8f6e.rlib: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

/root/repo/target/debug/deps/libskalla_tpcr-7ac14c6d128b8f6e.rmeta: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

crates/tpcr/src/lib.rs:
crates/tpcr/src/io.rs:
