/root/repo/target/debug/deps/skalla_cli-dc8eb91ac2ff0e3c.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libskalla_cli-dc8eb91ac2ff0e3c.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
