/root/repo/target/debug/deps/fault_injection-39ee7c379f36eb99.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-39ee7c379f36eb99.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
