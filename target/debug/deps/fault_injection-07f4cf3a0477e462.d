/root/repo/target/debug/deps/fault_injection-07f4cf3a0477e462.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-07f4cf3a0477e462: tests/fault_injection.rs

tests/fault_injection.rs:
