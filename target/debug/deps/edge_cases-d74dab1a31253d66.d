/root/repo/target/debug/deps/edge_cases-d74dab1a31253d66.d: tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-d74dab1a31253d66.rmeta: tests/edge_cases.rs Cargo.toml

tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
