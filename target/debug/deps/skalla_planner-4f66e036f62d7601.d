/root/repo/target/debug/deps/skalla_planner-4f66e036f62d7601.d: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_planner-4f66e036f62d7601.rmeta: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs Cargo.toml

crates/planner/src/lib.rs:
crates/planner/src/cost.rs:
crates/planner/src/egil.rs:
crates/planner/src/info.rs:
crates/planner/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
