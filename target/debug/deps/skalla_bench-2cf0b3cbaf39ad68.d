/root/repo/target/debug/deps/skalla_bench-2cf0b3cbaf39ad68.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_bench-2cf0b3cbaf39ad68.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
