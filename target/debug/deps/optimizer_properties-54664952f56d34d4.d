/root/repo/target/debug/deps/optimizer_properties-54664952f56d34d4.d: tests/optimizer_properties.rs Cargo.toml

/root/repo/target/debug/deps/liboptimizer_properties-54664952f56d34d4.rmeta: tests/optimizer_properties.rs Cargo.toml

tests/optimizer_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
