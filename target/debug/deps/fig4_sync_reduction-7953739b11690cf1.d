/root/repo/target/debug/deps/fig4_sync_reduction-7953739b11690cf1.d: crates/bench/src/bin/fig4_sync_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_sync_reduction-7953739b11690cf1.rmeta: crates/bench/src/bin/fig4_sync_reduction.rs Cargo.toml

crates/bench/src/bin/fig4_sync_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
