/root/repo/target/debug/deps/skalla-a2ea6db20be17c8a.d: src/lib.rs

/root/repo/target/debug/deps/libskalla-a2ea6db20be17c8a.rlib: src/lib.rs

/root/repo/target/debug/deps/libskalla-a2ea6db20be17c8a.rmeta: src/lib.rs

src/lib.rs:
