/root/repo/target/debug/deps/skalla-38860620d60c5ccd.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/skalla-38860620d60c5ccd: crates/cli/src/main.rs

crates/cli/src/main.rs:
