/root/repo/target/debug/deps/wire_format-bdbacee1940e2dd5.d: crates/bench/benches/wire_format.rs Cargo.toml

/root/repo/target/debug/deps/libwire_format-bdbacee1940e2dd5.rmeta: crates/bench/benches/wire_format.rs Cargo.toml

crates/bench/benches/wire_format.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
