/root/repo/target/debug/deps/crossbeam-12e80758a3bfc45a.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-12e80758a3bfc45a.rlib: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-12e80758a3bfc45a.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
