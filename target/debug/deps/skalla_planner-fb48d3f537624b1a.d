/root/repo/target/debug/deps/skalla_planner-fb48d3f537624b1a.d: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_planner-fb48d3f537624b1a.rmeta: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs Cargo.toml

crates/planner/src/lib.rs:
crates/planner/src/cost.rs:
crates/planner/src/egil.rs:
crates/planner/src/info.rs:
crates/planner/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
