/root/repo/target/debug/deps/skalla_core-072254416b03d06c.d: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_core-072254416b03d06c.rmeta: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baseresult.rs:
crates/core/src/message.rs:
crates/core/src/metrics.rs:
crates/core/src/plan.rs:
crates/core/src/site.rs:
crates/core/src/tree.rs:
crates/core/src/warehouse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
