/root/repo/target/debug/deps/skalla_storage-5eb3c2e42fa39f01.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_storage-5eb3c2e42fa39f01.rmeta: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/column.rs:
crates/storage/src/index.rs:
crates/storage/src/partition.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
