/root/repo/target/debug/deps/skalla_types-cc75657c40c5523a.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

/root/repo/target/debug/deps/libskalla_types-cc75657c40c5523a.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/relation.rs:
crates/types/src/schema.rs:
crates/types/src/value.rs:
