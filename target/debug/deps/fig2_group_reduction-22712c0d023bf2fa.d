/root/repo/target/debug/deps/fig2_group_reduction-22712c0d023bf2fa.d: crates/bench/src/bin/fig2_group_reduction.rs

/root/repo/target/debug/deps/fig2_group_reduction-22712c0d023bf2fa: crates/bench/src/bin/fig2_group_reduction.rs

crates/bench/src/bin/fig2_group_reduction.rs:
