/root/repo/target/debug/deps/skalla_cli-67ab0644aeb5170c.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/skalla_cli-67ab0644aeb5170c: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
