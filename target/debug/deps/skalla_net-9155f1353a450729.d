/root/repo/target/debug/deps/skalla_net-9155f1353a450729.d: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libskalla_net-9155f1353a450729.rlib: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libskalla_net-9155f1353a450729.rmeta: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/sim.rs:
crates/net/src/wire.rs:
