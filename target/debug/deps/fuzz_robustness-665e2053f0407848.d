/root/repo/target/debug/deps/fuzz_robustness-665e2053f0407848.d: tests/fuzz_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_robustness-665e2053f0407848.rmeta: tests/fuzz_robustness.rs Cargo.toml

tests/fuzz_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
