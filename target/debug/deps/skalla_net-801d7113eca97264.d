/root/repo/target/debug/deps/skalla_net-801d7113eca97264.d: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_net-801d7113eca97264.rmeta: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/sim.rs:
crates/net/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
