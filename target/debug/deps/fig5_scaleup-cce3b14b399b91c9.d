/root/repo/target/debug/deps/fig5_scaleup-cce3b14b399b91c9.d: crates/bench/src/bin/fig5_scaleup.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_scaleup-cce3b14b399b91c9.rmeta: crates/bench/src/bin/fig5_scaleup.rs Cargo.toml

crates/bench/src/bin/fig5_scaleup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
