/root/repo/target/debug/deps/fig4_sync_reduction-68af0f1b3b3c4747.d: crates/bench/src/bin/fig4_sync_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_sync_reduction-68af0f1b3b3c4747.rmeta: crates/bench/src/bin/fig4_sync_reduction.rs Cargo.toml

crates/bench/src/bin/fig4_sync_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
