/root/repo/target/debug/deps/skalla_expr-e1f68ffd11c38466.d: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs

/root/repo/target/debug/deps/libskalla_expr-e1f68ffd11c38466.rlib: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs

/root/repo/target/debug/deps/libskalla_expr-e1f68ffd11c38466.rmeta: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs

crates/expr/src/lib.rs:
crates/expr/src/analysis.rs:
crates/expr/src/builder.rs:
crates/expr/src/eval.rs:
crates/expr/src/expr.rs:
crates/expr/src/interval.rs:
crates/expr/src/linear.rs:
crates/expr/src/reduction.rs:
crates/expr/src/simplify.rs:
crates/expr/src/typecheck.rs:
