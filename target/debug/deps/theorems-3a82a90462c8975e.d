/root/repo/target/debug/deps/theorems-3a82a90462c8975e.d: tests/theorems.rs Cargo.toml

/root/repo/target/debug/deps/libtheorems-3a82a90462c8975e.rmeta: tests/theorems.rs Cargo.toml

tests/theorems.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
