/root/repo/target/debug/deps/crossbeam-ea89cb01adb49f0b.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-ea89cb01adb49f0b.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
