/root/repo/target/debug/deps/theorems-85ce10b3dd787787.d: tests/theorems.rs

/root/repo/target/debug/deps/theorems-85ce10b3dd787787: tests/theorems.rs

tests/theorems.rs:
