/root/repo/target/debug/deps/skalla_types-b40e69f4851877bd.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

/root/repo/target/debug/deps/libskalla_types-b40e69f4851877bd.rlib: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

/root/repo/target/debug/deps/libskalla_types-b40e69f4851877bd.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/relation.rs:
crates/types/src/schema.rs:
crates/types/src/value.rs:
