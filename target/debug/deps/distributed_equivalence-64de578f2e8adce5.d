/root/repo/target/debug/deps/distributed_equivalence-64de578f2e8adce5.d: tests/distributed_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed_equivalence-64de578f2e8adce5.rmeta: tests/distributed_equivalence.rs Cargo.toml

tests/distributed_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
