/root/repo/target/debug/deps/skalla_core-32ee9f42d1e3000a.d: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs

/root/repo/target/debug/deps/libskalla_core-32ee9f42d1e3000a.rmeta: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs

crates/core/src/lib.rs:
crates/core/src/baseresult.rs:
crates/core/src/message.rs:
crates/core/src/metrics.rs:
crates/core/src/plan.rs:
crates/core/src/site.rs:
crates/core/src/tree.rs:
crates/core/src/warehouse.rs:
