/root/repo/target/debug/deps/distributed_query-d0c9bd0e0ef915e0.d: crates/bench/benches/distributed_query.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed_query-d0c9bd0e0ef915e0.rmeta: crates/bench/benches/distributed_query.rs Cargo.toml

crates/bench/benches/distributed_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
