/root/repo/target/debug/deps/fig5_scaleup-f17c2358ce4bff69.d: crates/bench/src/bin/fig5_scaleup.rs

/root/repo/target/debug/deps/fig5_scaleup-f17c2358ce4bff69: crates/bench/src/bin/fig5_scaleup.rs

crates/bench/src/bin/fig5_scaleup.rs:
