/root/repo/target/debug/deps/skalla_storage-404eea488f6b8aaf.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs

/root/repo/target/debug/deps/skalla_storage-404eea488f6b8aaf: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/column.rs:
crates/storage/src/index.rs:
crates/storage/src/partition.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
