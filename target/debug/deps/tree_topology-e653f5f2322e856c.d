/root/repo/target/debug/deps/tree_topology-e653f5f2322e856c.d: tests/tree_topology.rs

/root/repo/target/debug/deps/tree_topology-e653f5f2322e856c: tests/tree_topology.rs

tests/tree_topology.rs:
