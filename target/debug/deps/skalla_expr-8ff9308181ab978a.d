/root/repo/target/debug/deps/skalla_expr-8ff9308181ab978a.d: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs

/root/repo/target/debug/deps/libskalla_expr-8ff9308181ab978a.rmeta: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs

crates/expr/src/lib.rs:
crates/expr/src/analysis.rs:
crates/expr/src/builder.rs:
crates/expr/src/eval.rs:
crates/expr/src/expr.rs:
crates/expr/src/interval.rs:
crates/expr/src/linear.rs:
crates/expr/src/reduction.rs:
crates/expr/src/simplify.rs:
crates/expr/src/typecheck.rs:
