/root/repo/target/debug/deps/failures-674acc1473dd8cb7.d: tests/failures.rs Cargo.toml

/root/repo/target/debug/deps/libfailures-674acc1473dd8cb7.rmeta: tests/failures.rs Cargo.toml

tests/failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
