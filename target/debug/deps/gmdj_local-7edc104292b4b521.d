/root/repo/target/debug/deps/gmdj_local-7edc104292b4b521.d: crates/bench/benches/gmdj_local.rs Cargo.toml

/root/repo/target/debug/deps/libgmdj_local-7edc104292b4b521.rmeta: crates/bench/benches/gmdj_local.rs Cargo.toml

crates/bench/benches/gmdj_local.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
