/root/repo/target/debug/deps/proptest-39bfc2f6bb733b53.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-39bfc2f6bb733b53.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
