/root/repo/target/debug/deps/skalla_bench-b2bb60e05ab73eb1.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs

/root/repo/target/debug/deps/skalla_bench-b2bb60e05ab73eb1: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/queries.rs:
