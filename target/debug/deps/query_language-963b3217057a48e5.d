/root/repo/target/debug/deps/query_language-963b3217057a48e5.d: tests/query_language.rs

/root/repo/target/debug/deps/query_language-963b3217057a48e5: tests/query_language.rs

tests/query_language.rs:
