/root/repo/target/debug/deps/failures-7e071f6cead85852.d: tests/failures.rs

/root/repo/target/debug/deps/failures-7e071f6cead85852: tests/failures.rs

tests/failures.rs:
