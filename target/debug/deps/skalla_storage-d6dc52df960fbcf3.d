/root/repo/target/debug/deps/skalla_storage-d6dc52df960fbcf3.d: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs

/root/repo/target/debug/deps/libskalla_storage-d6dc52df960fbcf3.rlib: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs

/root/repo/target/debug/deps/libskalla_storage-d6dc52df960fbcf3.rmeta: crates/storage/src/lib.rs crates/storage/src/catalog.rs crates/storage/src/column.rs crates/storage/src/index.rs crates/storage/src/partition.rs crates/storage/src/stats.rs crates/storage/src/table.rs

crates/storage/src/lib.rs:
crates/storage/src/catalog.rs:
crates/storage/src/column.rs:
crates/storage/src/index.rs:
crates/storage/src/partition.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
