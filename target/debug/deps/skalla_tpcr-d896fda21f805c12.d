/root/repo/target/debug/deps/skalla_tpcr-d896fda21f805c12.d: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

/root/repo/target/debug/deps/skalla_tpcr-d896fda21f805c12: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

crates/tpcr/src/lib.rs:
crates/tpcr/src/io.rs:
