/root/repo/target/debug/deps/fig5_scaleup-593a2914b12edd7b.d: crates/bench/src/bin/fig5_scaleup.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_scaleup-593a2914b12edd7b.rmeta: crates/bench/src/bin/fig5_scaleup.rs Cargo.toml

crates/bench/src/bin/fig5_scaleup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
