/root/repo/target/debug/deps/transfer_bound-5dc575b34102792b.d: crates/bench/src/bin/transfer_bound.rs Cargo.toml

/root/repo/target/debug/deps/libtransfer_bound-5dc575b34102792b.rmeta: crates/bench/src/bin/transfer_bound.rs Cargo.toml

crates/bench/src/bin/transfer_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
