/root/repo/target/debug/deps/skalla_core-7605eb6921c923db.d: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs

/root/repo/target/debug/deps/skalla_core-7605eb6921c923db: crates/core/src/lib.rs crates/core/src/baseresult.rs crates/core/src/message.rs crates/core/src/metrics.rs crates/core/src/plan.rs crates/core/src/site.rs crates/core/src/tree.rs crates/core/src/warehouse.rs

crates/core/src/lib.rs:
crates/core/src/baseresult.rs:
crates/core/src/message.rs:
crates/core/src/metrics.rs:
crates/core/src/plan.rs:
crates/core/src/site.rs:
crates/core/src/tree.rs:
crates/core/src/warehouse.rs:
