/root/repo/target/debug/deps/row_blocking-29f5c6de61c8c732.d: tests/row_blocking.rs Cargo.toml

/root/repo/target/debug/deps/librow_blocking-29f5c6de61c8c732.rmeta: tests/row_blocking.rs Cargo.toml

tests/row_blocking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
