/root/repo/target/debug/deps/skalla_cli-410b2d7fc3ea98b7.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libskalla_cli-410b2d7fc3ea98b7.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libskalla_cli-410b2d7fc3ea98b7.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
