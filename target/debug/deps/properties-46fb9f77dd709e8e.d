/root/repo/target/debug/deps/properties-46fb9f77dd709e8e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-46fb9f77dd709e8e: tests/properties.rs

tests/properties.rs:
