/root/repo/target/debug/deps/topology_ablation-d9629c0cf0ed4485.d: crates/bench/src/bin/topology_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtopology_ablation-d9629c0cf0ed4485.rmeta: crates/bench/src/bin/topology_ablation.rs Cargo.toml

crates/bench/src/bin/topology_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
