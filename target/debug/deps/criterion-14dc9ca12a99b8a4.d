/root/repo/target/debug/deps/criterion-14dc9ca12a99b8a4.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-14dc9ca12a99b8a4.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
