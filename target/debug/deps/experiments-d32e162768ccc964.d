/root/repo/target/debug/deps/experiments-d32e162768ccc964.d: tests/experiments.rs

/root/repo/target/debug/deps/experiments-d32e162768ccc964: tests/experiments.rs

tests/experiments.rs:
