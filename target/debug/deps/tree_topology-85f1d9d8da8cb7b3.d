/root/repo/target/debug/deps/tree_topology-85f1d9d8da8cb7b3.d: tests/tree_topology.rs Cargo.toml

/root/repo/target/debug/deps/libtree_topology-85f1d9d8da8cb7b3.rmeta: tests/tree_topology.rs Cargo.toml

tests/tree_topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
