/root/repo/target/debug/deps/skalla_planner-7ed75a32e25354b8.d: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

/root/repo/target/debug/deps/skalla_planner-7ed75a32e25354b8: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

crates/planner/src/lib.rs:
crates/planner/src/cost.rs:
crates/planner/src/egil.rs:
crates/planner/src/info.rs:
crates/planner/src/parser.rs:
