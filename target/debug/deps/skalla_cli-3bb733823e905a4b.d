/root/repo/target/debug/deps/skalla_cli-3bb733823e905a4b.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_cli-3bb733823e905a4b.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
