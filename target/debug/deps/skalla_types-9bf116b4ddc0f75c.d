/root/repo/target/debug/deps/skalla_types-9bf116b4ddc0f75c.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_types-9bf116b4ddc0f75c.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/relation.rs:
crates/types/src/schema.rs:
crates/types/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
