/root/repo/target/debug/deps/fig3_coalescing-1ee857be2dfd8d64.d: crates/bench/src/bin/fig3_coalescing.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_coalescing-1ee857be2dfd8d64.rmeta: crates/bench/src/bin/fig3_coalescing.rs Cargo.toml

crates/bench/src/bin/fig3_coalescing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
