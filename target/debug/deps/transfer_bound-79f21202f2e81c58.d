/root/repo/target/debug/deps/transfer_bound-79f21202f2e81c58.d: crates/bench/src/bin/transfer_bound.rs Cargo.toml

/root/repo/target/debug/deps/libtransfer_bound-79f21202f2e81c58.rmeta: crates/bench/src/bin/transfer_bound.rs Cargo.toml

crates/bench/src/bin/transfer_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
