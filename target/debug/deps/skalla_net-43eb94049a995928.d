/root/repo/target/debug/deps/skalla_net-43eb94049a995928.d: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/skalla_net-43eb94049a995928: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/sim.rs:
crates/net/src/wire.rs:
