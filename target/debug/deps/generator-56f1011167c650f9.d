/root/repo/target/debug/deps/generator-56f1011167c650f9.d: crates/bench/benches/generator.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator-56f1011167c650f9.rmeta: crates/bench/benches/generator.rs Cargo.toml

crates/bench/benches/generator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
