/root/repo/target/debug/deps/row_blocking-f63177b96cf665d7.d: tests/row_blocking.rs

/root/repo/target/debug/deps/row_blocking-f63177b96cf665d7: tests/row_blocking.rs

tests/row_blocking.rs:
