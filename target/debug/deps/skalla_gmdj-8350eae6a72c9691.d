/root/repo/target/debug/deps/skalla_gmdj-8350eae6a72c9691.d: crates/gmdj/src/lib.rs crates/gmdj/src/agg.rs crates/gmdj/src/centralized.rs crates/gmdj/src/coalesce.rs crates/gmdj/src/eval.rs crates/gmdj/src/olap.rs crates/gmdj/src/op.rs crates/gmdj/src/sql.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_gmdj-8350eae6a72c9691.rmeta: crates/gmdj/src/lib.rs crates/gmdj/src/agg.rs crates/gmdj/src/centralized.rs crates/gmdj/src/coalesce.rs crates/gmdj/src/eval.rs crates/gmdj/src/olap.rs crates/gmdj/src/op.rs crates/gmdj/src/sql.rs Cargo.toml

crates/gmdj/src/lib.rs:
crates/gmdj/src/agg.rs:
crates/gmdj/src/centralized.rs:
crates/gmdj/src/coalesce.rs:
crates/gmdj/src/eval.rs:
crates/gmdj/src/olap.rs:
crates/gmdj/src/op.rs:
crates/gmdj/src/sql.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
