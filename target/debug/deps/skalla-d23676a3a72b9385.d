/root/repo/target/debug/deps/skalla-d23676a3a72b9385.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libskalla-d23676a3a72b9385.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
