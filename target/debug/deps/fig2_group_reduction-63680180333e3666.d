/root/repo/target/debug/deps/fig2_group_reduction-63680180333e3666.d: crates/bench/src/bin/fig2_group_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_group_reduction-63680180333e3666.rmeta: crates/bench/src/bin/fig2_group_reduction.rs Cargo.toml

crates/bench/src/bin/fig2_group_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
