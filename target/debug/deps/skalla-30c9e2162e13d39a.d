/root/repo/target/debug/deps/skalla-30c9e2162e13d39a.d: src/lib.rs

/root/repo/target/debug/deps/skalla-30c9e2162e13d39a: src/lib.rs

src/lib.rs:
