/root/repo/target/debug/deps/skalla_net-f5f52eb46cd39bed.d: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libskalla_net-f5f52eb46cd39bed.rmeta: crates/net/src/lib.rs crates/net/src/cost.rs crates/net/src/fault.rs crates/net/src/sim.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/cost.rs:
crates/net/src/fault.rs:
crates/net/src/sim.rs:
crates/net/src/wire.rs:
