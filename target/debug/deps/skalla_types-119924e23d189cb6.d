/root/repo/target/debug/deps/skalla_types-119924e23d189cb6.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_types-119924e23d189cb6.rmeta: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs Cargo.toml

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/relation.rs:
crates/types/src/schema.rs:
crates/types/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
