/root/repo/target/debug/deps/skalla-b952a313b0e8536b.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/skalla-b952a313b0e8536b: crates/cli/src/main.rs

crates/cli/src/main.rs:
