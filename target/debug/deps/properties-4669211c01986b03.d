/root/repo/target/debug/deps/properties-4669211c01986b03.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-4669211c01986b03.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
