/root/repo/target/debug/deps/fig3_coalescing-77d8dfdcc6f6bdfe.d: crates/bench/src/bin/fig3_coalescing.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_coalescing-77d8dfdcc6f6bdfe.rmeta: crates/bench/src/bin/fig3_coalescing.rs Cargo.toml

crates/bench/src/bin/fig3_coalescing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
