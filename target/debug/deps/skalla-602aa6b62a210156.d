/root/repo/target/debug/deps/skalla-602aa6b62a210156.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libskalla-602aa6b62a210156.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
