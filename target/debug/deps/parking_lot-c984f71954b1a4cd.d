/root/repo/target/debug/deps/parking_lot-c984f71954b1a4cd.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c984f71954b1a4cd.rlib: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-c984f71954b1a4cd.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
