/root/repo/target/debug/deps/optimizer_properties-309113a14b7fa1c0.d: tests/optimizer_properties.rs

/root/repo/target/debug/deps/optimizer_properties-309113a14b7fa1c0: tests/optimizer_properties.rs

tests/optimizer_properties.rs:
