/root/repo/target/debug/deps/topology_ablation-27c618b7328737c9.d: crates/bench/src/bin/topology_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libtopology_ablation-27c618b7328737c9.rmeta: crates/bench/src/bin/topology_ablation.rs Cargo.toml

crates/bench/src/bin/topology_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
