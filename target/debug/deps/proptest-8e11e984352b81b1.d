/root/repo/target/debug/deps/proptest-8e11e984352b81b1.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8e11e984352b81b1.rlib: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-8e11e984352b81b1.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
