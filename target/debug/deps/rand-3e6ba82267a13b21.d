/root/repo/target/debug/deps/rand-3e6ba82267a13b21.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-3e6ba82267a13b21.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
