/root/repo/target/debug/deps/synchronization-1adaa6e8f51cb89f.d: crates/bench/benches/synchronization.rs Cargo.toml

/root/repo/target/debug/deps/libsynchronization-1adaa6e8f51cb89f.rmeta: crates/bench/benches/synchronization.rs Cargo.toml

crates/bench/benches/synchronization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
