/root/repo/target/debug/deps/skalla_types-c2813a37190350d6.d: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

/root/repo/target/debug/deps/skalla_types-c2813a37190350d6: crates/types/src/lib.rs crates/types/src/error.rs crates/types/src/relation.rs crates/types/src/schema.rs crates/types/src/value.rs

crates/types/src/lib.rs:
crates/types/src/error.rs:
crates/types/src/relation.rs:
crates/types/src/schema.rs:
crates/types/src/value.rs:
