/root/repo/target/debug/deps/fig3_coalescing-4397f9362b29af82.d: crates/bench/src/bin/fig3_coalescing.rs

/root/repo/target/debug/deps/fig3_coalescing-4397f9362b29af82: crates/bench/src/bin/fig3_coalescing.rs

crates/bench/src/bin/fig3_coalescing.rs:
