/root/repo/target/debug/deps/distributed_equivalence-d304e51410b86f30.d: tests/distributed_equivalence.rs

/root/repo/target/debug/deps/distributed_equivalence-d304e51410b86f30: tests/distributed_equivalence.rs

tests/distributed_equivalence.rs:
