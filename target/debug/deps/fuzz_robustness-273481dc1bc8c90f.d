/root/repo/target/debug/deps/fuzz_robustness-273481dc1bc8c90f.d: tests/fuzz_robustness.rs

/root/repo/target/debug/deps/fuzz_robustness-273481dc1bc8c90f: tests/fuzz_robustness.rs

tests/fuzz_robustness.rs:
