/root/repo/target/debug/deps/skalla-5814333551e6abc7.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libskalla-5814333551e6abc7.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
