/root/repo/target/debug/deps/parking_lot-f716ebd7df91d657.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f716ebd7df91d657.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
