/root/repo/target/debug/deps/topology_ablation-945b0ad2cee32272.d: crates/bench/src/bin/topology_ablation.rs

/root/repo/target/debug/deps/topology_ablation-945b0ad2cee32272: crates/bench/src/bin/topology_ablation.rs

crates/bench/src/bin/topology_ablation.rs:
