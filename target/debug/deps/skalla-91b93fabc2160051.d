/root/repo/target/debug/deps/skalla-91b93fabc2160051.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libskalla-91b93fabc2160051.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
