/root/repo/target/debug/deps/skalla_expr-4bd5321db1b06455.d: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_expr-4bd5321db1b06455.rmeta: crates/expr/src/lib.rs crates/expr/src/analysis.rs crates/expr/src/builder.rs crates/expr/src/eval.rs crates/expr/src/expr.rs crates/expr/src/interval.rs crates/expr/src/linear.rs crates/expr/src/reduction.rs crates/expr/src/simplify.rs crates/expr/src/typecheck.rs Cargo.toml

crates/expr/src/lib.rs:
crates/expr/src/analysis.rs:
crates/expr/src/builder.rs:
crates/expr/src/eval.rs:
crates/expr/src/expr.rs:
crates/expr/src/interval.rs:
crates/expr/src/linear.rs:
crates/expr/src/reduction.rs:
crates/expr/src/simplify.rs:
crates/expr/src/typecheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
