/root/repo/target/debug/deps/skalla_tpcr-7cece79d237bc149.d: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

/root/repo/target/debug/deps/libskalla_tpcr-7cece79d237bc149.rmeta: crates/tpcr/src/lib.rs crates/tpcr/src/io.rs

crates/tpcr/src/lib.rs:
crates/tpcr/src/io.rs:
