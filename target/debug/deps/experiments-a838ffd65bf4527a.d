/root/repo/target/debug/deps/experiments-a838ffd65bf4527a.d: tests/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-a838ffd65bf4527a.rmeta: tests/experiments.rs Cargo.toml

tests/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
