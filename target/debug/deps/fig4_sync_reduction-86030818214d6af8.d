/root/repo/target/debug/deps/fig4_sync_reduction-86030818214d6af8.d: crates/bench/src/bin/fig4_sync_reduction.rs

/root/repo/target/debug/deps/fig4_sync_reduction-86030818214d6af8: crates/bench/src/bin/fig4_sync_reduction.rs

crates/bench/src/bin/fig4_sync_reduction.rs:
