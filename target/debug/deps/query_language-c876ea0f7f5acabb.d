/root/repo/target/debug/deps/query_language-c876ea0f7f5acabb.d: tests/query_language.rs Cargo.toml

/root/repo/target/debug/deps/libquery_language-c876ea0f7f5acabb.rmeta: tests/query_language.rs Cargo.toml

tests/query_language.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
