/root/repo/target/debug/deps/skalla_planner-208ff9daf410cbf9.d: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

/root/repo/target/debug/deps/libskalla_planner-208ff9daf410cbf9.rlib: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

/root/repo/target/debug/deps/libskalla_planner-208ff9daf410cbf9.rmeta: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

crates/planner/src/lib.rs:
crates/planner/src/cost.rs:
crates/planner/src/egil.rs:
crates/planner/src/info.rs:
crates/planner/src/parser.rs:
