/root/repo/target/debug/deps/skalla_planner-cfc15388d84ae84f.d: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

/root/repo/target/debug/deps/libskalla_planner-cfc15388d84ae84f.rmeta: crates/planner/src/lib.rs crates/planner/src/cost.rs crates/planner/src/egil.rs crates/planner/src/info.rs crates/planner/src/parser.rs

crates/planner/src/lib.rs:
crates/planner/src/cost.rs:
crates/planner/src/egil.rs:
crates/planner/src/info.rs:
crates/planner/src/parser.rs:
