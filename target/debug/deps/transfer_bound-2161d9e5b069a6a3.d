/root/repo/target/debug/deps/transfer_bound-2161d9e5b069a6a3.d: crates/bench/src/bin/transfer_bound.rs

/root/repo/target/debug/deps/transfer_bound-2161d9e5b069a6a3: crates/bench/src/bin/transfer_bound.rs

crates/bench/src/bin/transfer_bound.rs:
