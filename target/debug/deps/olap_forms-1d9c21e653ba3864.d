/root/repo/target/debug/deps/olap_forms-1d9c21e653ba3864.d: tests/olap_forms.rs Cargo.toml

/root/repo/target/debug/deps/libolap_forms-1d9c21e653ba3864.rmeta: tests/olap_forms.rs Cargo.toml

tests/olap_forms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
