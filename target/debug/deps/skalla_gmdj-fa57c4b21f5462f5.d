/root/repo/target/debug/deps/skalla_gmdj-fa57c4b21f5462f5.d: crates/gmdj/src/lib.rs crates/gmdj/src/agg.rs crates/gmdj/src/centralized.rs crates/gmdj/src/coalesce.rs crates/gmdj/src/eval.rs crates/gmdj/src/olap.rs crates/gmdj/src/op.rs crates/gmdj/src/sql.rs

/root/repo/target/debug/deps/skalla_gmdj-fa57c4b21f5462f5: crates/gmdj/src/lib.rs crates/gmdj/src/agg.rs crates/gmdj/src/centralized.rs crates/gmdj/src/coalesce.rs crates/gmdj/src/eval.rs crates/gmdj/src/olap.rs crates/gmdj/src/op.rs crates/gmdj/src/sql.rs

crates/gmdj/src/lib.rs:
crates/gmdj/src/agg.rs:
crates/gmdj/src/centralized.rs:
crates/gmdj/src/coalesce.rs:
crates/gmdj/src/eval.rs:
crates/gmdj/src/olap.rs:
crates/gmdj/src/op.rs:
crates/gmdj/src/sql.rs:
