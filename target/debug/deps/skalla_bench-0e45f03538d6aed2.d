/root/repo/target/debug/deps/skalla_bench-0e45f03538d6aed2.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs

/root/repo/target/debug/deps/libskalla_bench-0e45f03538d6aed2.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/queries.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/queries.rs:
