/root/repo/target/debug/deps/skalla_cli-4f9768d6aed49f19.d: crates/cli/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libskalla_cli-4f9768d6aed49f19.rmeta: crates/cli/src/lib.rs Cargo.toml

crates/cli/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
