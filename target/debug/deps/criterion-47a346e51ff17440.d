/root/repo/target/debug/deps/criterion-47a346e51ff17440.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-47a346e51ff17440.rlib: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-47a346e51ff17440.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
