/root/repo/target/debug/deps/rand-5018ca18c5feb29e.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5018ca18c5feb29e.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5018ca18c5feb29e.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
