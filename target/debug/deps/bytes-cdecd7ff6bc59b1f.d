/root/repo/target/debug/deps/bytes-cdecd7ff6bc59b1f.d: .devstubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-cdecd7ff6bc59b1f.rmeta: .devstubs/bytes/src/lib.rs

.devstubs/bytes/src/lib.rs:
