/root/repo/target/debug/deps/edge_cases-58ccd421f65e8cdd.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-58ccd421f65e8cdd: tests/edge_cases.rs

tests/edge_cases.rs:
