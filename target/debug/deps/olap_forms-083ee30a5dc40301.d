/root/repo/target/debug/deps/olap_forms-083ee30a5dc40301.d: tests/olap_forms.rs

/root/repo/target/debug/deps/olap_forms-083ee30a5dc40301: tests/olap_forms.rs

tests/olap_forms.rs:
