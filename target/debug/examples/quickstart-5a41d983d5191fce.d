/root/repo/target/debug/examples/quickstart-5a41d983d5191fce.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5a41d983d5191fce.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
