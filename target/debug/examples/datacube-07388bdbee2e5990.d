/root/repo/target/debug/examples/datacube-07388bdbee2e5990.d: examples/datacube.rs

/root/repo/target/debug/examples/datacube-07388bdbee2e5990: examples/datacube.rs

examples/datacube.rs:
