/root/repo/target/debug/examples/tpcr_distributed-0f7fb571b51b8da7.d: examples/tpcr_distributed.rs

/root/repo/target/debug/examples/tpcr_distributed-0f7fb571b51b8da7: examples/tpcr_distributed.rs

examples/tpcr_distributed.rs:
