/root/repo/target/debug/examples/ip_flow_analysis-ae998ed7456482c6.d: examples/ip_flow_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libip_flow_analysis-ae998ed7456482c6.rmeta: examples/ip_flow_analysis.rs Cargo.toml

examples/ip_flow_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
