/root/repo/target/debug/examples/ip_flow_analysis-f54770fa61c22224.d: examples/ip_flow_analysis.rs

/root/repo/target/debug/examples/ip_flow_analysis-f54770fa61c22224: examples/ip_flow_analysis.rs

examples/ip_flow_analysis.rs:
