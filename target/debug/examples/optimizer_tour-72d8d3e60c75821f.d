/root/repo/target/debug/examples/optimizer_tour-72d8d3e60c75821f.d: examples/optimizer_tour.rs

/root/repo/target/debug/examples/optimizer_tour-72d8d3e60c75821f: examples/optimizer_tour.rs

examples/optimizer_tour.rs:
