/root/repo/target/debug/examples/datacube-e00cf9c4eb70c6a1.d: examples/datacube.rs Cargo.toml

/root/repo/target/debug/examples/libdatacube-e00cf9c4eb70c6a1.rmeta: examples/datacube.rs Cargo.toml

examples/datacube.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
