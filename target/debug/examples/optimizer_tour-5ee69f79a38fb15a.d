/root/repo/target/debug/examples/optimizer_tour-5ee69f79a38fb15a.d: examples/optimizer_tour.rs Cargo.toml

/root/repo/target/debug/examples/liboptimizer_tour-5ee69f79a38fb15a.rmeta: examples/optimizer_tour.rs Cargo.toml

examples/optimizer_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
