/root/repo/target/debug/examples/quickstart-0edc601e0d215845.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0edc601e0d215845: examples/quickstart.rs

examples/quickstart.rs:
