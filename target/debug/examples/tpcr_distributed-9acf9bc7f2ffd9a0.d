/root/repo/target/debug/examples/tpcr_distributed-9acf9bc7f2ffd9a0.d: examples/tpcr_distributed.rs Cargo.toml

/root/repo/target/debug/examples/libtpcr_distributed-9acf9bc7f2ffd9a0.rmeta: examples/tpcr_distributed.rs Cargo.toml

examples/tpcr_distributed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
