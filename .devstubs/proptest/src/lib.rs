//! Offline dev stub for `proptest`: a tiny deterministic value generator with
//! the subset of the API this workspace's property tests use. Each `proptest!`
//! test runs a fixed number of pseudo-random cases. Dev-only; the real crate
//! is used in CI.

pub mod test_runner {
    /// Deterministic splitmix64 RNG used to drive all stub strategies.
    #[derive(Debug, Clone)]
    pub struct StubRng {
        state: u64,
    }

    impl StubRng {
        pub fn new(seed: u64) -> StubRng {
            StubRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
        pub fn usize_in(&mut self, lo: usize, hi_excl: usize) -> usize {
            if hi_excl <= lo {
                return lo;
            }
            lo + (self.next_u64() as usize) % (hi_excl - lo)
        }
    }
}

pub mod strategy {
    use super::test_runner::StubRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;
        fn gen_value(&self, rng: &mut StubRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
        {
            let leaf: Rc<dyn Fn(&mut StubRng) -> Self::Value> =
                Rc::new(move |rng| self.gen_value(rng));
            let make: Rc<dyn Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>> =
                Rc::new(move |b| {
                    let s2 = f(b);
                    BoxedStrategy(Rc::new(move |rng: &mut StubRng| s2.gen_value(rng)))
                });
            Recursive { leaf, make, depth }
        }
    }

    /// Type-erased strategy (what `prop_recursive` hands to its closure).
    pub struct BoxedStrategy<V>(pub Rc<dyn Fn(&mut StubRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut StubRng) -> V {
            (self.0)(rng)
        }
    }

    /// `.prop_recursive` adapter: nests the branch constructor a random
    /// number of times (0..=depth) around the leaf before generating.
    pub struct Recursive<V> {
        leaf: Rc<dyn Fn(&mut StubRng) -> V>,
        make: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
        depth: u32,
    }

    impl<V> Strategy for Recursive<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut StubRng) -> V {
            let mut s = BoxedStrategy(self.leaf.clone());
            let d = rng.usize_in(0, self.depth as usize + 1);
            for _ in 0..d {
                s = (self.make)(s);
            }
            s.gen_value(rng)
        }
    }

    /// `.prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut StubRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut StubRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut StubRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut StubRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Regex-shaped string strategy. Supports the tiny subset used in this
    /// repo's tests: `[chars]{lo,hi}`, `\PC{lo,hi}`, bare `[chars]` (one
    /// char), and anything else falls back to printable ASCII of length 0..8.
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut StubRng) -> String {
            let pat = *self;
            // Extract a trailing {lo,hi} repetition if present.
            let (body, lo, hi) = match (pat.rfind('{'), pat.ends_with('}')) {
                (Some(i), true) => {
                    let reps = &pat[i + 1..pat.len() - 1];
                    let mut it = reps.splitn(2, ',');
                    let lo: usize = it.next().unwrap_or("0").parse().unwrap_or(0);
                    let hi: usize = it.next().unwrap_or("8").parse().unwrap_or(lo);
                    (&pat[..i], lo, hi)
                }
                _ => (pat, 1, 1),
            };
            let class: Vec<char> = if body.starts_with('[') && body.ends_with(']') {
                expand_class(&body[1..body.len() - 1])
            } else {
                // \PC (any printable) or unknown: printable ASCII.
                (b' '..=b'~').map(char::from).collect()
            };
            let n = rng.usize_in(lo, hi + 1);
            (0..n)
                .map(|_| class[rng.usize_in(0, class.len())])
                .collect()
        }
    }

    fn expand_class(spec: &str) -> Vec<char> {
        let chars: Vec<char> = spec.chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (a, b) = (chars[i] as u32, chars[i + 2] as u32);
                for c in a..=b {
                    if let Some(c) = char::from_u32(c) {
                        out.push(c);
                    }
                }
                i += 3;
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        if out.is_empty() {
            out.push('a');
        }
        out
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut StubRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arb(rng: &mut StubRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arb(rng: &mut StubRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arb(rng: &mut StubRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arb(rng: &mut StubRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StubRng) -> T {
            T::arb(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    /// `prop_oneof!` support: a uniform choice over boxed generators.
    pub struct OneOf<V> {
        pub choices: Vec<Box<dyn Fn(&mut StubRng) -> V>>,
    }

    /// Type-erase a strategy into a boxed generator (keeps `prop_oneof!`
    /// inference anchored on each strategy's own `Value` type).
    pub fn erase<S>(s: S) -> Box<dyn Fn(&mut StubRng) -> S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.gen_value(rng))
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut StubRng) -> V {
            let i = rng.usize_in(0, self.choices.len());
            (self.choices[i])(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::StubRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut StubRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.start, self.size.end);
            (0..n).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::StubRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut StubRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut seed: u64 = 0xC0FFEE;
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(31).wrapping_add(b as u64);
                }
                let mut __rng = $crate::test_runner::StubRng::new(seed);
                for __case in 0u32..48 {
                    $(let $pat = $crate::strategy::Strategy::gen_value(&$strat, &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        $crate::strategy::OneOf {
            choices: vec![$($crate::strategy::erase($s)),+],
        }
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop` (module re-exports).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}
