//! Offline dev stub for the `bytes` crate: just enough API surface for this
//! workspace (Bytes/BytesMut/Buf/BufMut as used by skalla-net and skalla-core).
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

pub trait BufMut {
    fn put_u8(&mut self, b: u8);
    fn put_slice(&mut self, s: &[u8]);
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }
    pub fn freeze(self) -> Bytes {
        Bytes {
            inner: Arc::new(self.inner),
        }
    }
    pub fn len(&self) -> usize {
        self.inner.len()
    }
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.inner.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.inner.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    inner: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes {
            inner: Arc::new(Vec::new()),
        }
    }
    pub fn from_static(b: &'static [u8]) -> Bytes {
        Bytes {
            inner: Arc::new(b.to_vec()),
        }
    }
    pub fn copy_from_slice(b: &[u8]) -> Bytes {
        Bytes {
            inner: Arc::new(b.to_vec()),
        }
    }
    pub fn len(&self) -> usize {
        self.inner.len()
    }
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { inner: Arc::new(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}
