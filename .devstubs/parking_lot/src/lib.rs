//! Offline dev stub for `parking_lot`: non-poisoning Mutex over std.
use std::ops::{Deref, DerefMut};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard(g),
            Err(e) => MutexGuard(e.into_inner()),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}
