//! Offline dev stub for `rand`: deterministic StdRng + gen_range over the
//! range forms this workspace uses. Not statistically rigorous; dev-only.
use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic splitmix64-based RNG.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng {
            state: state ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A type uniform sampling is defined for (mirrors rand's trait of the same
/// name so `gen_range(1..122)` unifies the literal with the target type).
pub trait SampleUniform: Copy {
    fn sample_in(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "empty range");
                (lo as i128 + (raw as u128 % span) as i128) as $t
            }
        }
    )*};
}

uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_in(lo: Self, hi: Self, _inclusive: bool, raw: u64) -> Self {
        let unit = (raw >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

pub trait SampleRange<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_in(self.start, self.end, false, next())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        T::sample_in(*self.start(), *self.end(), true, next())
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}
