//! Offline dev stub for `criterion`: just enough API for the workspace's
//! bench targets to compile (and run each body once) without the network.

/// Measurement throughput annotation (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{param}", name.into()))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-benchmark timing driver: the stub runs the closure once.
pub struct Bencher;

impl Bencher {
    /// Run the benchmarked routine (once, in the stub).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let _ = f();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Set the sample count (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate throughput (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        eprintln!("bench(stub) {}/{id}", self.name);
        f(&mut Bencher);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        eprintln!("bench(stub) {}/{id}", self.name);
        f(&mut Bencher, input);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
