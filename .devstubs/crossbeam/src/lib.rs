//! Offline dev stub for `crossbeam`: an MPMC channel with the subset of the
//! `crossbeam::channel` API this workspace uses (unbounded, clone-able
//! sender/receiver, recv / try_recv / recv_timeout, disconnect semantics).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(t));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(t);
            drop(q);
            self.inner.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::SeqCst) == 0
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = q.pop_front() {
                    return Ok(t);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .cv
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = q.pop_front() {
                return Ok(t);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = q.pop_front() {
                    return Ok(t);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .inner
                    .cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
    }
}
