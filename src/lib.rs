#![warn(missing_docs)]

//! # skalla
//!
//! A from-scratch Rust reproduction of **Skalla** — the distributed OLAP
//! query processor of *"Efficient OLAP Query Processing in Distributed Data
//! Warehouses"* (Akinde, Böhlen, Johnson, Lakshmanan, Srivastava;
//! EDBT 2002).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`types`] — values, schemas, relations ([`skalla_types`]).
//! * [`expr`] — the GMDJ condition language and its analyses
//!   ([`skalla_expr`]).
//! * [`storage`] — columnar site storage and partitioning
//!   ([`skalla_storage`]).
//! * [`gmdj`] — the GMDJ operator, aggregates, local evaluation, and
//!   coalescing ([`skalla_gmdj`]).
//! * [`net`] — the simulated network with exact byte accounting
//!   ([`skalla_net`]).
//! * [`core`] — the distributed runtime: coordinator, sites,
//!   Alg. GMDJDistribEval ([`skalla_core`]).
//! * [`planner`] — the Egil optimizer and the textual query language
//!   ([`skalla_planner`]).
//! * [`tpcr`] — the TPC-R-style experiment data generator
//!   ([`skalla_tpcr`]).
//! * [`serve`] — the multi-client TCP serving layer: sessions, fair
//!   scheduling, plan-fingerprint result cache ([`skalla_serve`]).
//!
//! ## Quickstart
//!
//! ```
//! use skalla::prelude::*;
//!
//! // An IP-flow fact table, partitioned across two sites on SourceAS.
//! let schema = Schema::from_pairs([
//!     ("sas", DataType::Int64),
//!     ("das", DataType::Int64),
//!     ("bytes", DataType::Int64),
//! ]).unwrap().into_arc();
//! let flow = Table::from_rows(schema.clone(), &[
//!     vec![Value::Int(1), Value::Int(7), Value::Int(100)],
//!     vec![Value::Int(1), Value::Int(7), Value::Int(50)],
//!     vec![Value::Int(2), Value::Int(7), Value::Int(300)],
//! ]).unwrap();
//! let parts = partition_by_hash(&flow, 0, 2).unwrap();
//!
//! // Query: per (sas, das), flow count and total bytes.
//! let query = parse_query(
//!     "BASE DISTINCT sas, das FROM flow;
//!      MD COUNT(*) AS flows, SUM(bytes) AS total
//!         WHERE b.sas = r.sas AND b.das = r.das;",
//!     &std::collections::HashMap::from([("flow".to_string(), schema)]),
//! ).unwrap();
//!
//! // Plan with every optimization and execute distributed.
//! let dist = DistributionInfo::from_partitioning(&parts);
//! let (plan, _report) = plan_query(&query, &dist, OptFlags::all()).unwrap();
//! let catalogs: Vec<Catalog> = parts.parts.iter().map(|p| {
//!     let mut c = Catalog::new();
//!     c.register("flow", p.clone());
//!     c
//! }).collect();
//! let wh = DistributedWarehouse::launch(catalogs, CostModel::lan_2002()).unwrap();
//! let (result, metrics) = wh.execute(&plan).unwrap();
//! wh.shutdown().unwrap();
//! assert_eq!(result.len(), 2);
//! assert!(metrics.total_bytes() > 0);
//! ```

pub use skalla_core as core;
pub use skalla_expr as expr;
pub use skalla_gmdj as gmdj;
pub use skalla_net as net;
pub use skalla_planner as planner;
pub use skalla_serve as serve;
pub use skalla_storage as storage;
pub use skalla_tpcr as tpcr;
pub use skalla_types as types;

/// The most common imports, for examples and applications.
pub mod prelude {
    pub use skalla_core::{
        plan_fingerprint, BaseResult, BaseRound, CheckpointRecord, CheckpointWal, Coverage,
        DegradedMode, DistPlan, DistributedWarehouse, ExecMetrics, OptFlags, RetryPolicy,
        RoundSpec,
    };
    pub use skalla_expr::{Expr, ExprBuilder, Interval, SiteConstraint};
    pub use skalla_gmdj::{
        eval_expr_centralized, AggFunc, AggSpec, BaseSpec, GmdjBlock, GmdjExpr, GmdjOp,
    };
    pub use skalla_net::{CostModel, CrashSpec, FaultPlan};
    pub use skalla_planner::{parse_query, plan_query, DistributionInfo, PlanReport};
    pub use skalla_storage::{
        partition_by_hash, partition_by_ranges, partition_by_values, replicate_catalogs, Catalog,
        Partitioning, ReplicaMap, Table, TableBuilder,
    };
    pub use skalla_types::{DataType, Field, Relation, Schema, SkallaError, Value};
}
