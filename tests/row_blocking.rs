//! Row blocking (paper §3.2/§4): shipping `H` in chunks must not change
//! results, and the coordinator must merge chunks as they arrive.

use std::collections::HashMap;

use skalla::prelude::*;

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([
        ("sas", DataType::Int64),
        ("das", DataType::Int64),
        ("nb", DataType::Int64),
    ])
    .unwrap()
    .into_arc()
}

fn setup(rows: usize, sites: usize) -> (Table, Partitioning, Vec<Catalog>) {
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int((i % 40) as i64),
                Value::Int((i % 7) as i64),
                Value::Int(((i * 13) % 500) as i64),
            ]
        })
        .collect();
    let table = Table::from_rows(flow_schema(), &data).unwrap();
    let parts = partition_by_hash(&table, 0, sites).unwrap();
    let catalogs = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    (table, parts, catalogs)
}

fn query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    parse_query(
        "BASE DISTINCT sas, das FROM flow;
         MD COUNT(*) AS c1, AVG(nb) AS a1 WHERE b.sas = r.sas AND b.das = r.das;
         MD COUNT(*) AS c2 WHERE b.sas = r.sas AND b.das = r.das AND r.nb >= b.a1;",
        &schemas,
    )
    .unwrap()
}

#[test]
fn blocked_results_match_unblocked() {
    let (table, _parts, catalogs) = setup(800, 3);
    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query(), &full).unwrap().sorted();

    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    let plain = DistPlan::unoptimized(query());
    for block in [1usize, 7, 64, 100_000] {
        let plan = plain.clone().with_block_rows(block);
        let (result, _) = wh.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected, "block size {block}");
    }
    wh.shutdown().unwrap();
}

#[test]
fn blocking_increases_messages_not_rows() {
    let (_, _, catalogs) = setup(800, 3);
    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    let plain = DistPlan::unoptimized(query());
    let (_, m_whole) = wh.execute(&plain).unwrap();
    let (_, m_blocked) = wh.execute(&plain.clone().with_block_rows(16)).unwrap();
    wh.shutdown().unwrap();

    assert!(m_blocked.total_messages() > m_whole.total_messages());
    // The same tuples flow regardless of chunking.
    assert_eq!(m_blocked.total_rows_up(), m_whole.total_rows_up());
    assert_eq!(m_blocked.total_rows_down(), m_whole.total_rows_down());
}

#[test]
fn blocking_composes_with_optimizations() {
    let (table, parts, catalogs) = setup(800, 4);
    let dist = DistributionInfo::from_partitioning(&parts);
    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query(), &full).unwrap().sorted();

    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    let (plan, _) = plan_query(&query(), &dist, OptFlags::all()).unwrap();
    let (result, _) = wh.execute(&plan.with_block_rows(8)).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(result.sorted(), expected);
}
