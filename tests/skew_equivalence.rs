//! Differential equivalence for skew-aware execution.
//!
//! The skew contract: hot-partition splitting and mid-round straggler
//! offload change *where* detail rows are aggregated, never the answer.
//! Every test runs the same query over the same deliberately skewed
//! fragmentation several ways — centralized serial, distributed under the
//! static uniform placement, and distributed with the skew policy on — and
//! requires exact agreement, including under message drop/duplication
//! faults and site crashes with failover. All aggregates are
//! integer-valued, so exactness is unconditional: there is no float
//! rounding for a double-counted or lost tuple to hide behind.

use std::collections::HashMap;
use std::time::Duration;

use proptest::prelude::*;
use skalla::prelude::*;

const SITES: usize = 4;

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Int64)])
        .unwrap()
        .into_arc()
}

/// A deliberately skewed horizontal fragmentation: site 1 holds `hot` rows,
/// every other site `cold`. The parts are disjoint row slices of one full
/// table, so the centralized evaluation of that table is the ground truth
/// for every distributed variant.
fn skewed(hot: usize, cold: usize) -> (Table, Partitioning) {
    let total = hot + cold * (SITES - 1);
    let rows: Vec<Vec<Value>> = (0..total)
        .map(|i| vec![Value::Int((i % 13) as i64), Value::Int(i as i64)])
        .collect();
    let full = Table::from_rows(flow_schema(), &rows).unwrap();
    let mut parts = Vec::new();
    let mut at = 0;
    for s in 0..SITES {
        let n = if s == 0 { hot } else { cold };
        parts.push(Table::from_rows(flow_schema(), &rows[at..at + n]).unwrap());
        at += n;
    }
    (
        full,
        Partitioning {
            parts,
            partition_col: None,
        },
    )
}

/// A two-operator query: base round plus two synchronized GMDJ rounds, so
/// splits and offloads can engage in every round of the execution.
fn query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    parse_query(
        "BASE DISTINCT k FROM flow;
         MD COUNT(*) AS c, SUM(v) AS s WHERE b.k = r.k;
         MD COUNT(*) AS hi WHERE b.k = r.k AND r.v >= b.s / b.c;",
        &schemas,
    )
    .unwrap()
}

fn truth(full: &Table) -> Relation {
    let mut c = Catalog::new();
    c.register("flow", full.clone());
    eval_expr_centralized(&query(), &c).unwrap().sorted()
}

/// Fully replicated launch: every site holds a bit-identical copy of every
/// partition, so splits and offload offers always have a live host.
fn launch(parts: &Partitioning, faults: FaultPlan) -> DistributedWarehouse {
    DistributedWarehouse::launch_replicated("flow", parts, SITES, CostModel::free(), faults)
        .unwrap()
}

fn retry(deadline_ms: u64, max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_millis(deadline_ms),
        max_retries,
        backoff: 1.5,
        degraded: DegradedMode::Failover,
    }
}

/// The static uniform baseline: failover armed (the skew machinery's
/// precondition, kept identical across variants) but no skew policy.
fn uniform_plan(r: RetryPolicy) -> DistPlan {
    DistPlan::unoptimized(query()).with_retry_policy(r)
}

#[test]
fn forced_split_matches_uniform_and_centralized() {
    let (full, parts) = skewed(4000, 400);
    let expected = truth(&full);
    let wh = launch(&parts, FaultPlan::none());
    let uniform = uniform_plan(retry(500, 2));
    let split = uniform.clone().with_skew_split(1.05);

    // Warmup primes the coordinator's learned partition loads from the
    // sites' round-reply sketches; it must already be exact.
    let (warm, _) = wh.execute(&split).unwrap();
    assert_eq!(warm.sorted(), expected);

    let (u, mu) = wh.execute(&uniform).unwrap();
    let (s, ms) = wh.execute(&split).unwrap();
    wh.shutdown().unwrap();

    assert_eq!(u.sorted(), expected, "uniform placement");
    assert_eq!(s.sorted(), expected, "split execution");
    assert_eq!(mu.parts_split, 0, "uniform plan must never split");
    assert!(
        ms.parts_split >= 1,
        "a 3x-hot partition at threshold 1.05 was never split: {ms:?}"
    );
    assert!(
        ms.skew_ratio > 1.0,
        "sketches should have reported the imbalance: {}",
        ms.skew_ratio
    );
}

#[test]
fn straggler_offload_matches_centralized() {
    // One site owns a partition hundreds of times the others': the round's
    // median completion time is tiny, the laggard is far beyond
    // `factor x median`, and the offload machinery must race a replica
    // against it without changing a single bit of the answer.
    let (full, parts) = skewed(250_000, 400);
    let expected = truth(&full);
    let wh = launch(&parts, FaultPlan::none());
    let plan = uniform_plan(retry(2000, 2)).with_skew_offload(1.1);
    let (r, m) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(r.sorted(), expected);
    assert!(
        m.offloads >= 1,
        "no offload offer was issued for a 600x straggler: {m:?}"
    );
    // Whoever won, exactly one side's reply was merged per offloaded round.
    assert!(m.offload_wins <= m.offloads);
}

#[test]
fn split_under_message_faults_stays_exact() {
    // Drop, duplicate, and reorder messages while split execution runs:
    // the idempotent retransmission and chunk-staging machinery must mask
    // all of it and still agree with the uniform path bit for bit.
    for (seed, drop, dup, delay) in [
        (0xA11u64, 0.15, 0.20, 0.30),
        (0x0D5E, 0.20, 0.0, 0.0),
        (0xD0B1, 0.0, 0.40, 0.25),
    ] {
        let (full, parts) = skewed(3000, 300);
        let expected = truth(&full);
        let faults = FaultPlan::seeded(seed)
            .with_drop_rate(drop)
            .with_dup_rate(dup)
            .with_delay_rate(delay);
        let wh = launch(&parts, faults);
        let uniform = uniform_plan(retry(250, 8));
        let split = uniform.clone().with_skew_split(1.05);

        let (warm, _) = wh.execute(&split).unwrap();
        assert_eq!(warm.sorted(), expected, "seed {seed:#x}: warmup");
        let (u, _) = wh.execute(&uniform).unwrap();
        let (s, ms) = wh.execute(&split).unwrap();
        wh.shutdown().unwrap();

        assert_eq!(u.sorted(), expected, "seed {seed:#x}: uniform under faults");
        assert_eq!(s.sorted(), expected, "seed {seed:#x}: split under faults");
        assert!(
            ms.parts_split >= 1,
            "seed {seed:#x}: faults suppressed splitting: {ms:?}"
        );
    }
}

#[test]
fn split_with_site_crash_fails_over_exactly() {
    // A site dies while split execution is live — including the hot
    // partition's owner (site 1). The epoch-bump failover re-plan and the
    // skew split must compose: the answer stays exact and, once the loads
    // are learned, the survivors still split the hot partition.
    for victim in [1u32, 2] {
        for after in [0u64, 3] {
            let (full, parts) = skewed(3000, 300);
            let expected = truth(&full);
            let faults = FaultPlan::seeded(5).with_crash(victim, after);
            let wh = launch(&parts, faults);
            let plan = uniform_plan(retry(120, 1)).with_skew_split(1.05);

            // First run learns the loads (and may already hit the crash);
            // the second runs split execution against a dead site.
            let (r1, m1) = wh.execute(&plan).unwrap();
            let (r2, m2) = wh.execute(&plan).unwrap();
            wh.shutdown().unwrap();

            let ctx = format!("victim {victim} after {after}");
            assert_eq!(r1.sorted(), expected, "{ctx}: first run");
            assert_eq!(r2.sorted(), expected, "{ctx}: second run");
            assert!(
                m1.failovers + m2.failovers >= 1,
                "{ctx}: the crash never triggered failover"
            );
            assert_eq!(m1.parts_lost + m2.parts_lost, 0, "{ctx}");
            assert!(
                m2.parts_split >= 1,
                "{ctx}: survivors stopped splitting the hot partition: {m2:?}"
            );
        }
    }
}

#[test]
fn skewed_faulty_runs_are_deterministic() {
    // Same fault seed, same policy, two independent warehouses: the skew
    // path must reproduce the exact same relation both times.
    let run = || {
        let (_, parts) = skewed(3000, 300);
        let wh = launch(
            &parts,
            FaultPlan::seeded(0xBEEF)
                .with_drop_rate(0.15)
                .with_dup_rate(0.2),
        );
        let plan = uniform_plan(retry(250, 8)).with_skew_split(1.05);
        let (warm, _) = wh.execute(&plan).unwrap();
        let (r, _) = wh.execute(&plan).unwrap();
        wh.shutdown().unwrap();
        (warm.sorted(), r.sorted())
    };
    assert_eq!(run(), run());
}

proptest! {
    /// Randomized differential sweep: arbitrary fault seed, drop/dup rates,
    /// and hot-partition size — the full skew policy (split + offload) must
    /// agree with both the uniform distributed path and the centralized
    /// serial evaluation on every case. Tables are kept small and the retry
    /// deadline tight so the 48-case sweep stays fast even when drops stall
    /// a round.
    #[test]
    fn skew_policy_never_changes_the_answer(
        seed in any::<u64>(),
        hot in 1200usize..2400,
        drop in 0.0..0.10f64,
        dup in 0.0..0.15f64,
    ) {
        let (full, parts) = skewed(hot, 200);
        let expected = truth(&full);
        let faults = FaultPlan::seeded(seed)
            .with_drop_rate(drop)
            .with_dup_rate(dup);
        let wh = launch(&parts, faults);
        let uniform = uniform_plan(retry(80, 8));
        let skew = uniform.clone().with_skew_split(1.05).with_skew_offload(2.0);

        let (warm, _) = wh.execute(&skew).unwrap();
        prop_assert_eq!(warm.sorted(), expected.clone());
        let (u, _) = wh.execute(&uniform).unwrap();
        let (s, _) = wh.execute(&skew).unwrap();
        wh.shutdown().unwrap();
        prop_assert_eq!(u.sorted(), expected.clone());
        prop_assert_eq!(s.sorted(), expected);
    }
}
