//! Property tests for the optimizer stack: simplification, plan-level
//! equivalence under random flags/queries, and wire round-trips of whole
//! plans.

use proptest::prelude::*;

use skalla::core::message::Message;
use skalla::expr::{eval, simplify, Expr};
use skalla::prelude::*;

// ---------------------------------------------------------------------------
// Random (well-typed) boolean expressions over b: [Int, Int], r: [Int, Int].
// ---------------------------------------------------------------------------

fn arb_num_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::lit),
        (0usize..2).prop_map(Expr::base),
        (0usize..2).prop_map(Expr::detail),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            inner.prop_map(|a| a.neg()),
        ]
    })
}

fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let cmp = (arb_num_expr(), arb_num_expr(), 0u8..6).prop_map(|(a, b, op)| match op {
        0 => a.eq(b),
        1 => a.ne(b),
        2 => a.lt(b),
        3 => a.le(b),
        4 => a.gt(b),
        _ => a.ge(b),
    });
    cmp.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

proptest! {
    /// `simplify` preserves evaluation on random well-typed predicates.
    #[test]
    fn simplify_preserves_evaluation(
        e in arb_bool_expr(),
        b0 in -20i64..20,
        b1 in -20i64..20,
        r0 in -20i64..20,
        r1 in -20i64..20,
    ) {
        let b = vec![Value::Int(b0), Value::Int(b1)];
        let r = vec![Value::Int(r0), Value::Int(r1)];
        let s = simplify(&e);
        // Simplification is monotone in size.
        prop_assert!(s.node_count() <= e.node_count());
        match (eval(&e, &b, &r), eval(&s, &b, &r)) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "{} vs {}", e, s),
            (Err(_), Err(_)) => {}
            // Folding may *remove* an error only if the erroring branch was
            // unreachable under Kleene short-circuiting; our generator uses
            // total operators (no division), so errors can only be overflow
            // — which folding evaluates identically. Mismatch = bug.
            (x, y) => prop_assert!(false, "{} -> {:?} but {} -> {:?}", e, x, s, y),
        }
    }

    /// Plans serialize/deserialize identically (whole-plan wire format).
    #[test]
    fn plan_wire_round_trip(
        theta in arb_bool_expr(),
        site_red in any::<bool>(),
        block in prop::option::of(1usize..64),
    ) {
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            theta,
        )]);
        let expr = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0, 1] },
            "t",
            vec![op],
            vec![0, 1],
        ).unwrap();
        let mut plan = DistPlan::unoptimized(expr);
        plan.rounds[0].site_group_reduction = site_red;
        plan.block_rows = block;
        let msg = Message::Plan(plan);
        let bytes = msg.to_wire_framed(7, 2);
        let (epoch, round, back) = Message::from_wire_framed(&bytes).unwrap();
        prop_assert_eq!(epoch, 7);
        prop_assert_eq!(round, 2);
        prop_assert_eq!(back, msg);
    }

    /// End-to-end: random partition-anchored single-GMDJ queries evaluate
    /// identically under random optimizer flags (8 cases per run to keep
    /// warehouse spawns bounded).
    #[test]
    fn random_queries_agree_across_flags(
        rows in prop::collection::vec((0i64..8, -50i64..50), 1..50),
        residual_threshold in -50i64..50,
        bits in 0u32..16,
        n_sites in 1usize..4,
    ) {
        let schema = Schema::from_pairs([
            ("g", DataType::Int64),
            ("v", DataType::Int64),
        ]).unwrap().into_arc();
        let data: Vec<Vec<Value>> = rows
            .iter()
            .map(|(g, v)| vec![Value::Int(*g), Value::Int(*v)])
            .collect();
        let table = Table::from_rows(schema, &data).unwrap();
        let parts = partition_by_hash(&table, 0, n_sites).unwrap();
        let dist = DistributionInfo::from_partitioning(&parts);

        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("c1"),
                AggSpec::sum(Expr::detail(1), "s1").unwrap(),
            ],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c2")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::detail(1).gt(Expr::lit(residual_threshold))),
        )]);
        let query = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "t",
            vec![md1, md2],
            vec![0],
        ).unwrap();

        let mut full = Catalog::new();
        full.register("t", table);
        let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

        let flags = OptFlags {
            coalesce: bits & 1 != 0,
            site_group_reduction: bits & 2 != 0,
            coord_group_reduction: bits & 4 != 0,
            sync_reduction: bits & 8 != 0,
        };
        let (plan, _) = plan_query(&query, &dist, flags).unwrap();
        let catalogs: Vec<Catalog> = parts.parts.iter().map(|p| {
            let mut c = Catalog::new();
            c.register("t", p.clone());
            c
        }).collect();
        let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
        let (result, _) = wh.execute(&plan).unwrap();
        wh.shutdown().unwrap();
        prop_assert_eq!(result.sorted(), expected, "flags {:?}", flags);
    }

    /// The cost estimator never prefers a plan that moves *more* of
    /// everything: adding site-side reduction can only lower (or keep) the
    /// estimate.
    #[test]
    fn estimator_is_monotone_in_site_reduction(
        groups in 1usize..500,
        n_sites in 1usize..9,
    ) {
        use skalla::planner::estimate_plan;
        use skalla::storage::TableStats;

        let schema = Schema::from_pairs([("g", DataType::Int64)]).unwrap().into_arc();
        let data: Vec<Vec<Value>> = (0..groups)
            .map(|i| vec![Value::Int(i as i64)])
            .collect();
        let table = Table::from_rows(schema, &data).unwrap();
        let stats = TableStats::collect(&table);

        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c")],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let expr = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "t",
            vec![op],
            vec![0],
        ).unwrap();
        let plain = DistPlan::unoptimized(expr);
        let mut reduced = plain.clone();
        reduced.rounds[0].site_group_reduction = true;

        let cost = CostModel::lan_2002();
        let e_plain = estimate_plan(&plain, &stats, n_sites, &cost);
        let e_reduced = estimate_plan(&reduced, &stats, n_sites, &cost);
        prop_assert!(e_reduced.est_rows_up <= e_plain.est_rows_up);
        prop_assert_eq!(e_reduced.est_rows_down, e_plain.est_rows_down);
        prop_assert!(e_reduced.est_comm_s <= e_plain.est_comm_s);
    }
}
