//! Property-based tests (proptest) for the system's core invariants.

use proptest::prelude::*;

use skalla::expr::{
    derive_group_filter, eval_base, eval_predicate, Expr, Interval, SiteConstraint,
};
use skalla::net::{WireDecode, WireEncode};
use skalla::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    /// Wire format: every value round-trips exactly.
    #[test]
    fn wire_value_round_trip(v in arb_value()) {
        let bytes = v.to_wire();
        let back = Value::from_wire(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Wire format: relations of random shape round-trip exactly.
    #[test]
    fn wire_relation_round_trip(
        rows in prop::collection::vec(
            (any::<i64>(), "[a-z]{0,5}", any::<bool>()),
            0..20,
        )
    ) {
        let schema = Schema::from_pairs([
            ("a", DataType::Int64),
            ("b", DataType::Utf8),
            ("c", DataType::Bool),
        ]).unwrap().into_arc();
        let rel = Relation::new(
            schema,
            rows.into_iter()
                .map(|(a, b, c)| vec![Value::Int(a), Value::str(b), Value::Bool(c)])
                .collect(),
        ).unwrap();
        let back = Relation::from_wire(&rel.to_wire()).unwrap();
        prop_assert_eq!(back, rel);
    }

    /// Value equality implies hash equality (groups depend on it).
    #[test]
    fn value_eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// Value ordering is transitive and antisymmetric on random triples.
    #[test]
    fn value_order_is_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Interval arithmetic is sound: if `x ∈ I` and `y ∈ J` then
    /// `x + y ∈ I + J` and `k·x ∈ k·I`.
    #[test]
    fn interval_arithmetic_sound(
        (lo1, w1) in (-100.0f64..100.0, 0.0f64..50.0),
        (lo2, w2) in (-100.0f64..100.0, 0.0f64..50.0),
        t1 in 0.0f64..1.0,
        t2 in 0.0f64..1.0,
        k in -10.0f64..10.0,
    ) {
        let i = Interval::closed(lo1, lo1 + w1);
        let j = Interval::closed(lo2, lo2 + w2);
        let x = lo1 + t1 * w1;
        let y = lo2 + t2 * w2;
        prop_assert!(i.contains(x));
        prop_assert!(j.contains(y));
        prop_assert!(i.add(&j).contains(x + y));
        let scaled = i.scale(k);
        prop_assert!(scaled.contains(k * x) || (k * x - 0.0).abs() < 1e-12 && scaled.contains(0.0));
        // Intersection: points in both are in the intersection.
        if j.contains(x) {
            prop_assert!(i.intersect(&j).contains(x));
        }
    }

    /// Theorem 4 soundness: the derived base filter never rejects a group
    /// that some site tuple could match.
    #[test]
    fn group_filter_is_sound(
        site_lo in -50i64..50,
        site_width in 0i64..40,
        detail_vals in prop::collection::vec(-100i64..100, 1..30),
        base_val in -100i64..100,
        extra_const in -100i64..100,
        op_pick in 0usize..4,
    ) {
        let site_hi = site_lo + site_width;
        // Detail rows restricted to the site's range (this *is* φᵢ).
        let rows: Vec<Vec<Value>> = detail_vals
            .iter()
            .map(|v| vec![Value::Int((v.rem_euclid(site_width + 1)) + site_lo)])
            .collect();
        let site = SiteConstraint::none()
            .with_range(0, Interval::closed(site_lo as f64, site_hi as f64));

        // θ: one comparison between b.0 (+ constant) and r.0.
        let lhs = Expr::base(0).add(Expr::lit(extra_const));
        let theta = match op_pick {
            0 => lhs.eq(Expr::detail(0)),
            1 => lhs.lt(Expr::detail(0)),
            2 => lhs.ge(Expr::detail(0)),
            _ => lhs.le(Expr::detail(0).mul(Expr::lit(2))),
        };

        let filter = derive_group_filter(&[&theta], &site);
        let b = vec![Value::Int(base_val)];
        let matched_any = rows
            .iter()
            .any(|r| eval_predicate(&theta, &b, r).unwrap());
        if matched_any {
            // The filter must keep this group.
            let keeps = match eval_base(&filter, &b).unwrap() {
                Value::Bool(x) => x,
                Value::Null => false,
                other => panic!("non-boolean filter value {other}"),
            };
            prop_assert!(keeps, "filter {filter} dropped matching group {base_val}");
        }
    }

    /// GMDJ partition invariance (Theorem 1 at full query granularity):
    /// splitting the detail relation anywhere leaves the distributed result
    /// unchanged.
    #[test]
    fn gmdj_partition_invariance(
        rows in prop::collection::vec((0i64..6, 0i64..4, 0i64..100), 1..60),
        split_seed in any::<u64>(),
        n_sites in 1usize..4,
    ) {
        let schema = Schema::from_pairs([
            ("g", DataType::Int64),
            ("h", DataType::Int64),
            ("v", DataType::Int64),
        ]).unwrap().into_arc();
        let data: Vec<Vec<Value>> = rows
            .iter()
            .map(|(g, h, v)| vec![Value::Int(*g), Value::Int(*h), Value::Int(*v)])
            .collect();
        let table = Table::from_rows(schema.clone(), &data).unwrap();

        // Arbitrary row→site assignment derived from the seed.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_sites];
        let mut s = split_seed | 1;
        for i in 0..table.len() as u32 {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            buckets[(s % n_sites as u64) as usize].push(i);
        }
        let parts = Partitioning {
            parts: buckets.iter().map(|idx| table.take(idx)).collect(),
            partition_col: None,
        };

        let md = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("c"),
                AggSpec::sum(Expr::detail(2), "s").unwrap(),
                AggSpec::min(Expr::detail(2), "mn").unwrap(),
                AggSpec::max(Expr::detail(2), "mx").unwrap(),
                AggSpec::avg(Expr::detail(2), "av").unwrap(),
            ],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let query = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "t",
            vec![md],
            vec![0],
        ).unwrap();

        let mut full = Catalog::new();
        full.register("t", table);
        let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

        let catalogs: Vec<Catalog> = parts.parts.iter().map(|p| {
            let mut c = Catalog::new();
            c.register("t", p.clone());
            c
        }).collect();
        let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
        let (result, _) = wh.execute(&DistPlan::unoptimized(query)).unwrap();
        wh.shutdown().unwrap();
        prop_assert_eq!(result.sorted(), expected);
    }

    /// Coalescing is semantics-preserving on arbitrary independent chains.
    #[test]
    fn coalescing_preserves_semantics(
        rows in prop::collection::vec((0i64..5, 0i64..50), 1..40),
        threshold in 0i64..50,
    ) {
        let schema = Schema::from_pairs([
            ("g", DataType::Int64),
            ("v", DataType::Int64),
        ]).unwrap().into_arc();
        let data: Vec<Vec<Value>> = rows
            .iter()
            .map(|(g, v)| vec![Value::Int(*g), Value::Int(*v)])
            .collect();
        let table = Table::from_rows(schema, &data).unwrap();

        let md1 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c1")],
            Expr::base(0).eq(Expr::detail(0)),
        )]);
        let md2 = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::sum(Expr::detail(1), "s2").unwrap()],
            Expr::base(0).eq(Expr::detail(0))
                .and(Expr::detail(1).gt(Expr::lit(threshold))),
        )]);
        let query = GmdjExpr::new(
            BaseSpec::DistinctProject { cols: vec![0] },
            "t",
            vec![md1, md2],
            vec![0],
        ).unwrap();
        let (coalesced, steps) = skalla::gmdj::coalesce_chain(&query).unwrap();
        prop_assert_eq!(steps, 1);

        let mut cat = Catalog::new();
        cat.register("t", table);
        let a = eval_expr_centralized(&query, &cat).unwrap().sorted();
        let b = eval_expr_centralized(&coalesced, &cat).unwrap().sorted();
        prop_assert_eq!(a, b);
    }

    /// The hash and nested-loop local strategies agree on arbitrary data.
    #[test]
    fn local_strategies_agree(
        rows in prop::collection::vec((0i64..5, -20i64..20), 0..50),
    ) {
        use skalla::gmdj::{eval_gmdj_full, EvalOptions, LocalStrategy};
        let schema = Schema::from_pairs([
            ("g", DataType::Int64),
            ("v", DataType::Int64),
        ]).unwrap().into_arc();
        let data: Vec<Vec<Value>> = rows
            .iter()
            .map(|(g, v)| vec![Value::Int(*g), Value::Int(*v)])
            .collect();
        let table = Table::from_rows(schema.clone(), &data).unwrap();
        let base = table.distinct_project(&[0]).unwrap();
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("c"),
                AggSpec::avg(Expr::detail(1), "a").unwrap(),
            ],
            Expr::base(0).eq(Expr::detail(0)).and(Expr::detail(1).ge(Expr::lit(0))),
        )]);
        let (hash, _) = eval_gmdj_full(&base, &table, &schema, &op, &EvalOptions::default()).unwrap();
        let opts = EvalOptions { strategy: LocalStrategy::NestedLoop, ..Default::default() };
        let (nested, _) = eval_gmdj_full(&base, &table, &schema, &op, &opts).unwrap();
        prop_assert_eq!(hash.sorted(), nested.sorted());
    }
}
