//! Failure handling: site-side errors must surface as coordinator errors,
//! not hangs or wrong results, and the warehouse must stay usable.

use std::collections::HashMap;

use skalla::core::TieredWarehouse;
use skalla::prelude::*;

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Int64)])
        .unwrap()
        .into_arc()
}

fn table(rows: usize) -> Table {
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Int((i % 5) as i64), Value::Int(i as i64)])
        .collect();
    Table::from_rows(flow_schema(), &data).unwrap()
}

fn query(table_name: &str) -> GmdjExpr {
    let schemas = HashMap::from([(table_name.to_string(), flow_schema())]);
    parse_query(
        &format!(
            "BASE DISTINCT k FROM {table_name};
             MD COUNT(*) AS c, SUM(v) AS s WHERE b.k = r.k;"
        ),
        &schemas,
    )
    .unwrap()
}

#[test]
fn missing_table_at_one_site_is_reported() {
    // Site 0 has the table; site 1 does not.
    let t = table(50);
    let mut c0 = Catalog::new();
    c0.register("flow", t.clone());
    let mut c1 = Catalog::new();
    c1.register("other", t); // wrong name

    // Launch succeeds (schemas recorded from whichever site has them)…
    let wh = DistributedWarehouse::launch(vec![c0, c1], CostModel::free()).unwrap();
    // …but execution must fail cleanly with a site error.
    let err = wh
        .execute(&DistPlan::unoptimized(query("flow")))
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("site"), "error should name the site: {msg}");
    assert!(msg.contains("flow"), "error should name the table: {msg}");
    wh.shutdown().unwrap();
}

#[test]
fn unknown_table_in_query_fails_before_any_round() {
    let t = table(50);
    let mut c = Catalog::new();
    c.register("flow", t);
    let wh = DistributedWarehouse::launch(vec![c], CostModel::free()).unwrap();
    let before = wh.network().stats().total_messages();
    let err = wh
        .execute(&DistPlan::unoptimized(query("nope")))
        .unwrap_err();
    assert!(matches!(err, SkallaError::NotFound(_)));
    // Planning-time failure: nothing was sent.
    assert_eq!(wh.network().stats().total_messages(), before);
    wh.shutdown().unwrap();
}

#[test]
fn runtime_division_by_zero_propagates() {
    // θ divides by an aggregate that is zero for some group: the site's
    // evaluation error must surface at the coordinator.
    let schema = flow_schema();
    let t = Table::from_rows(
        schema.clone(),
        &[vec![Value::Int(1), Value::Int(0)]], // sum(v) = 0 for group 1
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("flow", t);

    let schemas = HashMap::from([("flow".to_string(), schema)]);
    let q = parse_query(
        "BASE DISTINCT k FROM flow;
         MD SUM(v) AS s WHERE b.k = r.k;
         MD COUNT(*) AS c2 WHERE b.k = r.k AND r.v / b.s > 0;",
        &schemas,
    )
    .unwrap();

    let wh = DistributedWarehouse::launch(vec![c], CostModel::free()).unwrap();
    let err = wh.execute(&DistPlan::unoptimized(q)).unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
    wh.shutdown().unwrap();
}

#[test]
fn warehouse_survives_a_failed_query() {
    // After a failed execution the same warehouse must run the next query.
    let t = table(60);
    let mut c = Catalog::new();
    c.register("flow", t.clone());
    let wh = DistributedWarehouse::launch(vec![c], CostModel::free()).unwrap();

    assert!(wh.execute(&DistPlan::unoptimized(query("nope"))).is_err());
    let (result, _) = wh.execute(&DistPlan::unoptimized(query("flow"))).unwrap();
    assert_eq!(result.len(), 5);

    let mut full = Catalog::new();
    full.register("flow", t);
    assert_eq!(
        result.sorted(),
        eval_expr_centralized(&query("flow"), &full)
            .unwrap()
            .sorted()
    );
    wh.shutdown().unwrap();
}

#[test]
fn stale_replies_from_aborted_queries_are_discarded() {
    // Site 1 errors immediately (missing table) while site 2 is still
    // computing; the coordinator aborts, and site 2's late reply must not
    // leak into the next query. Epoch tagging guarantees this regardless
    // of scheduling; run several iterations to exercise interleavings.
    let t = table(4000);
    let parts = partition_by_hash(&t, 0, 2).unwrap();
    let mut c0 = Catalog::new();
    c0.register("flow", parts.parts[0].clone());
    c0.register("slow", parts.parts[0].clone());
    let mut c1 = Catalog::new();
    // Site 1 lacks `flow` entirely but has `slow`.
    c1.register("slow", parts.parts[1].clone());

    let wh = DistributedWarehouse::launch(vec![c0, c1], CostModel::free()).unwrap();
    for _ in 0..5 {
        // Fails: site 1 has no `flow` (site 0's reply may arrive late).
        assert!(wh.execute(&DistPlan::unoptimized(query("flow"))).is_err());
        // The next query over `slow` must be correct despite stragglers.
        let (result, _) = wh.execute(&DistPlan::unoptimized(query("slow"))).unwrap();
        let mut full = Catalog::new();
        full.register("slow", t.clone());
        assert_eq!(
            result.sorted(),
            eval_expr_centralized(&query("slow"), &full)
                .unwrap()
                .sorted()
        );
    }
    wh.shutdown().unwrap();
}

#[test]
fn duplicated_requests_are_answered_once() {
    // Every unreliable message is duplicated: sites see each request twice
    // and must serve the duplicate from the per-(epoch, round) reply cache;
    // the coordinator must discard the duplicate replies by sequence number.
    let t = table(200);
    let parts = partition_by_hash(&t, 0, 2).unwrap();
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    let faults = FaultPlan::seeded(21).with_dup_rate(1.0);
    let wh = DistributedWarehouse::launch_with_faults(catalogs, CostModel::free(), faults).unwrap();

    let mut full = Catalog::new();
    full.register("flow", t);
    let expected = eval_expr_centralized(&query("flow"), &full)
        .unwrap()
        .sorted();
    // Twice on the same warehouse: the reply cache must roll over between
    // epochs rather than replaying the previous query's answers.
    for _ in 0..2 {
        let (result, _) = wh.execute(&DistPlan::unoptimized(query("flow"))).unwrap();
        assert_eq!(result.sorted(), expected);
    }
    wh.shutdown().unwrap();
}

#[test]
fn held_back_replies_from_previous_epochs_are_discarded() {
    // Aggressive delay keeps a holdback queue of stragglers alive across
    // query boundaries; epoch/round framing must keep every query exact.
    let t = table(300);
    let parts = partition_by_hash(&t, 0, 2).unwrap();
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    let faults = FaultPlan::seeded(33).with_delay_rate(0.7);
    let wh = DistributedWarehouse::launch_with_faults(catalogs, CostModel::free(), faults).unwrap();

    let mut full = Catalog::new();
    full.register("flow", t);
    let expected = eval_expr_centralized(&query("flow"), &full)
        .unwrap()
        .sorted();
    for _ in 0..5 {
        let (result, _) = wh.execute(&DistPlan::unoptimized(query("flow"))).unwrap();
        assert_eq!(result.sorted(), expected);
    }
    wh.shutdown().unwrap();
}

#[test]
fn tree_propagates_site_errors() {
    let t = table(50);
    let mut c0 = Catalog::new();
    c0.register("flow", t.clone());
    let mut c1 = Catalog::new();
    c1.register("other", t);

    let tw = TieredWarehouse::launch(vec![c0, c1], 1, CostModel::free()).unwrap();
    let err = tw
        .execute(&DistPlan::unoptimized(query("flow")))
        .unwrap_err();
    assert!(err.to_string().contains("flow"), "{err}");
    tw.shutdown().unwrap();
}

#[test]
fn invalid_plans_rejected_without_execution() {
    let t = table(20);
    let mut c = Catalog::new();
    c.register("flow", t);
    let wh = DistributedWarehouse::launch(vec![c], CostModel::free()).unwrap();

    // local_only on the final round is invalid.
    let mut plan = DistPlan::unoptimized(query("flow"));
    plan.rounds.last_mut().unwrap().local_only = true;
    assert!(matches!(wh.execute(&plan), Err(SkallaError::Plan(_))));

    // Mismatched round count.
    let mut plan = DistPlan::unoptimized(query("flow"));
    plan.rounds.clear();
    assert!(matches!(wh.execute(&plan), Err(SkallaError::Plan(_))));
    wh.shutdown().unwrap();
}
