//! The multi-tier coordinator topology (paper §6 future work): results
//! must match the flat topology exactly, and the root link must carry less
//! traffic (mid-tiers pre-synchronize their clusters).

use std::collections::HashMap;

use skalla::core::TieredWarehouse;
use skalla::prelude::*;

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([
        ("sas", DataType::Int64),
        ("das", DataType::Int64),
        ("nb", DataType::Int64),
    ])
    .unwrap()
    .into_arc()
}

fn setup(rows: usize, sites: usize) -> (Table, Partitioning, Vec<Catalog>) {
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int((i % 30) as i64),
                Value::Int((i % 6) as i64),
                Value::Int(((i * 19) % 700) as i64),
            ]
        })
        .collect();
    let table = Table::from_rows(flow_schema(), &data).unwrap();
    let parts = partition_by_hash(&table, 0, sites).unwrap();
    let catalogs = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    (table, parts, catalogs)
}

fn query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    parse_query(
        "BASE DISTINCT sas, das FROM flow;
         MD COUNT(*) AS c1, AVG(nb) AS a1 WHERE b.sas = r.sas AND b.das = r.das;
         MD COUNT(*) AS c2 WHERE b.sas = r.sas AND b.das = r.das AND r.nb >= b.a1;",
        &schemas,
    )
    .unwrap()
}

#[test]
fn tree_matches_flat_topology() {
    let (table, _, catalogs) = setup(600, 8);
    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query(), &full).unwrap().sorted();

    for fanout in [1usize, 2, 4, 8] {
        let tw = TieredWarehouse::launch(catalogs.clone(), fanout, CostModel::free()).unwrap();
        assert_eq!(tw.num_leaf_sites(), 8);
        assert_eq!(tw.num_mid_tiers(), 8usize.div_ceil(fanout));
        let (result, _) = tw.execute(&DistPlan::unoptimized(query())).unwrap();
        assert_eq!(result.sorted(), expected, "fanout {fanout}");
        tw.shutdown().unwrap();
    }
}

#[test]
fn tree_handles_optimized_plans() {
    let (table, parts, catalogs) = setup(600, 6);
    let dist = DistributionInfo::from_partitioning(&parts);
    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query(), &full).unwrap().sorted();

    let tw = TieredWarehouse::launch(catalogs, 2, CostModel::free()).unwrap();
    for flags in [
        OptFlags::none(),
        OptFlags {
            site_group_reduction: true,
            ..OptFlags::none()
        },
        OptFlags {
            sync_reduction: true,
            ..OptFlags::none()
        },
        OptFlags::all(),
    ] {
        let (plan, _) = plan_query(&query(), &dist, flags).unwrap();
        let (result, _) = tw.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected, "flags {flags:?}");
    }
    tw.shutdown().unwrap();
}

#[test]
fn mid_tiers_reduce_root_traffic() {
    let (_, _, catalogs) = setup(900, 8);
    let plan = DistPlan::unoptimized(query());

    // Flat topology: the root receives one H per site.
    let flat = DistributedWarehouse::launch(catalogs.clone(), CostModel::free()).unwrap();
    let (r_flat, m_flat) = flat.execute(&plan).unwrap();
    flat.shutdown().unwrap();

    // Tree with fanout 4: the root receives one pre-merged H per mid-tier.
    let tree = TieredWarehouse::launch(catalogs, 4, CostModel::free()).unwrap();
    let (r_tree, m_tree) = tree.execute(&plan).unwrap();
    tree.shutdown().unwrap();

    assert_eq!(r_flat.sorted(), r_tree.sorted());
    // The tree's root-link upstream tuple count is smaller: per round, at
    // most 2 merged fragments (≤ 2·|Q| rows) instead of 8 full-base
    // fragments (8·|Q| rows).
    assert!(
        m_tree.total_rows_up() < m_flat.total_rows_up(),
        "tree {} vs flat {}",
        m_tree.total_rows_up(),
        m_flat.total_rows_up()
    );
}

#[test]
fn tree_composes_with_row_blocking() {
    let (table, _, catalogs) = setup(600, 6);
    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query(), &full).unwrap().sorted();

    let tw = TieredWarehouse::launch(catalogs, 3, CostModel::free()).unwrap();
    let plan = DistPlan::unoptimized(query()).with_block_rows(10);
    let (result, _) = tw.execute(&plan).unwrap();
    tw.shutdown().unwrap();
    assert_eq!(result.sorted(), expected);
}

#[test]
fn tree_ship_all_baseline_works() {
    let (table, _, catalogs) = setup(400, 4);
    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query(), &full).unwrap().sorted();

    let tw = TieredWarehouse::launch(catalogs, 2, CostModel::free()).unwrap();
    // The root's ship-all goes through the mid-tiers, which union raw data.
    let (result, metrics) = tw.execute_ship_all(&query()).unwrap();
    assert_eq!(result.sorted(), expected);
    // 400 detail tuples crossed the root link.
    assert_eq!(metrics.total_rows_up(), 400);
    tw.shutdown().unwrap();
}

/// Everything at once: tree topology, row blocking, site parallelism, and
/// every optimizer flag — one combined stress configuration.
#[test]
fn kitchen_sink_configuration() {
    let (table, parts, catalogs) = setup(1200, 6);
    let dist = DistributionInfo::from_partitioning(&parts);
    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query(), &full).unwrap().sorted();

    let (plan, _) = plan_query(&query(), &dist, OptFlags::all()).unwrap();
    let plan = plan.with_block_rows(7).with_site_parallelism(3);

    let tw = TieredWarehouse::launch(catalogs, 2, CostModel::lan_2002()).unwrap();
    for _ in 0..3 {
        let (result, _) = tw.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected);
    }
    tw.shutdown().unwrap();
}

#[test]
fn launch_guards() {
    assert!(TieredWarehouse::launch(vec![], 2, CostModel::free()).is_err());
    let (_, _, catalogs) = setup(10, 2);
    assert!(TieredWarehouse::launch(catalogs, 0, CostModel::free()).is_err());
}
