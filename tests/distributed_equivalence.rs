//! Theorem 3, executably: Alg. GMDJDistribEval computes the same result as
//! centralized evaluation — for every optimizer flag combination, every
//! partitioning shape, and randomized data.

use std::collections::HashMap;

use skalla::prelude::*;
use skalla::tpcr;

/// Deterministic xorshift for data generation (independent of `rand`
/// versions).
struct Xs(u64);
impl Xs {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> i64 {
        (self.next() % n) as i64
    }
}

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([
        ("sas", DataType::Int64),
        ("das", DataType::Int64),
        ("nb", DataType::Int64),
    ])
    .unwrap()
    .into_arc()
}

fn random_flow(seed: u64, rows: usize, sas_card: u64, das_card: u64) -> Table {
    let mut rng = Xs(seed | 1);
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::Int(rng.below(sas_card)),
                Value::Int(rng.below(das_card)),
                Value::Int(rng.below(10_000)),
            ]
        })
        .collect();
    Table::from_rows(flow_schema(), &rows).unwrap()
}

fn example1_query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    skalla::planner::parse_query(
        "BASE DISTINCT sas, das FROM flow;
         MD COUNT(*) AS cnt1, SUM(nb) AS sum1 WHERE b.sas = r.sas AND b.das = r.das;
         MD COUNT(*) AS cnt2 WHERE b.sas = r.sas AND b.das = r.das
                               AND r.nb >= b.sum1 / b.cnt1;",
        &schemas,
    )
    .unwrap()
}

fn catalogs_for(parts: &Partitioning) -> Vec<Catalog> {
    parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect()
}

fn all_flag_combos() -> Vec<OptFlags> {
    let mut out = Vec::new();
    for bits in 0..16u32 {
        out.push(OptFlags {
            coalesce: bits & 1 != 0,
            site_group_reduction: bits & 2 != 0,
            coord_group_reduction: bits & 4 != 0,
            sync_reduction: bits & 8 != 0,
        });
    }
    out
}

#[test]
fn every_flag_combo_matches_centralized_on_partition_attribute() {
    let table = random_flow(7, 400, 12, 6);
    let parts = partition_by_hash(&table, 0, 3).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);
    let query = example1_query();

    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    for flags in all_flag_combos() {
        let (plan, _) = plan_query(&query, &dist, flags).unwrap();
        let (result, _) = wh.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected, "flags {flags:?} diverged");
    }
    wh.shutdown().unwrap();
}

#[test]
fn every_flag_combo_matches_centralized_without_partition_attribute() {
    // Row-position split: sas values overlap across sites, so Corollary 1
    // must not fire — but whatever the planner decides must stay correct.
    let table = random_flow(13, 300, 10, 5);
    let idx: Vec<u32> = (0..table.len() as u32).collect();
    let (a, b) = idx.split_at(idx.len() / 2);
    let parts = Partitioning {
        parts: vec![table.take(a), table.take(b)],
        partition_col: None,
    };
    let dist = DistributionInfo::from_partitioning(&parts);
    let query = example1_query();

    let mut full = Catalog::new();
    full.register("flow", table.clone());
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    for flags in all_flag_combos() {
        let (plan, _) = plan_query(&query, &dist, flags).unwrap();
        let (result, _) = wh.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected, "flags {flags:?} diverged");
    }
    wh.shutdown().unwrap();
}

#[test]
fn proposition2_with_overlapping_groups_is_correct() {
    // Prop. 2 (base-sync elimination) must merge the same group arriving
    // from several sites. Group on das while partitioning on sas: every
    // site holds most das values.
    let table = random_flow(99, 500, 8, 4);
    let parts = partition_by_hash(&table, 0, 4).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    let query = skalla::planner::parse_query(
        "BASE DISTINCT das FROM flow;
         MD COUNT(*) AS c1, AVG(nb) AS a1 WHERE b.das = r.das;
         MD COUNT(*) AS c2 WHERE b.das = r.das AND r.nb >= b.a1;",
        &schemas,
    )
    .unwrap();

    let flags = OptFlags {
        sync_reduction: true,
        ..OptFlags::none()
    };
    let (plan, report) = plan_query(&query, &dist, flags).unwrap();
    assert!(report.base_sync_eliminated, "Prop 2 should fire");
    assert!(report.local_only_rounds.is_empty(), "Cor 1 must not fire");

    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    let (result, _) = wh.execute(&plan).unwrap();
    assert_eq!(result.sorted(), expected);
    wh.shutdown().unwrap();
}

#[test]
fn varying_site_counts_agree() {
    let table = random_flow(21, 600, 20, 10);
    let query = example1_query();
    let mut full = Catalog::new();
    full.register("flow", table.clone());
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    for n in [1, 2, 5, 8] {
        let parts = partition_by_hash(&table, 0, n).unwrap();
        let dist = DistributionInfo::from_partitioning(&parts);
        let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
        for flags in [OptFlags::none(), OptFlags::all()] {
            let (plan, _) = plan_query(&query, &dist, flags).unwrap();
            let (result, _) = wh.execute(&plan).unwrap();
            assert_eq!(result.sorted(), expected, "{n} sites, flags {flags:?}");
        }
        wh.shutdown().unwrap();
    }
}

#[test]
fn empty_sites_are_handled() {
    // 6 sites for 3 distinct sas values: some sites hold no data at all.
    let table = random_flow(31, 100, 3, 3);
    let parts = partition_by_hash(&table, 0, 6).unwrap();
    assert!(
        parts.parts.iter().any(|p| p.is_empty()),
        "expected an empty site"
    );
    let dist = DistributionInfo::from_partitioning(&parts);
    let query = example1_query();

    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    for flags in [OptFlags::none(), OptFlags::all()] {
        let (plan, _) = plan_query(&query, &dist, flags).unwrap();
        let (result, _) = wh.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected, "flags {flags:?}");
    }
    wh.shutdown().unwrap();
}

#[test]
fn ship_all_baseline_agrees_on_tpcr() {
    let table = tpcr::generate(&tpcr::TpcrConfig::scale(0.05));
    let parts = tpcr::partition_by_nation(&table, 4).unwrap();
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("tpcr", p.clone());
            c
        })
        .collect();

    let query = {
        let md = GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("cnt"),
                AggSpec::avg(Expr::detail(tpcr::EXTENDEDPRICE_COL), "avg").unwrap(),
            ],
            Expr::base(0).eq(Expr::detail(tpcr::NATIONKEY_COL)),
        )]);
        GmdjExpr::new(
            BaseSpec::DistinctProject {
                cols: vec![tpcr::NATIONKEY_COL],
            },
            "tpcr",
            vec![md],
            vec![0],
        )
        .unwrap()
    };

    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    let (dist_result, _) = wh.execute(&DistPlan::unoptimized(query.clone())).unwrap();
    let (ship_result, _) = wh.execute_ship_all(&query).unwrap();
    assert_eq!(dist_result.sorted(), ship_result.sorted());
    wh.shutdown().unwrap();
}
