//! Relative-link integrity for the markdown documentation set.
//!
//! CI runs this as the docs job: every `[text](target)` link in the
//! repo-root and `docs/` markdown files whose target is a relative path
//! must point at a file that exists in the repository. External links
//! (`http://`, `https://`, `mailto:`) and in-page anchors (`#...`) are
//! out of scope; fragments on relative links (`FILE.md#section`) are
//! stripped before the existence check. Implemented with the standard
//! library only — no markdown or regex dependencies.

use std::path::{Path, PathBuf};

/// Markdown files covered by the link check: everything at the repo root
/// plus everything under `docs/`.
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    files.sort();
    assert!(
        files.iter().any(|p| p.ends_with("README.md")),
        "doc scan found no README.md — wrong root?"
    );
    files
}

/// Extract `](target)` link targets from one markdown file, skipping
/// fenced code blocks (``` ... ```), where example snippets may contain
/// link-shaped text that is not a real link.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            targets.push(tail[..close].to_string());
            rest = &tail[close + 1..];
        }
    }
    targets
}

#[test]
fn relative_doc_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    let mut checked = 0usize;

    for file in doc_files(root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
        let dir = file.parent().unwrap();
        for raw in link_targets(&text) {
            let target = raw.trim();
            if target.is_empty()
                || target.starts_with('#')
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            // `FILE.md#section` → `FILE.md`; keep pure-anchor links out
            // (handled above).
            let path_part = target.split('#').next().unwrap();
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            if !dir.join(path_part).exists() {
                broken.push(format!(
                    "{} -> {target}",
                    file.strip_prefix(root).unwrap_or(&file).display()
                ));
            }
        }
    }

    assert!(
        broken.is_empty(),
        "broken relative links:\n  {}",
        broken.join("\n  ")
    );
    // The doc set genuinely cross-links; a zero count means the parser
    // silently stopped matching, not that the docs are link-free.
    assert!(checked > 0, "link checker matched no relative links");
}
