//! Distributed evaluation of the classical OLAP query forms (data cube,
//! rollup, unpivot, multi-feature) built by `skalla-gmdj::olap` — the
//! constructs the paper's §1 motivates.

use skalla::gmdj::{
    build_cube_base, build_rollup_base, cube_expr, multi_feature_expr, rollup_expr, unpivot_expr,
};
use skalla::prelude::*;

fn sales() -> Table {
    let schema = Schema::from_pairs([
        ("region", DataType::Utf8),
        ("product", DataType::Utf8),
        ("amount", DataType::Int64),
    ])
    .unwrap()
    .into_arc();
    let regions = ["east", "west", "north"];
    let products = ["ale", "rye", "gin", "mead"];
    let rows: Vec<Vec<Value>> = (0..400)
        .map(|i| {
            vec![
                Value::str(regions[i % 3]),
                Value::str(products[i % 4]),
                Value::Int(((i * 37) % 100) as i64),
            ]
        })
        .collect();
    Table::from_rows(schema, &rows).unwrap()
}

fn distributed(table: &Table, expr: &GmdjExpr, name: &str, n_sites: usize) -> Relation {
    let parts = partition_by_hash(table, 0, n_sites).unwrap();
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register(name, p.clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    let (result, _) = wh.execute(&DistPlan::unoptimized(expr.clone())).unwrap();
    wh.shutdown().unwrap();
    result
}

fn centralized(table: &Table, expr: &GmdjExpr, name: &str) -> Relation {
    let mut c = Catalog::new();
    c.register(name, table.clone());
    eval_expr_centralized(expr, &c).unwrap()
}

#[test]
fn cube_distributed_matches_centralized() {
    let t = sales();
    let base = build_cube_base(&t, t.schema(), &[0, 1]).unwrap();
    // 3 regions × 4 products, all combos present: (3+1)(4+1) = 20 cells.
    assert_eq!(base.len(), 20);
    let expr = cube_expr(
        base,
        "sales",
        &[0, 1],
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::sum(Expr::detail(2), "total").unwrap(),
            AggSpec::avg(Expr::detail(2), "avg").unwrap(),
        ],
    )
    .unwrap();
    let expected = centralized(&t, &expr, "sales").sorted();
    for n in [1, 3] {
        assert_eq!(distributed(&t, &expr, "sales", n).sorted(), expected);
    }
    // The grand-total cell counts everything.
    let grand = expected
        .rows()
        .iter()
        .find(|r| r[0].is_null() && r[1].is_null())
        .unwrap();
    assert_eq!(grand[2], Value::Int(400));
}

#[test]
fn cube_cell_consistency() {
    // Sum of finest-granularity cells equals the grand total — the cube's
    // defining invariant.
    let t = sales();
    let base = build_cube_base(&t, t.schema(), &[0, 1]).unwrap();
    let expr = cube_expr(
        base,
        "sales",
        &[0, 1],
        vec![AggSpec::sum(Expr::detail(2), "total").unwrap()],
    )
    .unwrap();
    let out = centralized(&t, &expr, "sales");
    let grand: i64 = out
        .rows()
        .iter()
        .find(|r| r[0].is_null() && r[1].is_null())
        .unwrap()[2]
        .as_int()
        .unwrap();
    let finest: i64 = out
        .rows()
        .iter()
        .filter(|r| !r[0].is_null() && !r[1].is_null())
        .map(|r| r[2].as_int().unwrap())
        .sum();
    assert_eq!(grand, finest);
    // Each marginal also sums to the grand total.
    let by_region: i64 = out
        .rows()
        .iter()
        .filter(|r| !r[0].is_null() && r[1].is_null())
        .map(|r| r[2].as_int().unwrap())
        .sum();
    assert_eq!(grand, by_region);
}

#[test]
fn rollup_distributed_matches_centralized() {
    let t = sales();
    let base = build_rollup_base(&t, t.schema(), &[0, 1]).unwrap();
    // (ALL,ALL) + 3 regions + 12 full combos = 16 cells.
    assert_eq!(base.len(), 16);
    let expr = rollup_expr(
        base,
        "sales",
        &[0, 1],
        vec![AggSpec::max(Expr::detail(2), "mx").unwrap()],
    )
    .unwrap();
    let expected = centralized(&t, &expr, "sales").sorted();
    assert_eq!(distributed(&t, &expr, "sales", 4).sorted(), expected);
}

#[test]
fn unpivot_distributed_matches_centralized() {
    let t = sales();
    let (expr, base) = unpivot_expr(&t, t.schema(), "sales", &[0, 1]).unwrap();
    assert_eq!(base.len(), 7); // 3 regions + 4 products
    let expected = centralized(&t, &expr, "sales").sorted();
    assert_eq!(distributed(&t, &expr, "sales", 3).sorted(), expected);

    // Marginals per attribute sum to the table size.
    let region_total: i64 = expected
        .rows()
        .iter()
        .filter(|r| r[0] == Value::str("region"))
        .map(|r| r[2].as_int().unwrap())
        .sum();
    assert_eq!(region_total, 400);
}

#[test]
fn multi_feature_distributed_matches_centralized() {
    let t = sales();
    // Per region: min amount, then count of sales within 10 of the min,
    // then the max amount among those.
    let stage1 = (
        vec![AggSpec::min(Expr::detail(2), "mn").unwrap()],
        Expr::base(0).eq(Expr::detail(0)),
    );
    let stage2 = (
        vec![AggSpec::count_star("near_min")],
        Expr::base(0)
            .eq(Expr::detail(0))
            .and(Expr::detail(2).le(Expr::base(1).add(Expr::lit(10)))),
    );
    let stage3 = (
        vec![AggSpec::max(Expr::detail(2), "mx_near").unwrap()],
        Expr::base(0)
            .eq(Expr::detail(0))
            .and(Expr::detail(2).le(Expr::base(1).add(Expr::lit(10)))),
    );
    let expr = multi_feature_expr(vec![0], "sales", vec![stage1, stage2, stage3]).unwrap();
    let expected = centralized(&t, &expr, "sales").sorted();
    assert_eq!(distributed(&t, &expr, "sales", 3).sorted(), expected);
    assert_eq!(
        expected.schema().names(),
        vec!["region", "mn", "near_min", "mx_near"]
    );
}

#[test]
fn optimized_plans_handle_olap_forms() {
    // The planner must stay correct on cube-style (IS NULL OR =) conditions
    // even though they defeat the equality analyses.
    let t = sales();
    let parts = partition_by_hash(&t, 0, 3).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);
    let base = build_cube_base(&t, t.schema(), &[0, 1]).unwrap();
    let expr = cube_expr(base, "sales", &[0, 1], vec![AggSpec::count_star("cnt")]).unwrap();
    let expected = centralized(&t, &expr, "sales").sorted();
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("sales", p.clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    for flags in [OptFlags::none(), OptFlags::all()] {
        let (plan, _) = plan_query(&expr, &dist, flags).unwrap();
        let (result, _) = wh.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected, "flags {flags:?}");
    }
    wh.shutdown().unwrap();
}
