//! Differential tests for the out-of-core segment store (PR 9).
//!
//! The segment path must be *invisible* to query semantics: scanning a
//! table from compressed on-disk segments — with or without zone-map
//! pruning, whole or through a row window, serial or chunked — has to
//! produce bit-for-bit the answer of the in-memory evaluation. These
//! properties drive randomized tables through every encoding edge the
//! format has (NULL runs, `-0.0`/NaN/±∞ floats, RLE run boundaries,
//! dictionary strings, segment-edge row counts) and compare against the
//! in-memory evaluator, treating any diverging bit as a failure.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use skalla::expr::Expr;
use skalla::gmdj::{
    eval_gmdj_dual, eval_gmdj_dual_segments, eval_gmdj_sub, eval_gmdj_sub_segments, AggSpec,
    EvalOptions, GmdjBlock, GmdjOp,
};
use skalla::storage::{write_segments, SegmentFile, Table};
use skalla::types::{DataType, Relation, Schema, Value};

/// Unique scratch path per proptest case (cases run concurrently).
fn scratch_path(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "skalla-segtest-{tag}-{}-{n}.seg",
        std::process::id()
    ))
}

fn schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([
        ("k", DataType::Int64),
        ("f", DataType::Float64),
        ("s", DataType::Utf8),
        ("b", DataType::Bool),
    ])
    .unwrap()
    .into_arc()
}

/// A float generator biased toward the values that break naive codecs and
/// naive comparisons: negative zero, NaN, both infinities.
fn arb_float() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(-0.0f64),
        Just(0.0f64),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        -100.0f64..100.0,
        -1.0f64..1.0,
    ]
}

/// Rows generated as *runs* — `(len, k, f, s, b)` repeated `len` times —
/// so columns contain the repeated stretches the RLE and dictionary
/// encoders trigger on, with run boundaries landing at arbitrary offsets
/// relative to segment boundaries. `None` cells become NULLs.
fn arb_runs() -> impl Strategy<Value = Vec<Vec<Value>>> {
    let run = (
        1usize..6,
        0i64..4,
        prop::option::of(arb_float()),
        prop::option::of(0usize..3),
        any::<bool>(),
    );
    prop::collection::vec(run, 1..30).prop_map(|runs| {
        let mut rows = Vec::new();
        for (len, k, f, s, b) in runs {
            for _ in 0..len {
                rows.push(vec![
                    Value::Int(k),
                    f.map_or(Value::Null, Value::Float),
                    s.map_or(Value::Null, |i| Value::str(["ab", "cd", "ef"][i])),
                    Value::Bool(b),
                ]);
            }
        }
        rows
    })
}

/// Bit-strict relation comparison: floats must agree on raw bits (`Value`
/// equality identifies `-0.0` with `0.0` and NaN with itself, which would
/// mask codec bugs here). Panics propagate to proptest, which shrinks.
fn assert_bits_eq(a: &Relation, b: &Relation, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: row count");
    for (i, (ra, rb)) in a.rows().iter().zip(b.rows()).enumerate() {
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: row {i}: {va:?} vs {vb:?}")
                }
                _ => assert_eq!(va, vb, "{ctx}: row {i}"),
            }
        }
    }
}

/// COUNT + AVG(f) per distinct `k`, filtered by `f ≤ t` — the AVG carries
/// float state (sum + count), and the `f ≤ t` bound is what the zone maps
/// prune on.
fn filtered_op(t: f64) -> GmdjOp {
    GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("cnt"),
            AggSpec::avg(Expr::detail(1), "avg").unwrap(),
        ],
        Expr::base(0)
            .eq(Expr::detail(0))
            .and(Expr::detail(1).le(Expr::lit(t))),
    )])
}

proptest! {
    /// Writing a table as compressed segments and reading it back is the
    /// identity, bit for bit — NULL runs, NaN/-0.0/±∞ floats, dictionary
    /// strings, and every generated row count (including exact segment
    /// multiples) included.
    #[test]
    fn segment_round_trip_is_bit_exact(
        rows in arb_runs(),
        seg_rows in 1usize..24,
    ) {
        let table = Table::from_rows(schema(), &rows).unwrap();
        let path = scratch_path("roundtrip");
        let summary = write_segments(&path, &table, seg_rows).unwrap();
        let file = SegmentFile::open(&path).unwrap();

        prop_assert_eq!(summary.rows, table.len());
        prop_assert_eq!(file.total_rows(), table.len());
        prop_assert_eq!(file.num_segments(), table.len().div_ceil(seg_rows));
        let back = file.read_all().unwrap();
        drop(file);
        std::fs::remove_file(&path).ok();

        let decoded: Vec<Vec<Value>> = (0..back.len()).map(|i| back.row(i)).collect();
        let a = Relation::new(table.schema().clone(), rows).unwrap();
        let b = Relation::new(back.schema().clone(), decoded).unwrap();
        assert_bits_eq(&b, &a, "decoded table");
    }

    /// The segmented evaluator — pruned and unpruned — agrees bit for bit
    /// with the in-memory evaluator on a float-aggregating filtered query.
    /// Pruning on never skips a segment containing a matching row (else
    /// the aggregates would differ), and the scanned/pruned counters
    /// always account for every segment.
    #[test]
    fn segmented_eval_matches_in_memory(
        rows in arb_runs(),
        seg_rows in 1usize..24,
        t in -50.0f64..50.0,
    ) {
        let table = Table::from_rows(schema(), &rows).unwrap();
        let base = table.distinct_project(&[0]).unwrap();
        let op = filtered_op(t);
        let opts = EvalOptions { with_match_count: true, ..Default::default() };

        let path = scratch_path("eval");
        write_segments(&path, &table, seg_rows).unwrap();
        let file = SegmentFile::open(&path).unwrap();

        let (mem, _) = eval_gmdj_sub(&base, &table, table.schema(), &op, &opts).unwrap();
        for prune in [false, true] {
            let (seg, _, sc) =
                eval_gmdj_sub_segments(&base, &file, &op, &opts, prune, None).unwrap();
            assert_bits_eq(&seg.sorted(), &mem.sorted(), "sub-aggregate");
            prop_assert_eq!(
                (sc.scanned + sc.pruned) as usize,
                file.num_segments(),
                "every segment is either scanned or pruned"
            );
            if !prune {
                prop_assert_eq!(sc.pruned, 0);
            }
        }
        drop(file);
        std::fs::remove_file(&path).ok();
    }

    /// Scanning a row *window* of the segment file matches evaluating the
    /// same slice of the in-memory table — fragment addressing (skew
    /// splits, failover) must not change answers either.
    #[test]
    fn segmented_window_matches_in_memory_slice(
        rows in arb_runs(),
        seg_rows in 1usize..24,
        t in -50.0f64..50.0,
        cut in (0usize..97, 0usize..97),
    ) {
        let table = Table::from_rows(schema(), &rows).unwrap();
        let (mut lo, mut hi) = (cut.0 % (table.len() + 1), cut.1 % (table.len() + 1));
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let window = table.row_range(lo, hi).unwrap();
        let base = table.distinct_project(&[0]).unwrap();
        let op = filtered_op(t);
        let opts = EvalOptions::default();

        let path = scratch_path("window");
        write_segments(&path, &table, seg_rows).unwrap();
        let file = SegmentFile::open(&path).unwrap();

        let mem = eval_gmdj_dual(&base, &window, table.schema(), &op, &opts).unwrap();
        let (seg, _) =
            eval_gmdj_dual_segments(&base, &file, &op, &opts, true, Some((lo, hi))).unwrap();
        drop(file);
        std::fs::remove_file(&path).ok();

        assert_bits_eq(&seg.full.sorted(), &mem.full.sorted(), "windowed full");
        prop_assert_eq!(&seg.states, &mem.states, "windowed states");
        prop_assert_eq!(&seg.match_counts, &mem.match_counts, "windowed match counts");
    }
}

/// The chunked out-of-core scan reproduces the in-memory *parallel*
/// dispatch bit for bit: above the parallel threshold both paths cut the
/// scan at identical worker boundaries (which never align with segment
/// boundaries here) and merge partial states in identical order.
#[test]
fn parallel_segmented_scan_is_bit_exact() {
    let schema = schema();
    let rows: Vec<Vec<Value>> = (0..10_000)
        .map(|i| {
            vec![
                Value::Int(i % 7),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    // Sums of these are order-sensitive in f64: any
                    // re-association between chunks changes final bits.
                    Value::Float((i as f64) * 0.1 + 1.0 / ((i % 13 + 1) as f64))
                },
                Value::str(["ab", "cd", "ef"][(i % 3) as usize]),
                Value::Bool(i % 2 == 0),
            ]
        })
        .collect();
    let table = Table::from_rows(schema, &rows).unwrap();
    let base = table.distinct_project(&[0]).unwrap();
    let op = filtered_op(640.0);

    let path = scratch_path("parallel");
    write_segments(&path, &table, 769).unwrap(); // prime: no boundary ever aligns
    let file = SegmentFile::open(&path).unwrap();

    for par in [1usize, 3, 8] {
        let opts = EvalOptions {
            parallelism: par,
            ..Default::default()
        };
        let (mem, _) = eval_gmdj_sub(&base, &table, table.schema(), &op, &opts).unwrap();
        for prune in [false, true] {
            let (seg, _, _) =
                eval_gmdj_sub_segments(&base, &file, &op, &opts, prune, None).unwrap();
            assert_eq!(seg.sorted(), mem.sorted(), "par {par} prune {prune}");
            for (ra, rb) in seg.sorted().rows().iter().zip(mem.sorted().rows()) {
                for (va, vb) in ra.iter().zip(rb) {
                    if let (Value::Float(x), Value::Float(y)) = (va, vb) {
                        assert_eq!(x.to_bits(), y.to_bits(), "par {par} prune {prune}");
                    }
                }
            }
        }
    }
    drop(file);
    std::fs::remove_file(&path).ok();
}

/// Segment-edge row counts: exactly one segment, exactly full segments,
/// one row over, one row under, and a single-row table all round-trip and
/// evaluate identically.
#[test]
fn segment_edge_row_counts() {
    let schema = schema();
    for n in [1usize, 15, 16, 17, 32, 33] {
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| {
                vec![
                    Value::Int(i % 3),
                    Value::Float(-0.0),
                    Value::Null,
                    Value::Bool(false),
                ]
            })
            .collect();
        let table = Table::from_rows(schema.clone(), &rows).unwrap();
        let path = scratch_path("edge");
        write_segments(&path, &table, 16).unwrap();
        let file = SegmentFile::open(&path).unwrap();
        assert_eq!(file.num_segments(), n.div_ceil(16));
        let back = file.read_all().unwrap();
        let decoded: Vec<Vec<Value>> = (0..back.len()).map(|i| back.row(i)).collect();
        assert_eq!(decoded, rows);
        // -0.0 must survive with its sign bit.
        for i in 0..n {
            match back.column(1).get(i) {
                Value::Float(f) => assert!(f.to_bits() == (-0.0f64).to_bits()),
                v => panic!("expected float, got {v:?}"),
            }
        }

        let base = table.distinct_project(&[0]).unwrap();
        let op = filtered_op(1.0);
        let opts = EvalOptions::default();
        let (mem, _) = eval_gmdj_sub(&base, &table, table.schema(), &op, &opts).unwrap();
        let (seg, _, _) = eval_gmdj_sub_segments(&base, &file, &op, &opts, true, None).unwrap();
        assert_eq!(seg.sorted(), mem.sorted(), "n = {n}");
        drop(file);
        std::fs::remove_file(&path).ok();
    }
}
