//! Differential coverage for the sharded parallel synchronization
//! pipeline: the parallel merge must agree **bit-for-bit** with the serial
//! [`BaseResult`] path — 3VL nulls, `-0.0`, and float `AVG` merge order
//! included — across shard/worker counts and chunked (row-blocked)
//! replies, and must survive a lossy, duplicating network unchanged.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use skalla::core::{ShardedSync, SyncOptions, SyncOutput, SyncSpec, TieredWarehouse};
use skalla::expr::Expr;
use skalla::prelude::*;

// ---------------------------------------------------------------------------
// Shared shape: base key `k`, aggregates COUNT(*), SUM(float), AVG(float).
// Fragment rows carry the sub-aggregate state columns a site would ship:
// [k, cnt, sum (nullable), avg__sum, avg__count].
// ---------------------------------------------------------------------------

fn base_schema() -> Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64)])
        .unwrap()
        .into_arc()
}

fn base(groups: i64) -> Relation {
    Relation::new(
        base_schema(),
        (0..groups).map(|i| vec![Value::Int(i)]).collect(),
    )
    .unwrap()
}

fn specs() -> Vec<AggSpec> {
    vec![
        AggSpec::count_star("cnt"),
        AggSpec::sum(Expr::detail(1), "s").unwrap(),
        AggSpec::avg(Expr::detail(2), "a").unwrap(),
    ]
}

fn output_fields() -> Vec<Field> {
    vec![
        Field::new("cnt", DataType::Int64),
        Field::new("s", DataType::Float64),
        Field::new("a", DataType::Float64),
    ]
}

fn state_types() -> Vec<DataType> {
    vec![
        DataType::Int64,   // cnt
        DataType::Float64, // s
        DataType::Float64, // a__sum
        DataType::Int64,   // a__count
    ]
}

fn frag_schema() -> Arc<Schema> {
    Schema::from_pairs([
        ("k", DataType::Int64),
        ("cnt", DataType::Int64),
        ("s", DataType::Float64),
        ("a__sum", DataType::Float64),
        ("a__count", DataType::Int64),
    ])
    .unwrap()
    .into_arc()
}

/// One generated fragment row: (key, count, sum-state, avg-sum, avg-count).
type FragRow = (i64, i64, Option<f64>, f64, i64);

fn frag(rows: &[FragRow]) -> Relation {
    Relation::new(
        frag_schema(),
        rows.iter()
            .map(|&(k, c, s, asum, acnt)| {
                vec![
                    Value::Int(k),
                    Value::Int(c),
                    s.map(Value::Float).unwrap_or(Value::Null),
                    Value::Float(asum),
                    Value::Int(acnt),
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn sharded(opts: SyncOptions, allow_new: bool, seed: Option<&Relation>) -> ShardedSync {
    ShardedSync::new(
        SyncSpec {
            base_schema: base_schema(),
            key_cols: vec![0],
            specs: specs(),
            state_types: state_types(),
            output: SyncOutput::Finalized(output_fields()),
            allow_new,
        },
        seed,
        opts,
    )
    .unwrap()
}

/// Strict equality: schemas match and every float matches by bit pattern
/// (`Value`'s `PartialEq` identifies `-0.0` with `0.0`; this does not).
fn assert_rows_bits_eq(a: &Relation, b: &Relation, ctx: &str) {
    assert_eq!(a.schema().names(), b.schema().names(), "{ctx}: schema");
    assert_eq!(a.len(), b.len(), "{ctx}: row count");
    for (i, (ra, rb)) in a.rows().iter().zip(b.rows()).enumerate() {
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: row {i}: {va:?} vs {vb:?}")
                }
                _ => assert_eq!(va, vb, "{ctx}: row {i}"),
            }
        }
    }
}

/// Floats whose addition is order-sensitive in bits, plus signed zeros.
fn arb_float() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(-0.0f64),
        Just(0.0f64),
        Just(0.1f64),
        Just(0.2f64),
        Just(1e16),
        Just(-1e16),
        Just(1.0),
        -100.0f64..100.0,
    ]
}

fn arb_frag_rows(groups: i64) -> impl Strategy<Value = Vec<FragRow>> {
    prop::collection::vec(
        (
            0..groups,
            0..5i64,
            prop::option::of(arb_float()),
            arb_float(),
            1..4i64,
        ),
        0..32,
    )
}

/// A round's worth of chunked replies (row blocking): each inner vec is
/// one fragment chunk as `merge_fragment` / `merge_chunk` would see it.
fn arb_chunks(groups: i64) -> impl Strategy<Value = Vec<Vec<FragRow>>> {
    prop::collection::vec(arb_frag_rows(groups), 1..6)
}

const GROUPS: i64 = 12;

/// (workers, shards) pairs covering worker counts {1, 2, 4, 8}, the
/// single-shard layout, workers > shards (clamped to the shard count), and
/// a non-power-of-two shard request (rounded up by the engine).
const LAYOUTS: [(usize, usize); 7] = [(1, 1), (2, 2), (4, 4), (8, 16), (4, 1), (8, 2), (3, 7)];

/// The engine rounds shard requests up to a power of two and clamps the
/// worker count to the shard count; tests assert against these effective
/// values, not the raw request.
fn effective(workers: usize, shards: usize) -> (usize, usize) {
    let s = shards.max(1).next_power_of_two();
    (workers.max(1).min(s), s)
}

proptest! {
    /// Seeded (Theorem 1) mode: every chunk merges into known groups.
    #[test]
    fn sharded_matches_serial_seeded(chunks in arb_chunks(GROUPS)) {
        let b = base(GROUPS);
        let mut serial =
            BaseResult::from_base(&b, &[0], specs(), output_fields()).unwrap();
        for c in &chunks {
            serial.merge_fragment(&frag(c), false).unwrap();
        }
        let expected = serial.finalize().unwrap();

        for (workers, shards) in LAYOUTS {
            let opts = SyncOptions {
                workers,
                shards,
                queue_batches: 2,
                flush_rows: 16,
                flush_rows_max: 64,
            };
            let mut x = sharded(opts, false, Some(&b));
            for c in &chunks {
                x.merge_chunk(frag(c)).unwrap();
            }
            let (got, stats) = x.finish().unwrap();
            let (ew, es) = effective(workers, shards);
            prop_assert_eq!(stats.workers, ew);
            prop_assert_eq!(stats.shards, es);
            assert_rows_bits_eq(&got, &expected, &format!("{workers}w/{shards}s"));
        }
    }

    /// Empty (Proposition 2) mode: groups are created at first sight, and
    /// the output must reproduce the serial insertion order exactly.
    #[test]
    fn sharded_matches_serial_empty_mode(chunks in arb_chunks(GROUPS)) {
        let mut serial =
            BaseResult::empty(base_schema(), &[0], specs(), output_fields());
        for c in &chunks {
            serial.merge_fragment(&frag(c), true).unwrap();
        }
        let expected = serial.finalize().unwrap();

        for (workers, shards) in LAYOUTS {
            let opts = SyncOptions {
                workers,
                shards,
                queue_batches: 2,
                flush_rows: 16,
                flush_rows_max: 64,
            };
            let mut x = sharded(opts, true, None);
            for c in &chunks {
                x.merge_chunk(frag(c)).unwrap();
            }
            let (got, _) = x.finish().unwrap();
            assert_rows_bits_eq(&got, &expected, &format!("{workers}w/{shards}s"));
        }
    }

    /// Chunk boundaries are invisible: merging row-by-row chunks equals
    /// merging one big fragment, serial and sharded alike.
    #[test]
    fn chunking_is_transparent(rows in arb_frag_rows(GROUPS)) {
        let b = base(GROUPS);
        let mut serial =
            BaseResult::from_base(&b, &[0], specs(), output_fields()).unwrap();
        serial.merge_fragment(&frag(&rows), false).unwrap();
        let expected = serial.finalize().unwrap();

        let mut x = sharded(SyncOptions::for_workers(3), false, Some(&b));
        for row in &rows {
            x.merge_chunk(frag(std::slice::from_ref(row))).unwrap();
        }
        let (got, _) = x.finish().unwrap();
        assert_rows_bits_eq(&got, &expected, "row-at-a-time chunks");
    }

    /// Fault-injected rejection is differential: corrupt chunks (a
    /// type-invalid state column mid-chunk) interleaved at arbitrary
    /// positions are rejected all-or-nothing at every layout, so the final
    /// result is bit-identical to a serial merge of only the good chunks.
    #[test]
    fn rejected_chunks_leave_no_trace(
        chunks in arb_chunks(GROUPS),
        bad_before in prop::collection::vec(any::<bool>(), 6..7),
    ) {
        let b = base(GROUPS);
        let mut serial =
            BaseResult::from_base(&b, &[0], specs(), output_fields()).unwrap();
        for c in &chunks {
            serial.merge_fragment(&frag(c), false).unwrap();
        }
        let expected = serial.finalize().unwrap();

        // A chunk whose first row is valid but whose second has a
        // non-numeric state column: the router must reject it without
        // letting the valid first row through.
        let corrupt = || {
            Relation::new(
                frag_schema(),
                vec![
                    vec![
                        Value::Int(1),
                        Value::Int(1),
                        Value::Float(1.0),
                        Value::Float(1.0),
                        Value::Int(1),
                    ],
                    vec![
                        Value::Int(2),
                        Value::Str("oops".into()),
                        Value::Null,
                        Value::Float(0.0),
                        Value::Int(1),
                    ],
                ],
            )
            .unwrap()
        };

        for (workers, shards) in LAYOUTS {
            let opts = SyncOptions {
                workers,
                shards,
                queue_batches: 2,
                flush_rows: 16,
                flush_rows_max: 64,
            };
            let mut x = sharded(opts, false, Some(&b));
            for (i, c) in chunks.iter().enumerate() {
                if bad_before.get(i).copied().unwrap_or(false) {
                    prop_assert!(x.merge_chunk(corrupt()).is_err());
                }
                x.merge_chunk(frag(c)).unwrap();
            }
            let (got, _) = x.finish().unwrap();
            assert_rows_bits_eq(&got, &expected, &format!("{workers}w/{shards}s bad chunks"));
        }
    }
}

/// A rejected chunk must leave every shard untouched (all-or-nothing), and
/// the engine must stay usable for subsequent good chunks.
#[test]
fn rejected_chunk_is_all_or_nothing() {
    let b = base(4);
    let good = vec![(0, 2, Some(1.5), 2.5, 1), (3, 1, None, -0.5, 2)];

    // Reference: serial merge of only the good chunk.
    let mut serial = BaseResult::from_base(&b, &[0], specs(), output_fields()).unwrap();
    serial.merge_fragment(&frag(&good), false).unwrap();
    let expected = serial.finalize().unwrap();

    let mut x = sharded(SyncOptions::for_workers(2), false, Some(&b));

    // Wrong arity is rejected before any row is routed.
    let narrow = Relation::new(base_schema(), vec![vec![Value::Int(0)]]).unwrap();
    let err = x.merge_chunk(narrow).unwrap_err().to_string();
    assert!(err.contains("expected 5"), "unexpected error: {err}");

    // A type-invalid state column mid-chunk rejects the whole chunk.
    let bad_type = Relation::new(
        frag_schema(),
        vec![
            vec![
                Value::Int(1),
                Value::Int(1),
                Value::Float(1.0),
                Value::Float(1.0),
                Value::Int(1),
            ],
            vec![
                Value::Int(2),
                Value::Str("oops".into()),
                Value::Null,
                Value::Float(0.0),
                Value::Int(1),
            ],
        ],
    )
    .unwrap();
    assert!(x.merge_chunk(bad_type).is_err());

    // The engine is not poisoned: the good chunk still merges, and the
    // result shows no trace of the rejected chunks' first rows.
    x.merge_chunk(frag(&good)).unwrap();
    let (got, _) = x.finish().unwrap();
    assert_rows_bits_eq(&got, &expected, "after rejected chunks");
}

/// Chunks large enough to take the split validate+hash pass (the router
/// keeps the lower half, a scoped helper runs the upper half) behave
/// exactly like small ones: a corrupt row hiding in the *second* half
/// rejects the whole chunk all-or-nothing, and a clean large chunk merges
/// bit-identically to the serial path.
#[test]
fn large_chunk_split_validation_is_all_or_nothing() {
    const BIG: usize = 4096; // comfortably past the parallel-pass floor
    let b = base(GROUPS);
    let good: Vec<FragRow> = (0..BIG)
        .map(|i: usize| {
            let asum = if i.is_multiple_of(7) {
                -0.0
            } else {
                i as f64 * 0.01
            };
            (i as i64 % GROUPS, 1, Some(i as f64 * 0.1 - 9.0), asum, 1)
        })
        .collect();

    let mut serial = BaseResult::from_base(&b, &[0], specs(), output_fields()).unwrap();
    serial.merge_fragment(&frag(&good), false).unwrap();
    let expected = serial.finalize().unwrap();

    let mut x = sharded(SyncOptions::for_workers(4), false, Some(&b));

    // Corrupt a row deep in the upper half: the helper thread's error must
    // reject the chunk without any lower-half row leaking through.
    let mut rows: Vec<Vec<Value>> = frag(&good).rows().to_vec();
    rows[BIG - 3][1] = Value::Str("oops".into());
    let bad = Relation::new(frag_schema(), rows).unwrap();
    assert!(x.merge_chunk(bad).is_err());

    // Corrupt a row in the lower half too: same rejection, reported from
    // the router's own half.
    let mut rows: Vec<Vec<Value>> = frag(&good).rows().to_vec();
    rows[5][1] = Value::Str("oops".into());
    let bad = Relation::new(frag_schema(), rows).unwrap();
    assert!(x.merge_chunk(bad).is_err());

    // The engine is untouched: the clean large chunk merges bit-for-bit.
    x.merge_chunk(frag(&good)).unwrap();
    let (got, _) = x.finish().unwrap();
    assert_rows_bits_eq(&got, &expected, "large split-validated chunk");
}

/// In seeded mode an unknown group key is a query-fatal error, same as the
/// serial path — it surfaces at (or before) `finish`.
#[test]
fn unknown_group_key_is_fatal() {
    let b = base(4);
    let mut x = sharded(SyncOptions::for_workers(2), false, Some(&b));
    let stray = vec![(99, 1, Some(1.0), 1.0, 1)];
    // The worker detects the unknown key; the error surfaces either on a
    // later merge_chunk (poisoned) or at finish.
    let res = x
        .merge_chunk(frag(&stray))
        .and_then(|_| x.finish().map(|_| ()));
    let err = res.unwrap_err().to_string();
    assert!(err.contains("unknown group key"), "unexpected error: {err}");
}

// ---------------------------------------------------------------------------
// End-to-end: the parallel coordinator pipeline under a faulty network.
// ---------------------------------------------------------------------------

fn flow_schema() -> Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Float64)])
        .unwrap()
        .into_arc()
}

fn flow_table(rows: usize) -> Table {
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            let v = if i % 11 == 0 {
                -0.0
            } else {
                (i as f64) * 0.1 - 9.0
            };
            vec![Value::Int((i % 13) as i64), Value::Float(v)]
        })
        .collect();
    Table::from_rows(flow_schema(), &data).unwrap()
}

fn flow_query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    parse_query(
        "BASE DISTINCT k FROM flow;
         MD COUNT(*) AS c, SUM(v) AS s, AVG(v) AS a WHERE b.k = r.k;
         MD COUNT(*) AS hi WHERE b.k = r.k AND r.v >= b.a;",
        &schemas,
    )
    .unwrap()
}

fn flow_catalogs(rows: usize, sites: usize) -> Vec<Catalog> {
    let parts = partition_by_hash(&flow_table(rows), 0, sites).unwrap();
    parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect()
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_millis(250),
        max_retries: 8,
        backoff: 1.5,
        degraded: DegradedMode::Fail,
    }
}

/// Drop + duplicate faults with row blocking and a 4-worker coordinator:
/// retransmission and chunk-sequence dedup must feed the parallel pipeline
/// each chunk exactly once, reproducing the fault-free serial answer.
#[test]
fn faulty_network_parallel_pipeline_matches_serial() {
    let serial_wh = DistributedWarehouse::launch(flow_catalogs(260, 4), CostModel::free()).unwrap();
    let (serial, _) = serial_wh
        .execute(&DistPlan::unoptimized(flow_query()))
        .unwrap();
    serial_wh.shutdown().unwrap();

    let faults = FaultPlan::seeded(0x5A4D)
        .with_drop_rate(0.15)
        .with_dup_rate(0.3);
    let wh =
        DistributedWarehouse::launch_with_faults(flow_catalogs(260, 4), CostModel::free(), faults)
            .unwrap();
    let plan = DistPlan::unoptimized(flow_query())
        .with_block_rows(16)
        .with_coord_parallelism(4)
        .with_retry_policy(fast_retry());
    let (parallel, metrics) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();

    assert_rows_bits_eq(&parallel.sorted(), &serial.sorted(), "faulty parallel");
    assert_eq!(metrics.sync_workers(), 4);
    assert!(metrics.sync_shards() >= 4);
    assert!(metrics.summary().contains("sync: decode"));
}

/// Deterministic replay: same faults, same parallel plan, twice — the
/// pipeline's ordered merge must make the runs bit-for-bit identical.
#[test]
fn faulty_parallel_runs_are_deterministic() {
    let run = || {
        let faults = FaultPlan::seeded(0xBEEF)
            .with_drop_rate(0.2)
            .with_dup_rate(0.2);
        let wh = DistributedWarehouse::launch_with_faults(
            flow_catalogs(260, 4),
            CostModel::free(),
            faults,
        )
        .unwrap();
        let plan = DistPlan::unoptimized(flow_query())
            .with_block_rows(16)
            .with_coord_parallelism(3)
            .with_retry_policy(fast_retry());
        let (r, _) = wh.execute(&plan).unwrap();
        wh.shutdown().unwrap();
        r
    };
    let (a, b) = (run(), run());
    assert_rows_bits_eq(&a, &b, "deterministic replay");
}

/// The tiered topology reuses the engine for mid-tier pre-synchronization:
/// a parallel tree run must match the serial flat run exactly.
#[test]
fn parallel_mid_tier_presync_matches_flat() {
    let catalogs = flow_catalogs(300, 8);
    let flat = DistributedWarehouse::launch(catalogs.clone(), CostModel::free()).unwrap();
    let (expected, _) = flat.execute(&DistPlan::unoptimized(flow_query())).unwrap();
    flat.shutdown().unwrap();

    let tw = TieredWarehouse::launch(catalogs, 3, CostModel::free()).unwrap();
    let plan = DistPlan::unoptimized(flow_query())
        .with_block_rows(32)
        .with_coord_parallelism(4);
    let (result, _) = tw.execute(&plan).unwrap();
    tw.shutdown().unwrap();

    assert_rows_bits_eq(&result.sorted(), &expected.sorted(), "tiered parallel");
}
