//! Serving-layer end-to-end: concurrent TCP clients, fair scheduler
//! interleaving, and the result cache's correctness rules.
//!
//! The load-bearing claims, each checked bit-for-bit against a serial
//! or centralized baseline:
//!
//! * many concurrent sessions multiplexed over one warehouse answer
//!   every query exactly as a single serial session would;
//! * round-robin interleaving of [`skalla::core::QueryRun`]s stays exact
//!   even with fault injection (drops + retransmission) underneath;
//! * a query that degraded to partial coverage is *never* cached — a
//!   later identical query re-executes instead of replaying the gap.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use skalla::core::{QueryScheduler, SchedConfig};
use skalla::prelude::*;
use skalla::serve::{QueryOutcome, ServeClient, ServeConfig, Server};

// ---------------------------------------------------------------- TCP path

/// Distinct dashboard queries over the server's TPCR warehouse; each
/// `k` is a different plan fingerprint and a different answer.
fn tpcr_query(k: usize) -> String {
    format!(
        "BASE DISTINCT nationname FROM tpcr;
         MD COUNT(*) AS orders, SUM(extendedprice) AS rev
            WHERE b.nationname = r.nationname AND r.nationkey >= {k};"
    )
}

#[test]
fn tcp_clients_match_serial_baseline() {
    const CLIENTS: usize = 8;
    const POOL: usize = 6;

    let server = Server::start(ServeConfig {
        scale: 0.02,
        sites: 3,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // Serial baseline over one session, then clear the cache so the
    // concurrent phase starts cold.
    let baseline: Arc<Vec<Relation>> = {
        let mut c = ServeClient::connect(addr).unwrap();
        let rels = (0..POOL)
            .map(|k| match c.query(&tpcr_query(k)).unwrap() {
                QueryOutcome::Done(reply) => reply.rows.sorted(),
                QueryOutcome::Busy => panic!("idle server answered Busy"),
            })
            .collect();
        c.invalidate().unwrap();
        Arc::new(rels)
    };

    let handles: Vec<_> = (0..CLIENTS)
        .map(|cid| {
            let baseline = baseline.clone();
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                for i in 0..POOL {
                    let k = (cid + i) % POOL;
                    let (reply, _busy) = client.query_with_retry(&tpcr_query(k), 64).unwrap();
                    assert_eq!(
                        reply.rows.sorted(),
                        baseline[k],
                        "client {cid} got a different answer for query {k}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = server.stats();
    assert_eq!(stats.sched.failed, 0);
    assert_eq!(
        stats.sched.completed,
        (POOL + CLIENTS * POOL) as u64,
        "baseline + storm queries must all complete"
    );
    assert!(
        stats.cache.hits > 0,
        "a repeated-query storm must hit the cache"
    );
    server.shutdown().unwrap();
}

#[test]
fn idle_session_is_disconnected_and_slot_freed() {
    // An idle or stalled client must not pin its session thread forever:
    // after `session_read_timeout` of silence between requests the server
    // drops the connection, and a fresh client is still served normally.
    let server = Server::start(ServeConfig {
        scale: 0.01,
        sites: 2,
        session_read_timeout: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let mut idler = ServeClient::connect(addr).unwrap();
    // The session works while the client is active...
    match idler.query(&tpcr_query(0)).unwrap() {
        QueryOutcome::Done(_) => {}
        QueryOutcome::Busy => panic!("idle server answered Busy"),
    }

    // ...then goes silent past the timeout. The server must hang up, so
    // the next request on this connection fails instead of being served.
    thread::sleep(Duration::from_millis(800));
    assert!(
        idler.query(&tpcr_query(1)).is_err(),
        "server kept serving a session that idled past the read timeout"
    );

    // The disconnect is clean: a new connection gets a fresh session and
    // correct answers.
    let mut fresh = ServeClient::connect(addr).unwrap();
    match fresh.query(&tpcr_query(1)).unwrap() {
        QueryOutcome::Done(_) => {}
        QueryOutcome::Busy => panic!("idle server answered Busy"),
    }

    let stats = server.stats();
    assert_eq!(stats.sessions, 2, "both connections opened sessions");
    assert_eq!(stats.sched.failed, 0);
    server.shutdown().unwrap();
}

// -------------------------------------------------------- scheduler path

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Int64)])
        .unwrap()
        .into_arc()
}

fn flow_table() -> Table {
    let rows: Vec<Vec<Value>> = (0..420)
        .map(|i| {
            vec![
                Value::Int((i % 7) as i64),
                Value::Int((i * 13 % 997) as i64),
            ]
        })
        .collect();
    Table::from_rows(flow_schema(), &rows).unwrap()
}

/// Two synchronized rounds, with a per-query threshold so every `t`
/// yields a distinct plan and answer.
fn flow_query(t: usize) -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    parse_query(
        &format!(
            "BASE DISTINCT k FROM flow;
             MD COUNT(*) AS c, SUM(v) AS s WHERE b.k = r.k AND r.v >= {t};
             MD COUNT(*) AS hi WHERE b.k = r.k AND r.v >= b.s / b.c;"
        ),
        &schemas,
    )
    .unwrap()
}

fn flow_catalogs() -> Vec<Catalog> {
    partition_by_hash(&flow_table(), 0, 4)
        .unwrap()
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect()
}

fn centralized(t: usize) -> Relation {
    let mut full = Catalog::new();
    full.register("flow", flow_table());
    eval_expr_centralized(&flow_query(t), &full)
        .unwrap()
        .sorted()
}

#[test]
fn interleaved_scheduler_is_exact_under_drop_faults() {
    // A lossy fabric: 15% of messages dropped, masked by retransmission.
    // (Delay faults are excluded on purpose: a delayed duplicate from an
    // interleaved query's earlier round could outlive its epoch — see
    // docs/SERVING.md, "Known limits".)
    let faults = FaultPlan::seeded(7).with_drop_rate(0.15);
    let wh = Arc::new(
        DistributedWarehouse::launch_with_faults(flow_catalogs(), CostModel::free(), faults)
            .unwrap(),
    );
    // Cache off: every submission must actually execute and interleave.
    let sched = Arc::new(QueryScheduler::launch(
        wh.clone(),
        SchedConfig {
            queue_depth: 16,
            max_interleave: 4,
            cache_capacity: 0,
        },
    ));

    let retry = RetryPolicy {
        deadline: Duration::from_millis(250),
        max_retries: 8,
        backoff: 1.5,
        degraded: DegradedMode::Fail,
    };
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let sched = sched.clone();
            let retry = retry.clone();
            thread::spawn(move || {
                let mut plan = DistPlan::unoptimized(flow_query(t));
                plan.retry = retry;
                let (rows, metrics) = sched.submit(plan).unwrap().wait().unwrap();
                assert_eq!(metrics.cache_hits, 0, "cache is disabled");
                assert_eq!(
                    rows.sorted(),
                    centralized(t),
                    "interleaved query {t} diverged from the centralized answer"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = sched.stats();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.failed, 0);

    Arc::try_unwrap(sched).ok().unwrap().shutdown().unwrap();
    Arc::try_unwrap(wh).ok().unwrap().shutdown().unwrap();
}

#[test]
fn partial_coverage_is_never_cached_by_scheduler() {
    // Site 2 is dead from the first message; DegradedMode::Partial lets
    // queries answer from the three survivors with coverage 3/4.
    let faults = FaultPlan::seeded(1).with_crash(2, 0);
    let wh = Arc::new(
        DistributedWarehouse::launch_with_faults(flow_catalogs(), CostModel::free(), faults)
            .unwrap(),
    );
    let sched = Arc::new(QueryScheduler::launch(
        wh.clone(),
        SchedConfig {
            queue_depth: 4,
            max_interleave: 2,
            cache_capacity: 16,
        },
    ));

    let mut plan = DistPlan::unoptimized(flow_query(0));
    plan.retry = RetryPolicy {
        deadline: Duration::from_millis(100),
        max_retries: 1,
        backoff: 1.0,
        degraded: DegradedMode::Partial,
    };

    let (first_rows, first) = sched.submit(plan.clone()).unwrap().wait().unwrap();
    let cov = first.coverage.expect("degraded run reports coverage");
    assert!(!cov.is_complete(), "the crash must degrade coverage");

    // The identical plan must execute again — a partial answer must
    // never be replayed as an exact one.
    let (second_rows, second) = sched.submit(plan).unwrap().wait().unwrap();
    assert_eq!(second.cache_hits, 0, "partial result was served from cache");
    assert!(second.num_rounds() > 0, "second run must re-execute");
    assert_eq!(second_rows.sorted(), first_rows.sorted());

    let cache = sched.cache_stats();
    assert_eq!(cache.hits, 0);
    assert_eq!(cache.rejected_partial, 2);
    assert_eq!(cache.entries, 0, "nothing may be cached");

    Arc::try_unwrap(sched).ok().unwrap().shutdown().unwrap();
    Arc::try_unwrap(wh).ok().unwrap().shutdown().unwrap();
}
