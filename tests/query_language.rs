//! End-to-end checks of the textual query language: parsed queries must
//! behave identically to hand-built algebra, centralized and distributed.

use std::collections::HashMap;
use std::sync::Arc;

use skalla::prelude::*;

fn schema() -> Arc<Schema> {
    Schema::from_pairs([
        ("sas", DataType::Int64),
        ("das", DataType::Int64),
        ("nb", DataType::Int64),
        ("proto", DataType::Utf8),
    ])
    .unwrap()
    .into_arc()
}

fn table() -> Table {
    let protos = ["tcp", "udp", "icmp"];
    let rows: Vec<Vec<Value>> = (0..300)
        .map(|i| {
            vec![
                Value::Int(i % 7),
                Value::Int(i % 3),
                Value::Int((i * 17) % 1500),
                Value::str(protos[(i % 3) as usize]),
            ]
        })
        .collect();
    Table::from_rows(schema(), &rows).unwrap()
}

fn schemas() -> HashMap<String, Arc<Schema>> {
    HashMap::from([("flow".to_string(), schema())])
}

#[test]
fn parsed_equals_hand_built() {
    let parsed = parse_query(
        "BASE DISTINCT sas FROM flow;
         MD COUNT(*) AS c, SUM(nb) AS s WHERE b.sas = r.sas AND r.proto = 'tcp';",
        &schemas(),
    )
    .unwrap();

    let hand = GmdjExpr::new(
        BaseSpec::DistinctProject { cols: vec![0] },
        "flow",
        vec![GmdjOp::new(vec![GmdjBlock::new(
            vec![
                AggSpec::count_star("c"),
                AggSpec::sum(Expr::detail(2), "s").unwrap(),
            ],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::detail(3).eq(Expr::lit("tcp"))),
        )])],
        vec![0],
    )
    .unwrap();

    assert_eq!(parsed, hand);
}

#[test]
fn parsed_query_runs_distributed() {
    let t = table();
    let parts = partition_by_hash(&t, 0, 3).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);
    let query = parse_query(
        "BASE DISTINCT sas, das FROM flow;
         MD COUNT(*) AS flows, AVG(nb) AS avg_nb
            WHERE b.sas = r.sas AND b.das = r.das;
         MD COUNT(*) AS heavy
            WHERE b.sas = r.sas AND b.das = r.das AND r.nb >= b.avg_nb;",
        &schemas(),
    )
    .unwrap();

    let mut full = Catalog::new();
    full.register("flow", t);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    for flags in [OptFlags::none(), OptFlags::all()] {
        let (plan, _) = plan_query(&query, &dist, flags).unwrap();
        let (result, _) = wh.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected);
    }
    wh.shutdown().unwrap();
}

#[test]
fn string_predicates_and_in_sets() {
    let t = table();
    let query = parse_query(
        "BASE DISTINCT proto FROM flow;
         MD COUNT(*) AS c, MAX(nb) AS mx
            WHERE b.proto = r.proto AND r.proto IN ('tcp', 'udp');",
        &schemas(),
    )
    .unwrap();
    let mut full = Catalog::new();
    full.register("flow", t);
    let out = eval_expr_centralized(&query, &full).unwrap().sorted();
    assert_eq!(out.len(), 3);
    // icmp group exists (it's in the base) but matched nothing.
    let icmp: Vec<_> = out
        .rows()
        .iter()
        .filter(|r| r[0] == Value::str("icmp"))
        .collect();
    assert_eq!(icmp[0][1], Value::Int(0));
    assert_eq!(icmp[0][2], Value::Null);
    let tcp: Vec<_> = out
        .rows()
        .iter()
        .filter(|r| r[0] == Value::str("tcp"))
        .collect();
    assert!(tcp[0][1].as_int().unwrap() > 0);
}

#[test]
fn arithmetic_in_aggregate_arguments() {
    // Revenue-style expression: SUM(nb * (1 - 0.1)).
    let t = table();
    let query = parse_query(
        "BASE DISTINCT sas FROM flow;
         MD SUM(r.nb * 0.9) AS discounted WHERE b.sas = r.sas;",
        &schemas(),
    )
    .unwrap();
    let mut full = Catalog::new();
    full.register("flow", t.clone());
    let out = eval_expr_centralized(&query, &full).unwrap();

    // Cross-check one group by hand.
    let g0: f64 = (0..t.len())
        .filter(|&i| t.column(0).get(i) == Value::Int(0))
        .map(|i| t.column(2).get(i).as_f64().unwrap() * 0.9)
        .sum();
    let row0: Vec<_> = out
        .rows()
        .iter()
        .filter(|r| r[0] == Value::Int(0))
        .collect();
    let measured = row0[0][1].as_f64().unwrap();
    assert!((measured - g0).abs() < 1e-6, "{measured} vs {g0}");
}
