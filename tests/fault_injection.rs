//! Fault injection end-to-end: the coordinator's deadline/retry/degradation
//! machinery must mask message drop, duplication, and delay completely, and
//! must handle site crashes according to the configured [`DegradedMode`] —
//! all deterministically under a fixed fault seed.

use std::collections::HashMap;
use std::time::Duration;

use skalla::core::TieredWarehouse;
use skalla::prelude::*;

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Int64)])
        .unwrap()
        .into_arc()
}

/// A small fact table with enough groups to give every site work.
fn table(rows: usize) -> Table {
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Int((i % 7) as i64), Value::Int(i as i64)])
        .collect();
    Table::from_rows(flow_schema(), &data).unwrap()
}

/// A two-operator query so execution spans the base round plus a
/// synchronized GMDJ round (several coordinator↔site exchanges).
fn query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    parse_query(
        "BASE DISTINCT k FROM flow;
         MD COUNT(*) AS c, SUM(v) AS s WHERE b.k = r.k;
         MD COUNT(*) AS hi WHERE b.k = r.k AND r.v >= b.s / b.c;",
        &schemas,
    )
    .unwrap()
}

/// Four per-site catalogs holding a hash partitioning of `table(rows)`.
fn catalogs(rows: usize) -> Vec<Catalog> {
    let parts = partition_by_hash(&table(rows), 0, 4).unwrap();
    parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect()
}

/// A retry policy tight enough for tests: dropped messages are retransmitted
/// after 250 ms rather than the default 10 s.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_millis(250),
        max_retries: 8,
        backoff: 1.5,
        degraded: DegradedMode::Fail,
    }
}

fn ground_truth() -> Relation {
    let mut full = Catalog::new();
    full.register("flow", table(280));
    eval_expr_centralized(&query(), &full).unwrap().sorted()
}

fn run_with_faults(faults: FaultPlan, retry: RetryPolicy) -> (Relation, ExecMetrics) {
    let wh =
        DistributedWarehouse::launch_with_faults(catalogs(280), CostModel::free(), faults).unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = retry;
    let (result, metrics) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();
    (result.sorted(), metrics)
}

#[test]
fn lossy_network_produces_exact_result() {
    // 20% of unreliable messages dropped on every link: retransmission must
    // recover every round and the result must match the fault-free run.
    let faults = FaultPlan::seeded(0xD05E).with_drop_rate(0.2);
    let (result, metrics) = run_with_faults(faults, fast_retry());
    assert_eq!(result, ground_truth());
    assert_eq!(
        metrics.coverage,
        Some(Coverage {
            responded: 4,
            total: 4
        })
    );
}

#[test]
fn lossy_runs_are_deterministic() {
    // Same seed, same topology, same traffic: two independent warehouses
    // must agree bit-for-bit on the answer.
    let faults = FaultPlan::seeded(0xD05E).with_drop_rate(0.2);
    let (a, _) = run_with_faults(faults.clone(), fast_retry());
    let (b, _) = run_with_faults(faults, fast_retry());
    assert_eq!(a, b);
}

#[test]
fn duplicated_messages_are_discarded() {
    // 40% duplication: duplicate replies must be dropped by sequence
    // numbers, duplicate requests deduplicated by the sites' reply cache.
    let faults = FaultPlan::seeded(0xD0B1E).with_dup_rate(0.4);
    let (result, _) = run_with_faults(faults, fast_retry());
    assert_eq!(result, ground_truth());
}

#[test]
fn delayed_and_reordered_messages_are_tolerated() {
    // Half of all receives are held back behind later traffic (reordering).
    // Epoch/round framing plus sequence numbers must keep the answer exact.
    let faults = FaultPlan::seeded(0xDE1A).with_delay_rate(0.5);
    let (result, _) = run_with_faults(faults, fast_retry());
    assert_eq!(result, ground_truth());
}

#[test]
fn everything_at_once_still_answers() {
    // Drop + duplicate + delay together, still a full-coverage exact answer.
    let faults = FaultPlan::seeded(0xA11)
        .with_drop_rate(0.15)
        .with_dup_rate(0.2)
        .with_delay_rate(0.3);
    let (result, metrics) = run_with_faults(faults, fast_retry());
    assert_eq!(result, ground_truth());
    assert!(metrics.coverage.unwrap().is_complete());
}

#[test]
fn crashed_site_fails_cleanly_naming_the_site() {
    // Site 2 (network node 2) is dead on arrival. Under DegradedMode::Fail
    // the query must error within the deadline budget and name the site.
    let faults = FaultPlan::seeded(1).with_crash(2, 0);
    let wh =
        DistributedWarehouse::launch_with_faults(catalogs(280), CostModel::free(), faults).unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = RetryPolicy {
        deadline: Duration::from_millis(100),
        max_retries: 1,
        backoff: 1.0,
        degraded: DegradedMode::Fail,
    };
    let start = std::time::Instant::now();
    let err = wh.execute(&plan).unwrap_err().to_string();
    assert!(err.contains("site 2"), "error should name the site: {err}");
    // Fail-fast: worst case is the initial window plus one retry window.
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "took {:?}",
        start.elapsed()
    );
    wh.shutdown().unwrap();
}

#[test]
fn degraded_partial_reports_coverage() {
    // Same crash, DegradedMode::Partial: the coordinator synchronizes the
    // three live sites and reports coverage 3/4 in the metrics.
    let faults = FaultPlan::seeded(1).with_crash(2, 0);
    let wh =
        DistributedWarehouse::launch_with_faults(catalogs(280), CostModel::free(), faults).unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = RetryPolicy {
        deadline: Duration::from_millis(100),
        max_retries: 1,
        backoff: 1.0,
        degraded: DegradedMode::Partial,
    };
    let (result, metrics) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();

    let cov = metrics.coverage.expect("partial run must report coverage");
    assert_eq!(
        cov,
        Coverage {
            responded: 3,
            total: 4
        }
    );
    assert!(!cov.is_complete());
    assert_eq!(cov.to_string(), "3/4");
    assert!(metrics.summary().contains("3/4"), "{}", metrics.summary());

    // The partial answer is exactly the centralized answer over the three
    // surviving partitions (site 2 owns catalog index 1).
    let parts = partition_by_hash(&table(280), 0, 4).unwrap();
    let mut survivors = TableBuilder::new(flow_schema());
    for (i, p) in parts.parts.iter().enumerate() {
        if i != 1 {
            for row in p.iter_rows() {
                survivors.push_row(&row).unwrap();
            }
        }
    }
    let mut partial_catalog = Catalog::new();
    partial_catalog.register("flow", survivors.finish());
    let expected = eval_expr_centralized(&query(), &partial_catalog)
        .unwrap()
        .sorted();
    assert_eq!(result.sorted(), expected);
}

#[test]
fn tree_leaf_crash_fails_cleanly_through_the_mid_tier() {
    // Four leaves under two mid-tiers (fanout 2): root 0, mids 1–2, leaves
    // 3–6. Leaf 4 (catalog 1, cluster of mid 1) is dead on arrival. The
    // mid-tier's recv deadline converts the hang into an Error reply, and
    // the root's ladder fails the query cleanly within the retry budget.
    let faults = FaultPlan::seeded(2).with_crash(4, 0);
    let tw =
        TieredWarehouse::launch_with_faults(catalogs(280), 2, CostModel::free(), faults).unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = RetryPolicy {
        deadline: Duration::from_millis(100),
        max_retries: 1,
        backoff: 1.0,
        degraded: DegradedMode::Fail,
    };
    let start = std::time::Instant::now();
    let err = tw.execute(&plan).unwrap_err().to_string();
    assert!(err.contains("site"), "error should name the path: {err}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "took {:?}",
        start.elapsed()
    );
    tw.shutdown().unwrap();
}

#[test]
fn tree_leaf_crash_degrades_to_the_surviving_cluster() {
    // Same crash under DegradedMode::Partial: the root drops mid-tier 1's
    // whole cluster (leaves 3–4, catalogs 0–1) and synchronizes the
    // surviving cluster — coverage 1/2 mid-tiers, answer exactly the
    // centralized result over the surviving partitions.
    let faults = FaultPlan::seeded(2).with_crash(4, 0);
    let tw =
        TieredWarehouse::launch_with_faults(catalogs(280), 2, CostModel::free(), faults).unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = RetryPolicy {
        deadline: Duration::from_millis(100),
        max_retries: 1,
        backoff: 1.0,
        degraded: DegradedMode::Partial,
    };
    let (result, metrics) = tw.execute(&plan).unwrap();
    tw.shutdown().unwrap();

    let cov = metrics.coverage.expect("partial run must report coverage");
    assert_eq!(
        cov,
        Coverage {
            responded: 1,
            total: 2
        }
    );

    let parts = partition_by_hash(&table(280), 0, 4).unwrap();
    let mut survivors = TableBuilder::new(flow_schema());
    for (i, p) in parts.parts.iter().enumerate() {
        if i >= 2 {
            for row in p.iter_rows() {
                survivors.push_row(&row).unwrap();
            }
        }
    }
    let mut partial_catalog = Catalog::new();
    partial_catalog.register("flow", survivors.finish());
    let expected = eval_expr_centralized(&query(), &partial_catalog)
        .unwrap()
        .sorted();
    assert_eq!(result.sorted(), expected);
}

#[test]
fn partial_with_all_sites_dead_is_an_error() {
    // Partial degradation still refuses to fabricate an answer from nothing.
    let faults = FaultPlan::seeded(5)
        .with_crash(1, 0)
        .with_crash(2, 0)
        .with_crash(3, 0)
        .with_crash(4, 0);
    let wh =
        DistributedWarehouse::launch_with_faults(catalogs(80), CostModel::free(), faults).unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = RetryPolicy {
        deadline: Duration::from_millis(50),
        max_retries: 0,
        backoff: 1.0,
        degraded: DegradedMode::Partial,
    };
    let err = wh.execute(&plan).unwrap_err().to_string();
    assert!(err.contains("every site failed"), "{err}");
    wh.shutdown().unwrap();
}
