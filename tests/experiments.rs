//! Scaled-down versions of the paper's §5 experiments, asserting the
//! *qualitative* claims of each figure (who wins, and how costs grow).

use skalla::core::OptFlags;
use skalla::tpcr::{CITYNAME_COL, CUSTNAME_COL, EXTENDEDPRICE_COL, QUANTITY_COL};
use skalla_bench::{coalescible_query, correlated_query, run_variant, ExperimentSetup, RunRecord};

const PER_SITE_SCALE: f64 = 0.02;

fn sweep(
    expr: &skalla::gmdj::GmdjExpr,
    flags: OptFlags,
    anchor: usize,
    sites: &[usize],
) -> Vec<RunRecord> {
    sites
        .iter()
        .map(|&n| {
            let setup = ExperimentSetup::new(PER_SITE_SCALE * n as f64, n).unwrap();
            run_variant(&setup, expr, flags, anchor, "x").unwrap().1
        })
        .collect()
}

fn bytes(r: &RunRecord) -> f64 {
    (r.bytes_down + r.bytes_up) as f64
}

/// Fig. 2: without group reduction, traffic grows super-linearly in the
/// site count; site-side reduction shrinks upstream traffic; adding
/// coordinator-side reduction shrinks downstream traffic to linear.
#[test]
fn fig2_group_reduction_shapes() {
    let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).unwrap();
    let sites = [2usize, 4, 6];
    let none = sweep(&expr, OptFlags::none(), CUSTNAME_COL, &sites);
    let site = sweep(
        &expr,
        OptFlags {
            site_group_reduction: true,
            ..OptFlags::none()
        },
        CUSTNAME_COL,
        &sites,
    );
    let both = sweep(
        &expr,
        OptFlags {
            site_group_reduction: true,
            coord_group_reduction: true,
            ..OptFlags::none()
        },
        CUSTNAME_COL,
        &sites,
    );

    // Super-linear growth without reduction: tripling the sites more than
    // triples the traffic (quadratic ⇒ ×9; allow slack ⇒ > ×5).
    assert!(
        bytes(&none[2]) > 5.0 * bytes(&none[0]),
        "expected quadratic growth"
    );
    for i in 0..sites.len() {
        // Site-side reduction cuts upstream traffic.
        assert!(site[i].bytes_up < none[i].bytes_up, "n={}", sites[i]);
        // Coordinator-side reduction additionally cuts downstream traffic.
        assert!(both[i].bytes_down < site[i].bytes_down, "n={}", sites[i]);
    }
    // With both reductions the per-site traffic is flat: growth is linear
    // in n (tripling sites ⇒ roughly ×3; assert well below quadratic).
    let growth = bytes(&both[2]) / bytes(&both[0]);
    assert!(
        growth < 5.0,
        "combined reductions should be ~linear, got ×{growth:.1}"
    );
}

/// Fig. 3: the coalesced plan halves the rounds and, on the
/// high-cardinality attribute, turns quadratic transfer growth linear.
#[test]
fn fig3_coalescing_shapes() {
    let coalesced_flags = OptFlags {
        coalesce: true,
        sync_reduction: true,
        ..OptFlags::none()
    };
    for group_col in [CUSTNAME_COL, CITYNAME_COL] {
        let expr = coalescible_query(group_col, EXTENDEDPRICE_COL, QUANTITY_COL, 30.0).unwrap();
        let sites = [2usize, 6];
        let plain = sweep(&expr, OptFlags::none(), group_col, &sites);
        let coal = sweep(&expr, coalesced_flags, group_col, &sites);

        for i in 0..sites.len() {
            assert!(coal[i].syncs < plain[i].syncs);
            assert!(bytes(&coal[i]) < bytes(&plain[i]));
        }
        if group_col == CUSTNAME_COL {
            // Quadratic vs linear: the coalesced growth factor is far
            // smaller than the non-coalesced one.
            let g_plain = bytes(&plain[1]) / bytes(&plain[0]);
            let g_coal = bytes(&coal[1]) / bytes(&coal[0]);
            assert!(
                g_coal < g_plain * 0.6,
                "coalesced growth {g_coal:.1} should be well below {g_plain:.1}"
            );
        }
    }
}

/// Fig. 4: synchronization reduction takes the correlated query from three
/// synchronizations to one and removes the quadratic downstream traffic.
#[test]
fn fig4_sync_reduction_shapes() {
    let sync_flags = OptFlags {
        sync_reduction: true,
        ..OptFlags::none()
    };
    for group_col in [CUSTNAME_COL, CITYNAME_COL] {
        let expr = correlated_query(group_col, EXTENDEDPRICE_COL).unwrap();
        let sites = [2usize, 5];
        let plain = sweep(&expr, OptFlags::none(), group_col, &sites);
        let sync = sweep(&expr, sync_flags, group_col, &sites);
        for i in 0..sites.len() {
            assert_eq!(plain[i].syncs, 3);
            assert_eq!(sync[i].syncs, 1);
            // Nothing but the plan flows downstream under full sync
            // reduction.
            assert_eq!(sync[i].rows_down, 0);
            assert!(bytes(&sync[i]) < bytes(&plain[i]));
        }
    }
}

/// Fig. 5 (scale-up): at fixed sites, costs grow roughly linearly with the
/// data size, and the combined reductions win at every size.
#[test]
fn fig5_scaleup_shapes() {
    let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).unwrap();
    let n_sites = 4;
    let mut offs = Vec::new();
    let mut ons = Vec::new();
    for m in [1usize, 3] {
        let setup = ExperimentSetup::new(0.03 * m as f64, n_sites).unwrap();
        offs.push(
            run_variant(&setup, &expr, OptFlags::none(), CUSTNAME_COL, "off")
                .unwrap()
                .1,
        );
        ons.push(
            run_variant(&setup, &expr, OptFlags::all(), CUSTNAME_COL, "on")
                .unwrap()
                .1,
        );
    }
    for i in 0..2 {
        assert!(bytes(&ons[i]) < bytes(&offs[i]));
        assert_eq!(ons[i].syncs, 1);
    }
    // Linear scale-up of the optimized plan: ×3 data ⇒ transfer well below
    // quadratic growth (×9).
    let growth = bytes(&ons[1]) / bytes(&ons[0]);
    assert!(growth < 5.0, "scale-up transfer growth ×{growth:.2}");
}

/// §5 summary: ship-all-detail is strictly worse than every Skalla plan in
/// upstream transfer once the fact relation dwarfs the result.
#[test]
fn ship_all_loses_at_scale() {
    let expr = correlated_query(CUSTNAME_COL, EXTENDEDPRICE_COL).unwrap();
    let setup = ExperimentSetup::new(0.1, 4).unwrap();
    let (_, plain) = run_variant(&setup, &expr, OptFlags::none(), CUSTNAME_COL, "plain").unwrap();

    let wh = setup.launch().unwrap();
    let (_, ship) = wh.execute_ship_all(&expr).unwrap();
    wh.shutdown().unwrap();

    assert!(ship.total_bytes_up() > plain.bytes_up * 3);
}
