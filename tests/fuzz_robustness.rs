//! Fuzz-style robustness: the parser and the wire decoder face untrusted
//! input and must reject garbage with errors, never panics.

use std::collections::HashMap;

use proptest::prelude::*;

use skalla::core::message::Message;
use skalla::net::{WireDecode, WireReader};
use skalla::prelude::*;

fn schemas() -> HashMap<String, std::sync::Arc<Schema>> {
    HashMap::from([(
        "t".to_string(),
        Schema::from_pairs([("a", DataType::Int64), ("b", DataType::Utf8)])
            .unwrap()
            .into_arc(),
    )])
}

proptest! {
    /// Arbitrary text never panics the query parser.
    #[test]
    fn parser_never_panics(text in "\\PC{0,200}") {
        let _ = parse_query(&text, &schemas());
    }

    /// Query-looking text with random identifiers never panics either.
    #[test]
    fn parser_handles_query_shaped_garbage(
        c1 in "[a-z]{1,6}",
        c2 in "[a-z]{1,6}",
        op in "[=<>+*/-]{1,2}",
        n in any::<i64>(),
    ) {
        let q = format!(
            "BASE DISTINCT {c1} FROM t;
             MD COUNT(*) AS c WHERE b.{c1} {op} r.{c2} AND r.{c2} {op} {n};"
        );
        let _ = parse_query(&q, &schemas());
    }

    /// Random bytes never panic the message decoder.
    #[test]
    fn message_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::from_wire(&bytes);
        let _ = Message::from_wire_framed(&bytes);
    }

    /// Random bytes never panic the relation decoder.
    #[test]
    fn relation_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Relation::from_wire(&bytes);
        let mut r = WireReader::new(&bytes);
        let _ = Schema::decode(&mut r);
    }

    /// Corrupting any single byte of a valid message yields an error or a
    /// different (but well-formed) message — never a panic.
    #[test]
    fn single_byte_corruption_is_safe(pos in 0usize..64, delta in 1u8..=255) {
        let schema = Schema::from_pairs([("k", DataType::Int64)]).unwrap().into_arc();
        let rel = Relation::new(
            schema,
            vec![vec![Value::Int(42)], vec![Value::Int(-7)]],
        ).unwrap();
        let msg = Message::RoundResult {
            op_idx: 1,
            seq: 0,
            h: rel,
            compute_s: 0.5,
            blocks_compiled: 1,
            blocks_interpreted: 0,
            last: true,
        };
        let mut bytes = msg.to_wire_framed(3, 1).to_vec();
        let idx = pos % bytes.len();
        bytes[idx] = bytes[idx].wrapping_add(delta);
        let _ = Message::from_wire_framed(&bytes);
    }
}
