//! Fuzz-style robustness: the parser and the wire decoder face untrusted
//! input and must reject garbage with errors, never panics.

use std::collections::HashMap;

use proptest::prelude::*;

use skalla::core::checkpoint::decode_frame;
use skalla::core::message::Message;
use skalla::net::{WireDecode, WireReader};
use skalla::prelude::*;

fn schemas() -> HashMap<String, std::sync::Arc<Schema>> {
    HashMap::from([(
        "t".to_string(),
        Schema::from_pairs([("a", DataType::Int64), ("b", DataType::Utf8)])
            .unwrap()
            .into_arc(),
    )])
}

proptest! {
    /// Arbitrary text never panics the query parser.
    #[test]
    fn parser_never_panics(text in "\\PC{0,200}") {
        let _ = parse_query(&text, &schemas());
    }

    /// Query-looking text with random identifiers never panics either.
    #[test]
    fn parser_handles_query_shaped_garbage(
        c1 in "[a-z]{1,6}",
        c2 in "[a-z]{1,6}",
        op in "[=<>+*/-]{1,2}",
        n in any::<i64>(),
    ) {
        let q = format!(
            "BASE DISTINCT {c1} FROM t;
             MD COUNT(*) AS c WHERE b.{c1} {op} r.{c2} AND r.{c2} {op} {n};"
        );
        let _ = parse_query(&q, &schemas());
    }

    /// Random bytes never panic the message decoder.
    #[test]
    fn message_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::from_wire(&bytes);
        let _ = Message::from_wire_framed(&bytes);
    }

    /// Random bytes never panic the relation decoder.
    #[test]
    fn relation_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Relation::from_wire(&bytes);
        let mut r = WireReader::new(&bytes);
        let _ = Schema::decode(&mut r);
    }

    /// Corrupting any single byte of a valid message yields an error or a
    /// different (but well-formed) message — never a panic.
    #[test]
    fn single_byte_corruption_is_safe(pos in 0usize..64, delta in 1u8..=255) {
        let schema = Schema::from_pairs([("k", DataType::Int64)]).unwrap().into_arc();
        let rel = Relation::new(
            schema,
            vec![vec![Value::Int(42)], vec![Value::Int(-7)]],
        ).unwrap();
        let msg = Message::RoundResult {
            op_idx: 1,
            seq: 0,
            h: rel,
            compute_s: 0.5,
            blocks_compiled: 1,
            blocks_interpreted: 0,
            last: true,
            task: 0,
            sketch: Vec::new(),
            segments_scanned: 0,
            segments_pruned: 0,
            blocks_verified: 0,
        };
        let mut bytes = msg.to_wire_framed(3, 1).to_vec();
        let idx = pos % bytes.len();
        bytes[idx] = bytes[idx].wrapping_add(delta);
        let _ = Message::from_wire_framed(&bytes);
    }

    /// Random byte mutations over a valid segment file yield a typed
    /// error or a bit-identical decode — never a panic, never silently
    /// wrong data. This is the storage-integrity contract end to end:
    /// header/footer damage is caught at open, body damage at the
    /// per-block CRC before any value is decoded.
    #[test]
    fn segment_file_mutation_never_decodes_wrong(
        muts in prop::collection::vec((any::<usize>(), 1u8..=255), 1..8),
        case in any::<u64>(),
    ) {
        use skalla::storage::{write_segments, SegmentFile};
        let schema = Schema::from_pairs([("k", DataType::Int64), ("s", DataType::Utf8)])
            .unwrap()
            .into_arc();
        let rows: Vec<Vec<Value>> = (0..60i64)
            .map(|i| vec![Value::Int(i * 3 - 7), Value::str(format!("v{i}"))])
            .collect();
        let table = Table::from_rows(schema, &rows).unwrap();
        let path = std::env::temp_dir().join(format!(
            "skalla-fuzz-seg-{}-{case}", std::process::id(),
        ));
        write_segments(&path, &table, 16).unwrap();
        let pristine = SegmentFile::open(&path).unwrap();
        let want: Vec<Table> = (0..pristine.num_segments())
            .map(|i| pristine.read_segment(i).unwrap())
            .collect();
        drop(pristine);

        let mut bytes = std::fs::read(&path).unwrap();
        for (pos, delta) in muts {
            let idx = pos % bytes.len();
            bytes[idx] = bytes[idx].wrapping_add(delta);
        }
        std::fs::write(&path, &bytes).unwrap();

        match SegmentFile::open(&path) {
            Err(e) => prop_assert!(e.is_corrupt(), "untyped open error: {e}"),
            // Open succeeded: every mutation landed in a segment body
            // (or mutations cancelled out). Each segment must either
            // fail its block CRC with a typed error or decode
            // bit-identically to the pristine file.
            Ok(f) => {
                prop_assert_eq!(f.num_segments(), want.len());
                for (i, w) in want.iter().enumerate() {
                    match f.read_segment(i) {
                        Err(e) => prop_assert!(e.is_corrupt(), "untyped read error: {e}"),
                        Ok(t) => {
                            prop_assert_eq!(t.len(), w.len());
                            for r in 0..w.len() {
                                for c in 0..2 {
                                    prop_assert_eq!(t.column(c).get(r), w.column(c).get(r));
                                }
                            }
                        }
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Random bytes never panic the checkpoint-frame decoder.
    #[test]
    fn checkpoint_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_frame(&bytes);
        let _ = CheckpointRecord::decode_payload(&bytes);
    }

    /// Corrupting any single byte of a valid checkpoint frame is rejected
    /// by the checksum — never a panic, never a wrong record.
    #[test]
    fn checkpoint_frame_corruption_is_rejected(pos in any::<usize>(), delta in 1u8..=255) {
        let schema = Schema::from_pairs([("k", DataType::Int64)]).unwrap().into_arc();
        let rec = CheckpointRecord {
            fingerprint: 0xFEED,
            epoch: 2,
            synced: 1,
            state: Relation::new(
                schema,
                vec![vec![Value::Int(42)], vec![Value::Int(-7)]],
            ).unwrap(),
        };
        let mut bytes = rec.to_frame();
        let idx = pos % bytes.len();
        bytes[idx] = bytes[idx].wrapping_add(delta);
        // Only a corrupted *checksum field* could in principle collide;
        // FNV over the unchanged payload never matches a changed sum,
        // and a changed payload never matches the recorded sum — so a
        // decode that still succeeds must have reproduced the original.
        if let Ok((back, _)) = decode_frame(&bytes) {
            prop_assert_eq!(back, rec);
        }
    }

    /// A WAL truncated at an arbitrary byte, or with an arbitrary flipped
    /// byte, loads without panicking and only ever yields records that were
    /// actually appended — a damaged log degrades to resuming earlier (or
    /// not at all), never to wrong state.
    #[test]
    fn checkpoint_wal_damage_degrades_cleanly(cut in any::<usize>(), flip in any::<usize>(), delta in 1u8..=255) {
        let schema = Schema::from_pairs([("k", DataType::Int64)]).unwrap().into_arc();
        let rel = |n: i64| Relation::new(
            schema.clone(),
            (0..n).map(|i| vec![Value::Int(i)]).collect(),
        ).unwrap();
        let mut log = Vec::new();
        for synced in 1..=3u32 {
            log.extend_from_slice(&CheckpointRecord {
                fingerprint: 0xABCD,
                epoch: 0,
                synced,
                state: rel(i64::from(synced)),
            }.to_frame());
        }
        log.truncate(cut % (log.len() + 1));
        if !log.is_empty() {
            let idx = flip % log.len();
            log[idx] = log[idx].wrapping_add(delta);
        }

        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "skalla-fuzz-wal-{}-{cut}-{flip}-{delta}", std::process::id(),
        ));
        std::fs::write(&path, &log).unwrap();
        let wal = CheckpointWal::new(&path);
        let loaded = wal.load_latest(0xABCD).unwrap();
        std::fs::remove_file(&path).ok();
        if let Some(rec) = loaded {
            prop_assert!((1..=3).contains(&rec.synced));
            prop_assert_eq!(rec.state.len() as u32, rec.synced);
        }
    }
}
