//! The paper's formal results, as executable checks.

use std::collections::HashMap;

use skalla::prelude::*;

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([
        ("sas", DataType::Int64),
        ("das", DataType::Int64),
        ("nb", DataType::Int64),
    ])
    .unwrap()
    .into_arc()
}

fn flow_table(rows: usize) -> Table {
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::Int((i % 9) as i64),
                Value::Int((i % 4) as i64),
                Value::Int(((i * 31) % 997) as i64),
            ]
        })
        .collect();
    Table::from_rows(flow_schema(), &data).unwrap()
}

fn example1_query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    skalla::planner::parse_query(
        "BASE DISTINCT sas, das FROM flow;
         MD COUNT(*) AS cnt1, AVG(nb) AS avg1 WHERE b.sas = r.sas AND b.das = r.das;
         MD COUNT(*) AS cnt2 WHERE b.sas = r.sas AND b.das = r.das AND r.nb >= b.avg1;",
        &schemas,
    )
    .unwrap()
}

fn catalogs_for(parts: &Partitioning) -> Vec<Catalog> {
    parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect()
}

/// **Theorem 1**: synchronizing per-partition sub-aggregates with
/// super-aggregates equals evaluating over the unpartitioned relation — for
/// *any* partitioning of R.
#[test]
fn theorem1_partition_invariance() {
    let table = flow_table(240);
    let query = example1_query();
    let mut full = Catalog::new();
    full.register("flow", table.clone());
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    // Several unrelated partitionings, including skewed and empty parts.
    let splits: Vec<Vec<Vec<u32>>> = vec![
        vec![(0..240).collect()],                       // everything on one site
        vec![(0..120).collect(), (120..240).collect()], // halves
        vec![(0..10).collect(), (10..240).collect(), vec![]], // skew + empty
        (0..6).map(|s| (s..240).step_by(6).collect()).collect(), // round robin
    ];
    for split in splits {
        let parts = Partitioning {
            parts: split.iter().map(|idx| table.take(idx)).collect(),
            partition_col: None,
        };
        let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
        let (result, _) = wh.execute(&DistPlan::unoptimized(query.clone())).unwrap();
        assert_eq!(result.sorted(), expected);
        wh.shutdown().unwrap();
    }
}

/// **Theorem 2**: tuples transferred ≤ Σᵢ 2·sᵢ·|Q| + s₀·|Q|, independent of
/// the detail-relation size.
#[test]
fn theorem2_transfer_bound() {
    let query = example1_query();
    for rows in [100usize, 1000, 4000] {
        let table = flow_table(rows);
        let parts = partition_by_hash(&table, 0, 4).unwrap();
        let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
        let (result, metrics) = wh.execute(&DistPlan::unoptimized(query.clone())).unwrap();
        wh.shutdown().unwrap();

        let q = result.len() as u64;
        let s = 4u64;
        let m = 2u64;
        let bound = m * 2 * s * q + s * q;
        let moved = metrics.total_rows_down() + metrics.total_rows_up();
        assert!(moved <= bound, "{rows} rows: moved {moved} > bound {bound}");
        // The bound itself does not depend on `rows`: 9 sas × 4 das = 36
        // groups at every size.
        assert_eq!(q, 36);
    }
}

/// **Theorem 4**: the derived coordinator filters never drop a contributing
/// group (checked by result equality) and do reduce shipped tuples.
#[test]
fn theorem4_group_reduction_sound_and_effective() {
    let table = flow_table(600);
    let parts = partition_by_ranges(&table, 0, &[3.0, 6.0]).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);
    let query = example1_query();

    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    let (plain_plan, _) = plan_query(&query, &dist, OptFlags::none()).unwrap();
    let (r0, m0) = wh.execute(&plain_plan).unwrap();
    let flags = OptFlags {
        coord_group_reduction: true,
        ..OptFlags::none()
    };
    let (reduced_plan, report) = plan_query(&query, &dist, flags).unwrap();
    assert!(!report.coord_filters.is_empty(), "filters must be derived");
    let (r1, m1) = wh.execute(&reduced_plan).unwrap();
    wh.shutdown().unwrap();

    assert_eq!(r0.sorted(), expected);
    assert_eq!(r1.sorted(), expected);
    assert!(
        m1.total_rows_down() < m0.total_rows_down(),
        "coordinator-side reduction must ship fewer groups ({} vs {})",
        m1.total_rows_down(),
        m0.total_rows_down()
    );
}

/// **Proposition 1**: site-side reduction ships only contributing groups;
/// the result is unchanged and upstream volume shrinks when groups are
/// partitioned.
#[test]
fn proposition1_site_reduction() {
    let table = flow_table(600);
    let parts = partition_by_hash(&table, 0, 3).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);
    let query = example1_query();

    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    let (p0, _) = plan_query(&query, &dist, OptFlags::none()).unwrap();
    let (r0, m0) = wh.execute(&p0).unwrap();
    let flags = OptFlags {
        site_group_reduction: true,
        ..OptFlags::none()
    };
    let (p1, _) = plan_query(&query, &dist, flags).unwrap();
    let (r1, m1) = wh.execute(&p1).unwrap();
    wh.shutdown().unwrap();

    assert_eq!(r0.sorted(), r1.sorted());
    assert!(m1.total_rows_up() < m0.total_rows_up());
    // Downstream volume unchanged: the reduction is one-sided.
    assert_eq!(m1.total_rows_down(), m0.total_rows_down());
}

/// **Proposition 2 + Corollary 1** (paper Example 5): with a partition
/// attribute in every θ and key-covering conditions, the whole query runs
/// with a single synchronization — and the result still matches.
#[test]
fn example5_single_synchronization_end_to_end() {
    let table = flow_table(600);
    let parts = partition_by_hash(&table, 0, 4).unwrap();
    assert!(parts.is_partition_attribute());
    let dist = DistributionInfo::from_partitioning(&parts);

    // Group on sas alone so every θ is anchored on the partition attribute.
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    let query = skalla::planner::parse_query(
        "BASE DISTINCT sas FROM flow;
         MD COUNT(*) AS cnt1, AVG(nb) AS avg1 WHERE b.sas = r.sas;
         MD COUNT(*) AS cnt2 WHERE b.sas = r.sas AND r.nb >= b.avg1;",
        &schemas,
    )
    .unwrap();

    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let flags = OptFlags {
        sync_reduction: true,
        ..OptFlags::none()
    };
    let (plan, report) = plan_query(&query, &dist, flags).unwrap();
    assert!(report.base_sync_eliminated);
    assert_eq!(report.local_only_rounds, vec![0]);
    assert_eq!(report.num_synchronizations, 1);

    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    let (result, metrics) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(result.sorted(), expected);
    // A single local-run segment: nothing is ever shipped down to sites
    // except the plan.
    assert_eq!(metrics.total_rows_down(), 0);
}

/// Generalized Corollary 1: the optimizer discovers a *derived* partition
/// attribute (grouping column functionally dependent on the partitioning)
/// from per-site constraint sets, with no declared partition column — and
/// the single-synchronization plan is still correct.
#[test]
fn corollary1_with_derived_partition_attribute_end_to_end() {
    // Partition on sas; group on das? No — das overlaps sites. Build a
    // table where a *derived* column (das = sas * 10) is partitioned along
    // with sas, then group on das while declaring nothing.
    let schema = flow_schema();
    let data: Vec<Vec<Value>> = (0..400)
        .map(|i| {
            let sas = (i % 6) as i64;
            vec![
                Value::Int(sas),
                Value::Int(sas * 10), // das derived from sas
                Value::Int(((i * 31) % 997) as i64),
            ]
        })
        .collect();
    let table = Table::from_rows(schema.clone(), &data).unwrap();
    let parts = partition_by_hash(&table, 0, 3).unwrap();

    // Distribution knowledge: exact value sets for das at each site, no
    // declared partition column at all.
    let constraints = parts.site_constraints_for(&[1]);
    let dist = DistributionInfo::with_constraints(3, None, false, constraints).unwrap();

    let schemas = HashMap::from([("flow".to_string(), schema)]);
    let query = skalla::planner::parse_query(
        "BASE DISTINCT das FROM flow;
         MD COUNT(*) AS c1, AVG(nb) AS a1 WHERE b.das = r.das;
         MD COUNT(*) AS c2 WHERE b.das = r.das AND r.nb >= b.a1;",
        &schemas,
    )
    .unwrap();

    let flags = OptFlags {
        sync_reduction: true,
        ..OptFlags::none()
    };
    let (plan, report) = plan_query(&query, &dist, flags).unwrap();
    assert_eq!(
        report.local_only_rounds,
        vec![0],
        "derived anchor must be discovered"
    );
    assert_eq!(report.num_synchronizations, 1);

    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();
    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    let (result, _) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(result.sorted(), expected);
}

/// Coalescing (§4.3): the coalesced plan halves the evaluation rounds and
/// preserves the result.
#[test]
fn coalescing_preserves_results_and_cuts_rounds() {
    let table = flow_table(400);
    let parts = partition_by_hash(&table, 0, 3).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    let query = skalla::planner::parse_query(
        "BASE DISTINCT sas, das FROM flow;
         MD COUNT(*) AS c1 WHERE b.sas = r.sas AND b.das = r.das;
         MD SUM(nb) AS s2 WHERE b.sas = r.sas AND b.das = r.das AND r.nb > 500;",
        &schemas,
    )
    .unwrap();

    let mut full = Catalog::new();
    full.register("flow", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let wh = DistributedWarehouse::launch(catalogs_for(&parts), CostModel::free()).unwrap();
    let (p0, rep0) = plan_query(&query, &dist, OptFlags::none()).unwrap();
    let flags = OptFlags {
        coalesce: true,
        ..OptFlags::none()
    };
    let (p1, rep1) = plan_query(&query, &dist, flags).unwrap();
    assert_eq!(rep1.coalesce_steps, 1);
    assert!(rep1.num_synchronizations < rep0.num_synchronizations);

    let (r0, _) = wh.execute(&p0).unwrap();
    let (r1, _) = wh.execute(&p1).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(r0.sorted(), expected);
    assert_eq!(r1.sorted(), expected);
}
