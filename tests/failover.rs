//! Replica-aware failover and round-granular checkpoint/resume, end to end.
//!
//! The failover contract: with r-way replicated partitions and
//! `DegradedMode::Failover`, a site crash at *any* point of the query makes
//! the coordinator re-plan the wave onto surviving replicas, and the answer
//! is bit-for-bit identical to the fault-free run — every detail tuple
//! counted exactly once. The checkpoint contract: a coordinator restarted
//! onto its WAL resumes re-executing at most the one round that was in
//! flight, and a corrupt or mismatched log degrades to clean re-execution.

use std::collections::HashMap;
use std::time::Duration;

use skalla::core::checkpoint::decode_frame;
use skalla::prelude::*;

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Int64)])
        .unwrap()
        .into_arc()
}

fn table(rows: usize) -> Table {
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![Value::Int((i % 7) as i64), Value::Int(i as i64)])
        .collect();
    Table::from_rows(flow_schema(), &data).unwrap()
}

/// A two-operator query: base round plus two synchronized GMDJ rounds, so a
/// crash can land before, between, or inside rounds.
fn query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    parse_query(
        "BASE DISTINCT k FROM flow;
         MD COUNT(*) AS c, SUM(v) AS s WHERE b.k = r.k;
         MD COUNT(*) AS hi WHERE b.k = r.k AND r.v >= b.s / b.c;",
        &schemas,
    )
    .unwrap()
}

fn partitioning(rows: usize) -> Partitioning {
    partition_by_hash(&table(rows), 0, 4).unwrap()
}

fn ground_truth() -> Relation {
    let mut full = Catalog::new();
    full.register("flow", table(280));
    eval_expr_centralized(&query(), &full).unwrap().sorted()
}

/// Tight deadlines so a dead site is detected in ~a quarter second.
fn failover_retry() -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_millis(120),
        max_retries: 1,
        backoff: 1.0,
        degraded: DegradedMode::Failover,
    }
}

/// Launch a 2-way replicated four-site warehouse and run the query under
/// `faults` with the failover policy.
fn run_replicated(faults: FaultPlan, coord_parallelism: usize) -> (Relation, ExecMetrics) {
    let wh = DistributedWarehouse::launch_replicated(
        "flow",
        &partitioning(280),
        2,
        CostModel::free(),
        faults,
    )
    .unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = failover_retry();
    plan.coord_parallelism = coord_parallelism;
    let (result, metrics) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();
    (result.sorted(), metrics)
}

#[test]
fn single_site_crash_fails_over_exactly() {
    // The differential matrix: any victim, crashing at several points of the
    // message stream (dead on arrival, during the base round, during the
    // GMDJ rounds), must yield the exact fault-free answer with the dead
    // site's partitions re-planned onto surviving replicas.
    let truth = ground_truth();
    for site in 1..=4u32 {
        for after in [0u64, 1, 2, 3] {
            let faults = FaultPlan::seeded(7).with_crash(site, after);
            let (result, m) = run_replicated(faults, 1);
            assert_eq!(result, truth, "site {site} crash after {after}");
            assert!(m.failovers >= 1, "site {site} after {after}: no failover");
            assert!(
                m.parts_reassigned >= 1,
                "site {site} after {after}: nothing reassigned"
            );
            assert_eq!(m.parts_lost, 0);
            // Coverage under failover counts partitions, and all survive.
            assert_eq!(
                m.coverage,
                Some(Coverage {
                    responded: 4,
                    total: 4
                }),
                "site {site} after {after}"
            );
        }
    }
}

#[test]
fn failover_is_deterministic() {
    let faults = FaultPlan::seeded(11).with_crash(3, 4);
    let (a, _) = run_replicated(faults.clone(), 1);
    let (b, _) = run_replicated(faults, 1);
    assert_eq!(a, b);
}

#[test]
fn failover_through_sharded_sync() {
    // The re-planned wave must also come out exact through the sharded,
    // multi-worker synchronization pipeline.
    let faults = FaultPlan::seeded(3).with_crash(2, 3);
    let (result, m) = run_replicated(faults, 4);
    assert_eq!(result, ground_truth());
    assert!(m.failovers >= 1);
}

#[test]
fn failover_with_optimized_local_run_plans() {
    // Proposition 2 mode: with full distribution knowledge the optimizer
    // collapses the run into locally-evaluated rounds. Failover must hold
    // there too, and agree with the unoptimized plan.
    let parts = partitioning(280);
    let dist = DistributionInfo::from_partitioning(&parts).with_replication(2);
    let (mut plan, _) = plan_query(&query(), &dist, OptFlags::all()).unwrap();
    plan.retry = failover_retry();
    let wh = DistributedWarehouse::launch_replicated(
        "flow",
        &parts,
        2,
        CostModel::free(),
        FaultPlan::seeded(5).with_crash(1, 1),
    )
    .unwrap();
    let (result, m) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(result.sorted(), ground_truth());
    assert!(m.failovers >= 1);
}

#[test]
fn failover_without_replicas_degrades_to_partial() {
    // DegradedMode::Failover on an unreplicated warehouse has no replicas to
    // fail over to: it behaves like Partial (coverage accounting, no error).
    let parts = partitioning(280);
    let catalogs: Vec<Catalog> = parts
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    let faults = FaultPlan::seeded(1).with_crash(2, 0);
    let wh = DistributedWarehouse::launch_with_faults(catalogs, CostModel::free(), faults).unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = failover_retry();
    let (_, m) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(m.failovers, 0);
    assert_eq!(
        m.coverage,
        Some(Coverage {
            responded: 3,
            total: 4
        })
    );
}

#[test]
fn attempt_histogram_reaches_the_metrics_summary() {
    let faults = FaultPlan::seeded(9).with_crash(4, 1);
    let (_, m) = run_replicated(faults, 1);
    assert!(!m.site_attempts.is_empty());
    let summary = m.summary();
    assert!(summary.contains("attempts"), "{summary}");
    assert!(summary.contains("failover"), "{summary}");
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

fn temp_wal(name: &str) -> CheckpointWal {
    let dir = std::env::temp_dir().join(format!("skalla-failover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal = CheckpointWal::new(dir.join(name));
    wal.clear().unwrap();
    wal
}

fn launch_plain() -> DistributedWarehouse {
    let catalogs: Vec<Catalog> = partitioning(280)
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap()
}

#[test]
fn coordinator_restart_resumes_at_most_one_round() {
    let wal = temp_wal("resume.wal");
    let plan = DistPlan::unoptimized(query());

    // A clean run writes one record per synchronization (base + 2 rounds).
    let wh = launch_plain();
    let (clean, m_clean) = wh.execute_with_checkpoints(&plan, &wal).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(m_clean.checkpoints, 3);
    assert_eq!(m_clean.resumed_syncs, 0);

    // Simulate the coordinator dying during the second GMDJ round: keep the
    // first two records (base + round 1) and restart a fresh coordinator.
    let bytes = std::fs::read(wal.path()).unwrap();
    let (_, a) = decode_frame(&bytes).unwrap();
    let (_, b) = decode_frame(&bytes[a..]).unwrap();
    std::fs::write(wal.path(), &bytes[..a + b]).unwrap();

    let wh = launch_plain();
    let (resumed, m) = wh.execute_with_checkpoints(&plan, &wal).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(resumed.sorted(), clean.sorted());
    assert_eq!(m.resumed_syncs, 2);
    // At most one round re-executed: exactly the in-flight one.
    assert_eq!(m.rounds.len(), m_clean.rounds.len() - 2);

    // The log now fully covers the plan: a re-run replays no rounds at all.
    let wh = launch_plain();
    let (replayed, m_full) = wh.execute_with_checkpoints(&plan, &wal).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(replayed.sorted(), clean.sorted());
    assert_eq!(m_full.resumed_syncs, 3);
    assert_eq!(m_full.rounds.len(), m_clean.rounds.len() - 3);
}

#[test]
fn corrupt_wal_degrades_to_clean_execution() {
    let wal = temp_wal("corrupt.wal");
    let plan = DistPlan::unoptimized(query());

    let wh = launch_plain();
    let (clean, _) = wh.execute_with_checkpoints(&plan, &wal).unwrap();
    wh.shutdown().unwrap();

    // Flip a payload byte of the first record: the scan stops there and the
    // query re-executes from round zero — same answer, nothing resumed.
    let mut bytes = std::fs::read(wal.path()).unwrap();
    bytes[20] ^= 0xFF;
    std::fs::write(wal.path(), &bytes).unwrap();

    let wh = launch_plain();
    let (rerun, m) = wh.execute_with_checkpoints(&plan, &wal).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(m.resumed_syncs, 0);
    assert_eq!(rerun.sorted(), clean.sorted());
}

#[test]
fn a_different_plan_never_resumes_from_the_log() {
    let wal = temp_wal("fingerprint.wal");
    let wh = launch_plain();
    let (_, _) = wh
        .execute_with_checkpoints(&DistPlan::unoptimized(query()), &wal)
        .unwrap();

    // A different query against the same log must run from scratch: its
    // fingerprint matches no record.
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    let other = parse_query(
        "BASE DISTINCT k FROM flow;
         MD SUM(v) AS s WHERE b.k = r.k;",
        &schemas,
    )
    .unwrap();
    let (result, m) = wh
        .execute_with_checkpoints(&DistPlan::unoptimized(other.clone()), &wal)
        .unwrap();
    wh.shutdown().unwrap();
    assert_eq!(m.resumed_syncs, 0);
    let mut full = Catalog::new();
    full.register("flow", table(280));
    let expected = eval_expr_centralized(&other, &full).unwrap().sorted();
    assert_eq!(result.sorted(), expected);
}

#[test]
fn checkpointing_a_failover_run_stays_exact() {
    // Both robustness legs at once: a site crash triggers failover, each
    // synchronized round is checkpointed, and a restart resumes cleanly.
    let wal = temp_wal("combined.wal");
    let faults = FaultPlan::seeded(21).with_crash(2, 2);
    let wh = DistributedWarehouse::launch_replicated(
        "flow",
        &partitioning(280),
        2,
        CostModel::free(),
        faults.clone(),
    )
    .unwrap();
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = failover_retry();
    let (result, m) = wh.execute_with_checkpoints(&plan, &wal).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(result.sorted(), ground_truth());
    assert!(m.failovers >= 1);
    assert_eq!(m.checkpoints, 3);

    // Restart onto the same (fully covering) log: the recorded answer comes
    // back without re-running any round — even though the fabric would crash
    // the same site again.
    let wh = DistributedWarehouse::launch_replicated(
        "flow",
        &partitioning(280),
        2,
        CostModel::free(),
        faults,
    )
    .unwrap();
    let (replayed, m2) = wh.execute_with_checkpoints(&plan, &wal).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(replayed.sorted(), ground_truth());
    assert_eq!(m2.resumed_syncs, 3);
}

// ---------------------------------------------------------------------------
// Soak matrix (run explicitly; CI smokes it in release)
// ---------------------------------------------------------------------------

/// ≥16 randomized single-site crash plans under 2-way replication, every one
/// required to agree exactly with the fault-free run. `FaultPlan::
/// random_single_crash` derives victim and crash point from the seed, so the
/// matrix is reproducible seed by seed.
#[test]
#[ignore = "soak: run with --ignored (CI runs it in release as a smoke)"]
fn soak_seed_matrix_single_site_crashes() {
    let truth = ground_truth();
    let started = std::time::Instant::now();
    for seed in 0..16u64 {
        let faults = FaultPlan::random_single_crash(seed, 4, 30);
        let crash = faults.crashes[0];
        let (result, m) = run_replicated(faults, if seed % 2 == 0 { 1 } else { 4 });
        assert_eq!(
            result, truth,
            "seed {seed}: site {} after {}",
            crash.node, crash.after_messages
        );
        assert_eq!(m.parts_lost, 0, "seed {seed}");
    }
    assert!(
        started.elapsed() < Duration::from_secs(300),
        "soak exceeded its time bound: {:?}",
        started.elapsed()
    );
}
