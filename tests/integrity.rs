//! End-to-end storage integrity: checksummed segments under seeded
//! disk-fault injection, corruption failover, and `\scrub` repair.
//!
//! The integrity contract, checked differentially against the in-memory
//! centralized evaluator:
//!
//! * a corrupted segment block is *always* caught by its CRC and surfaces
//!   as a typed [`SkallaError::SegmentCorrupt`] — never a panic, never a
//!   silently wrong tuple;
//! * under [`DegradedMode::Failover`] with replicated partitions, the
//!   coordinator re-plans the damaged partition onto a ring replica and
//!   the answer is bit-for-bit the fault-free one;
//! * without replicas the degradation ladder holds: `Fail` errors, and
//!   `Partial` answers from the survivors with honest `coverage k/n`;
//! * `scrub()` finds every injected corruption off the query path,
//!   quarantines the damaged file, and repairs it from a replica so
//!   later queries run clean.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use skalla::prelude::*;
use skalla::storage::{write_segments, DiskFaultGuard, DiskFaultPlan, SegmentFile};

// ------------------------------------------------------------- fixtures

const ROWS: usize = 280;
const SITES: usize = 4;
const SEG_ROWS: usize = 24;

fn flow_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64), ("v", DataType::Int64)])
        .unwrap()
        .into_arc()
}

fn table() -> Table {
    let data: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int((i % 7) as i64), Value::Int(i as i64)])
        .collect();
    Table::from_rows(flow_schema(), &data).unwrap()
}

/// Base round plus two synchronized GMDJ rounds, so corruption can strike
/// during any synchronization of the query.
fn query() -> GmdjExpr {
    let schemas = HashMap::from([("flow".to_string(), flow_schema())]);
    parse_query(
        "BASE DISTINCT k FROM flow;
         MD COUNT(*) AS c, SUM(v) AS s WHERE b.k = r.k;
         MD COUNT(*) AS hi WHERE b.k = r.k AND r.v >= b.s / b.c;",
        &schemas,
    )
    .unwrap()
}

fn partitioning() -> Partitioning {
    partition_by_hash(&table(), 0, SITES).unwrap()
}

fn ground_truth() -> Relation {
    let mut full = Catalog::new();
    full.register("flow", table());
    eval_expr_centralized(&query(), &full).unwrap().sorted()
}

fn retry(degraded: DegradedMode) -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_millis(150),
        max_retries: 1,
        backoff: 1.0,
        degraded,
    }
}

/// A unique scratch dir per call; tests run concurrently and installed
/// fault plans are scoped by path prefix, so sharing one dir would
/// cross-contaminate.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("skalla-integrity-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write one segment file per partition under `dir` and return the paths
/// in site order. Any installed fault plan scoped to `dir` (or a file)
/// injects during these writes.
fn write_partition_files(dir: &std::path::Path) -> Vec<String> {
    let parts = partitioning();
    (0..SITES)
        .map(|site| {
            let path = dir.join(format!("flow-{site}.seg"));
            write_segments(&path, &parts.parts[site], SEG_ROWS).unwrap();
            path.to_string_lossy().into_owned()
        })
        .collect()
}

/// Replicated warehouse whose plain `flow` scans come from segment files
/// on disk while the `__part::` replica copies stay in memory — exactly
/// the layout corruption failover and scrub repair need.
fn launch_segment_backed(paths: &[String]) -> DistributedWarehouse {
    let wh = DistributedWarehouse::launch_replicated(
        "flow",
        &partitioning(),
        2,
        CostModel::free(),
        FaultPlan::none(),
    )
    .unwrap();
    let loaded = wh.load_segments("flow", paths).unwrap();
    assert_eq!(loaded.iter().sum::<u64>(), ROWS as u64);
    wh
}

fn run(
    wh: &DistributedWarehouse,
    degraded: DegradedMode,
) -> skalla::types::Result<(Relation, ExecMetrics)> {
    let mut plan = DistPlan::unoptimized(query());
    plan.retry = retry(degraded);
    wh.execute(&plan).map(|(r, m)| (r.sorted(), m))
}

// -------------------------------------------------- corruption failover

/// The deterministic fault matrix for one case: damage the named victim
/// sites' files (scoped full-rate plans, so firing does not depend on
/// the scratch path) and return the query outcome under failover. Bit
/// flips are write-path faults — installed before the files are written;
/// short reads are read-path faults on clean files.
fn run_with_victims(tag: &str, victims: &[usize], kind: FaultKind) -> (Relation, ExecMetrics) {
    let dir = scratch_dir(tag);
    let parts = partitioning();
    let mut guards = Vec::new();
    // Install write-path plans first so the victim files are born bad.
    for &v in victims {
        let victim = dir.join(format!("flow-{v}.seg"));
        let plan = match kind {
            FaultKind::Bitflip => DiskFaultPlan::seeded(v as u64).with_bitflip_rate(1.0),
            FaultKind::ShortRead => DiskFaultPlan::seeded(v as u64).with_short_read_rate(1.0),
        };
        guards.push(plan.install(&victim));
    }
    let paths = write_partition_files(&dir);
    assert_eq!(parts.parts.len(), SITES);
    let wh = launch_segment_backed(&paths);
    let out = run(&wh, DegradedMode::Failover).unwrap();
    wh.shutdown().unwrap();
    drop(guards);
    std::fs::remove_dir_all(&dir).ok();
    out
}

#[derive(Clone, Copy)]
enum FaultKind {
    Bitflip,
    ShortRead,
}

/// The tentpole differential: across a matrix of victim sets (every
/// single site, plus both non-adjacent pairs — ring replication keeps a
/// live copy of every partition) and both persistent fault kinds, every
/// corrupted block is caught by its CRC, the damaged partition is
/// re-planned onto a replica, and the answer is bit-for-bit the
/// centralized one.
#[test]
fn corrupted_segments_fail_over_bit_exactly() {
    let truth = ground_truth();
    let cases: &[&[usize]] = &[&[0], &[1], &[2], &[3], &[0, 2], &[1, 3]];
    let mut total_verified = 0u64;
    for (i, victims) in cases.iter().enumerate() {
        for kind in [FaultKind::Bitflip, FaultKind::ShortRead] {
            let (result, m) = run_with_victims("failover", victims, kind);
            assert_eq!(result, truth, "case {i} {victims:?} diverged");
            assert_eq!(m.parts_lost, 0, "case {i}");
            assert!(m.checksum_failures > 0, "case {i}: no corruption detected");
            assert!(m.failovers >= 1, "case {i}: corruption without failover");
            // Clean single-fragment scans stream from disk and count the
            // blocks their CRCs passed; multi-fragment unions take the
            // materializing fallback (CRC-checked too, just uncounted),
            // so the counter is asserted across the whole matrix.
            total_verified += m.total_blocks_verified();
        }
    }
    assert!(total_verified > 0, "no clean block was ever CRC-verified");
}

#[test]
fn corruption_failover_is_deterministic() {
    // Same plans, same paths → the same blocks are damaged and the same
    // failover decisions fire; both runs agree with each other and with
    // the centralized truth.
    let a = run_with_victims("determ", &[1], FaultKind::Bitflip);
    let b = run_with_victims("determ", &[1], FaultKind::Bitflip);
    assert!(a.1.checksum_failures > 0);
    assert_eq!(a.0, b.0);
    assert_eq!(a.0, ground_truth());
    assert_eq!(a.1.checksum_failures, b.1.checksum_failures);
}

// ------------------------------------------------------ degradation ladder

/// Without replicas there is nowhere to fail over: `Fail` must surface a
/// typed error and `Partial` must answer from the survivors with honest
/// coverage — never a panic, never a silently wrong answer.
#[test]
fn unreplicated_corruption_degrades_per_ladder() {
    let dir = scratch_dir("ladder");
    let paths = write_partition_files(&dir);
    // Damage exactly site 3's file: the plan is scoped to that one path,
    // and `PathBuf::starts_with` matches whole components only, so the
    // sibling files roll no dice at all.
    let victim = std::path::PathBuf::from(&paths[2]);
    std::fs::remove_file(&victim).unwrap();
    let guard = DiskFaultPlan::seeded(9)
        .with_bitflip_rate(1.0)
        .install(&victim);
    write_segments(&victim, &partitioning().parts[2], SEG_ROWS).unwrap();

    let catalogs: Vec<Catalog> = partitioning()
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    wh.load_segments("flow", &paths).unwrap();

    // Fail: a typed error names the corruption; nothing panics.
    let err = run(&wh, DegradedMode::Fail).unwrap_err();
    assert!(
        err.to_string().contains("corrupt") || err.to_string().contains("checksum"),
        "untyped degradation error: {err}"
    );

    // Partial: the three clean sites answer, coverage says 3/4.
    let (partial, m) = run(&wh, DegradedMode::Partial).unwrap();
    assert_eq!(
        m.coverage,
        Some(Coverage {
            responded: 3,
            total: 4
        })
    );
    assert!(m.checksum_failures > 0);
    // The partial answer is the centralized answer over the surviving
    // partitions — honest, not fabricated.
    let mut survivors = Catalog::new();
    let parts = partitioning();
    let mut merged = skalla::storage::TableBuilder::new(flow_schema());
    for (i, p) in parts.parts.iter().enumerate() {
        if i != 2 {
            for r in 0..p.len() {
                merged.push_row(&p.row(r)).unwrap();
            }
        }
    }
    survivors.register("flow", merged.finish());
    let expected = eval_expr_centralized(&query(), &survivors)
        .unwrap()
        .sorted();
    assert_eq!(partial, expected);

    wh.shutdown().unwrap();
    drop(guard);
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn footer writes and stale footer reads are caught at *open*, so a
/// damaged directory is refused at load time with a typed error — it can
/// never be swapped in at all.
#[test]
fn torn_and_stale_footers_are_refused_at_load() {
    for (tag, plan, install_before_write) in [
        (
            "torn",
            DiskFaultPlan::seeded(3).with_torn_write_rate(1.0),
            true,
        ),
        (
            "stale",
            DiskFaultPlan::seeded(4).with_stale_footer_rate(1.0),
            false,
        ),
    ] {
        let dir = scratch_dir(tag);
        let guard: DiskFaultGuard;
        let paths = if install_before_write {
            guard = plan.install(&dir);
            write_partition_files(&dir)
        } else {
            let p = write_partition_files(&dir);
            guard = plan.install(&dir);
            p
        };
        let wh = DistributedWarehouse::launch_replicated(
            "flow",
            &partitioning(),
            2,
            CostModel::free(),
            FaultPlan::none(),
        )
        .unwrap();
        let err = wh.load_segments("flow", &paths).unwrap_err();
        assert!(err.is_corrupt(), "{tag}: untyped load error: {err}");
        // The failed load left the in-memory tables bound: queries still
        // answer exactly.
        let (result, _) = run(&wh, DegradedMode::Fail).unwrap();
        assert_eq!(result, ground_truth(), "{tag}");
        wh.shutdown().unwrap();
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ------------------------------------------------------------------ scrub

/// `scrub()` detects 100% of injected corruptions off the query path,
/// quarantines each damaged file, and repairs it from a ring replica;
/// afterwards the same warehouse answers bit-exactly with zero checksum
/// failures.
#[test]
fn scrub_detects_quarantines_and_repairs() {
    let dir = scratch_dir("scrub");
    let paths = write_partition_files(&dir);
    // Corrupt exactly sites 1 and 4 by rewriting their files under
    // file-scoped plans. Repairs write to a fresh generation path
    // (`<path>.r<epoch>`), which escapes the file scope, so the repair
    // itself cannot be re-corrupted by the same plan.
    let parts = partitioning();
    let mut guards = Vec::new();
    for site in [0usize, 3] {
        let victim = std::path::PathBuf::from(&paths[site]);
        std::fs::remove_file(&victim).unwrap();
        guards.push(
            DiskFaultPlan::seeded(site as u64)
                .with_bitflip_rate(1.0)
                .install(&victim),
        );
        write_segments(&victim, &parts.parts[site], SEG_ROWS).unwrap();
    }

    let wh = launch_segment_backed(&paths);
    let summary = wh.scrub().unwrap();
    assert_eq!(summary.tables_scanned, SITES as u64);
    assert_eq!(summary.quarantined, 2, "{}", summary.summary());
    assert_eq!(summary.repaired, 2, "{}", summary.summary());
    assert!(summary.failures.is_empty(), "{}", summary.summary());
    assert!(summary.blocks_verified > 0);

    // The damaged files were set aside, not deleted: forensics keep the
    // `.quarantined` copy while fresh-generation files serve queries.
    for site in [0usize, 3] {
        assert!(
            std::path::Path::new(&format!("{}.quarantined", paths[site])).exists(),
            "site {site}: no quarantined copy"
        );
    }

    // Post-repair queries run clean — no checksum failures, exact answer.
    let (result, m) = run(&wh, DegradedMode::Fail).unwrap();
    assert_eq!(result, ground_truth());
    assert_eq!(m.checksum_failures, 0);
    assert!(m.total_blocks_verified() > 0);

    // A second scrub over the repaired warehouse finds nothing to do.
    let clean = wh.scrub().unwrap();
    assert_eq!(clean.quarantined, 0);
    assert_eq!(clean.repaired, 0);
    assert!(clean.failures.is_empty());

    wh.shutdown().unwrap();
    drop(guards);
    std::fs::remove_dir_all(&dir).ok();
}

/// On an *unreplicated* warehouse scrub still detects and quarantines,
/// but with no replica to copy from the repair honestly fails and says
/// so — it never fabricates data.
#[test]
fn scrub_without_replicas_reports_unrepairable() {
    let dir = scratch_dir("scrub-unrep");
    let paths = write_partition_files(&dir);
    let victim = std::path::PathBuf::from(&paths[1]);
    std::fs::remove_file(&victim).unwrap();
    let guard = DiskFaultPlan::seeded(2)
        .with_bitflip_rate(1.0)
        .install(&victim);
    write_segments(&victim, &partitioning().parts[1], SEG_ROWS).unwrap();

    let catalogs: Vec<Catalog> = partitioning()
        .parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register("flow", p.clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    wh.load_segments("flow", &paths).unwrap();

    let summary = wh.scrub().unwrap();
    assert_eq!(summary.quarantined, 1);
    assert_eq!(summary.repaired, 0);
    assert_eq!(summary.failures.len(), 1, "{}", summary.summary());

    wh.shutdown().unwrap();
    drop(guard);
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------- direct damage

/// Flipping raw bytes on disk *after* a clean load — damage the fault
/// injector didn't decide — is caught just the same: the CRC does not
/// care how the bits went bad.
#[test]
fn out_of_band_byte_damage_fails_over() {
    let dir = scratch_dir("oob");
    let paths = write_partition_files(&dir);
    let wh = launch_segment_backed(&paths);

    // Flip one byte inside a segment *body* of site 2's file: probe
    // offsets until the file still opens (header and footer intact) but
    // fails block verification — damage a query scan must trip over.
    let victim = &paths[1];
    let orig = std::fs::read(victim).unwrap();
    let mut hit_body = false;
    for off in (0..orig.len()).step_by(7) {
        let mut bytes = orig.clone();
        bytes[off] ^= 0x40;
        std::fs::write(victim, &bytes).unwrap();
        if let Ok(f) = SegmentFile::open(victim) {
            if f.verify().is_err() {
                hit_body = true;
                break;
            }
        }
    }
    assert!(hit_body, "no probed offset landed in a segment body");

    let (result, m) = run(&wh, DegradedMode::Failover).unwrap();
    assert_eq!(result, ground_truth());
    assert!(m.checksum_failures >= 1);
    assert!(m.failovers >= 1);

    wh.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------- soak
// Run explicitly; CI smokes it in release.

/// ≥16 seeded disk-fault cases, every one required to agree bit-for-bit
/// with the centralized answer under failover. The victim set and fault
/// kind derive from the seed, so the matrix is reproducible seed by
/// seed; victims are never ring-adjacent, so every partition keeps one
/// live replica.
#[test]
#[ignore = "soak: run with --ignored (CI runs it in release as a smoke)"]
fn soak_seeded_disk_fault_matrix() {
    let truth = ground_truth();
    let started = std::time::Instant::now();
    let mut total_failures = 0u64;
    for seed in 0..16u64 {
        let first = (seed % 4) as usize;
        let victims: Vec<usize> = if seed % 3 == 0 {
            vec![first, (first + 2) % 4]
        } else {
            vec![first]
        };
        let kind = if seed % 2 == 0 {
            FaultKind::Bitflip
        } else {
            FaultKind::ShortRead
        };
        let (result, m) = run_with_victims("soak", &victims, kind);
        assert_eq!(result, truth, "seed {seed} victims {victims:?}");
        assert_eq!(m.parts_lost, 0, "seed {seed}");
        assert!(m.checksum_failures > 0, "seed {seed}: nothing injected");
        total_failures += m.checksum_failures;
    }
    assert!(total_failures >= 16);
    assert!(
        started.elapsed() < Duration::from_secs(300),
        "soak exceeded its time bound: {:?}",
        started.elapsed()
    );
}
