//! Edge cases of distributed evaluation: excluded sites, empty relations,
//! NULL group keys, multiple detail relations, and one-group queries.

use std::collections::HashMap;
use std::sync::Arc;

use skalla::prelude::*;

fn schema_gv() -> Arc<Schema> {
    Schema::from_pairs([("g", DataType::Int64), ("v", DataType::Int64)])
        .unwrap()
        .into_arc()
}

fn catalogs_for(parts: &[Table], name: &str) -> Vec<Catalog> {
    parts
        .iter()
        .map(|p| {
            let mut c = Catalog::new();
            c.register(name, p.clone());
            c
        })
        .collect()
}

/// θ's detail-only conjunct is unsatisfiable at every site: the coordinator
/// filter excludes all sites from the round, and every group keeps identity
/// aggregates.
#[test]
fn all_sites_excluded_by_filters() {
    let rows: Vec<Vec<Value>> = (0..100)
        .map(|i| vec![Value::Int(i % 5), Value::Int(i % 50)])
        .collect();
    let table = Table::from_rows(schema_gv(), &rows).unwrap();
    let parts = partition_by_hash(&table, 0, 3).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);

    // v is never > 1000; with per-site value constraints on g the analysis
    // alone can't prove that, so constrain on v too via ranges.
    let mut range_parts = parts.clone();
    range_parts.partition_col = Some(1);
    let dist_v = DistributionInfo::from_partitioning(&range_parts);

    let md = GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("c"),
            AggSpec::sum(Expr::detail(1), "s").unwrap(),
        ],
        Expr::base(0)
            .eq(Expr::detail(0))
            .and(Expr::detail(1).gt(Expr::lit(1000))),
    )]);
    let query = GmdjExpr::new(
        BaseSpec::DistinctProject { cols: vec![0] },
        "t",
        vec![md],
        vec![0],
    )
    .unwrap();

    let mut full = Catalog::new();
    full.register("t", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();
    // Sanity: every group exists with COUNT 0 / SUM NULL.
    assert_eq!(expected.len(), 5);
    for r in expected.rows() {
        assert_eq!(r[1], Value::Int(0));
        assert_eq!(r[2], Value::Null);
    }

    let wh =
        DistributedWarehouse::launch(catalogs_for(&parts.parts, "t"), CostModel::free()).unwrap();
    for dist in [&dist, &dist_v] {
        let flags = OptFlags {
            coord_group_reduction: true,
            ..OptFlags::none()
        };
        let (plan, _) = plan_query(&query, dist, flags).unwrap();
        let (result, metrics) = wh.execute(&plan).unwrap();
        assert_eq!(result.sorted(), expected);
        let _ = metrics;
    }
    // With the v-anchored constraints the filters are all-FALSE and no site
    // participates in the evaluation round at all.
    let flags = OptFlags {
        coord_group_reduction: true,
        ..OptFlags::none()
    };
    let (plan, report) = plan_query(&query, &dist_v, flags).unwrap();
    assert!(!report.coord_filters.is_empty());
    let (result, metrics) = wh.execute(&plan).unwrap();
    assert_eq!(result.sorted(), expected);
    // Round 1 shipped zero rows down.
    let round1 = metrics
        .rounds
        .iter()
        .find(|r| r.label == "round 1")
        .unwrap();
    assert_eq!(round1.rows_down, 0);
    assert_eq!(round1.sites, 0);
    wh.shutdown().unwrap();
}

/// A completely empty fact relation still yields an empty (not failing)
/// result.
#[test]
fn fully_empty_detail_relation() {
    let empty = Table::empty(schema_gv());
    let parts = vec![empty.clone(), empty.clone()];
    let md = GmdjOp::new(vec![GmdjBlock::new(
        vec![AggSpec::count_star("c")],
        Expr::base(0).eq(Expr::detail(0)),
    )]);
    let query = GmdjExpr::new(
        BaseSpec::DistinctProject { cols: vec![0] },
        "t",
        vec![md],
        vec![0],
    )
    .unwrap();
    let wh = DistributedWarehouse::launch(catalogs_for(&parts, "t"), CostModel::free()).unwrap();
    for flags in [OptFlags::none(), OptFlags::all()] {
        let dist = DistributionInfo::unknown(2);
        let (plan, _) = plan_query(&query, &dist, flags).unwrap();
        let (result, _) = wh.execute(&plan).unwrap();
        assert!(result.is_empty(), "flags {flags:?}");
    }
    wh.shutdown().unwrap();
}

/// NULL values in group keys: NULL groups form (distinct keeps one NULL),
/// equality never matches them, counts are zero.
#[test]
fn null_group_keys() {
    let rows = vec![
        vec![Value::Int(1), Value::Int(10)],
        vec![Value::Null, Value::Int(20)],
        vec![Value::Null, Value::Int(30)],
        vec![Value::Int(1), Value::Int(40)],
    ];
    let table = Table::from_rows(schema_gv(), &rows).unwrap();
    let md = GmdjOp::new(vec![GmdjBlock::new(
        vec![
            AggSpec::count_star("c"),
            AggSpec::sum(Expr::detail(1), "s").unwrap(),
        ],
        Expr::base(0).eq(Expr::detail(0)),
    )]);
    let query = GmdjExpr::new(
        BaseSpec::DistinctProject { cols: vec![0] },
        "t",
        vec![md],
        vec![0],
    )
    .unwrap();

    let mut full = Catalog::new();
    full.register("t", table.clone());
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();
    assert_eq!(expected.len(), 2); // groups: NULL and 1
    let null_row = expected.rows().iter().find(|r| r[0].is_null()).unwrap();
    assert_eq!(null_row[1], Value::Int(0)); // NULL = NULL is not TRUE
    assert_eq!(null_row[2], Value::Null);

    // Distributed (split so the NULL rows land on both sites).
    let idx: Vec<u32> = (0..table.len() as u32).collect();
    let (a, b) = idx.split_at(2);
    let parts = vec![table.take(a), table.take(b)];
    let wh = DistributedWarehouse::launch(catalogs_for(&parts, "t"), CostModel::free()).unwrap();
    let (result, _) = wh.execute(&DistPlan::unoptimized(query)).unwrap();
    assert_eq!(result.sorted(), expected);
    wh.shutdown().unwrap();
}

/// A query whose rounds read *different* detail relations (the paper notes
/// the detail relation may change between rounds).
#[test]
fn per_round_detail_relations() {
    let flows = Table::from_rows(
        schema_gv(),
        &(0..60)
            .map(|i| vec![Value::Int(i % 4), Value::Int(i)])
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let alerts_schema = Schema::from_pairs([("g", DataType::Int64), ("sev", DataType::Int64)])
        .unwrap()
        .into_arc();
    let alerts = Table::from_rows(
        alerts_schema,
        &(0..20)
            .map(|i| vec![Value::Int(i % 4), Value::Int(i % 3)])
            .collect::<Vec<_>>(),
    )
    .unwrap();

    // MD1 over flows (default), MD2 over alerts.
    let md1 = GmdjOp::new(vec![GmdjBlock::new(
        vec![AggSpec::count_star("flows")],
        Expr::base(0).eq(Expr::detail(0)),
    )]);
    let md2 = GmdjOp::with_detail(
        vec![GmdjBlock::new(
            vec![AggSpec::count_star("alerts")],
            Expr::base(0)
                .eq(Expr::detail(0))
                .and(Expr::detail(1).ge(Expr::lit(2))),
        )],
        "alerts",
    );
    let query = GmdjExpr::new(
        BaseSpec::DistinctProject { cols: vec![0] },
        "flows",
        vec![md1, md2],
        vec![0],
    )
    .unwrap();

    let mut full = Catalog::new();
    full.register("flows", flows.clone());
    full.register("alerts", alerts.clone());
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();

    let fparts = partition_by_hash(&flows, 0, 2).unwrap();
    let aparts = partition_by_hash(&alerts, 0, 2).unwrap();
    let catalogs: Vec<Catalog> = (0..2)
        .map(|i| {
            let mut c = Catalog::new();
            c.register("flows", fparts.parts[i].clone());
            c.register("alerts", aparts.parts[i].clone());
            c
        })
        .collect();
    let wh = DistributedWarehouse::launch(catalogs, CostModel::free()).unwrap();
    let (result, _) = wh.execute(&DistPlan::unoptimized(query.clone())).unwrap();
    assert_eq!(result.sorted(), expected);

    // The ship-all baseline must fetch *both* tables.
    let (ship, _) = wh.execute_ship_all(&query).unwrap();
    assert_eq!(ship.sorted(), expected);
    wh.shutdown().unwrap();
}

/// A hand-built plan with a local run whose first round's filters would
/// exclude groups that the *second* operator still needs: the executor must
/// combine filters across the run (OR) — with one round unfiltered, no
/// filtering at all — rather than starve later operators.
#[test]
fn local_run_filters_cannot_starve_later_operators() {
    let rows: Vec<Vec<Value>> = (0..60)
        .map(|i| vec![Value::Int(i % 4), Value::Int(i)])
        .collect();
    let table = Table::from_rows(schema_gv(), &rows).unwrap();
    let parts = partition_by_hash(&table, 0, 2).unwrap();

    // op0's θ never matches (v < 0 is impossible); op1 counts everything.
    let md0 = GmdjOp::new(vec![GmdjBlock::new(
        vec![AggSpec::count_star("never")],
        Expr::base(0)
            .eq(Expr::detail(0))
            .and(Expr::detail(1).lt(Expr::lit(0))),
    )]);
    let md1 = GmdjOp::new(vec![GmdjBlock::new(
        vec![AggSpec::count_star("all")],
        Expr::base(0).eq(Expr::detail(0)),
    )]);
    let query = GmdjExpr::new(
        BaseSpec::DistinctProject { cols: vec![0] },
        "t",
        vec![md0, md1],
        vec![0],
    )
    .unwrap();

    let mut full = Catalog::new();
    full.register("t", table);
    let expected = eval_expr_centralized(&query, &full).unwrap().sorted();
    assert!(expected.rows().iter().all(|r| r[2].as_int().unwrap() > 0));

    // Adversarial plan: round 0 is local-only with all-FALSE coordinator
    // filters (op0 indeed matches nothing); round 1 has no filters.
    let mut plan = DistPlan::unoptimized(query);
    plan.rounds[0].local_only = true;
    plan.rounds[0].coord_filters = Some(vec![Expr::lit(false); 2]);

    let wh =
        DistributedWarehouse::launch(catalogs_for(&parts.parts, "t"), CostModel::free()).unwrap();
    let (result, _) = wh.execute(&plan).unwrap();
    wh.shutdown().unwrap();
    assert_eq!(
        result.sorted(),
        expected,
        "later operators must still see every group"
    );
}

/// Intra-site parallel scans produce identical results through the whole
/// distributed stack.
#[test]
fn site_parallelism_is_transparent() {
    let rows: Vec<Vec<Value>> = (0..12_000)
        .map(|i| vec![Value::Int(i % 10), Value::Int(i % 100)])
        .collect();
    let table = Table::from_rows(schema_gv(), &rows).unwrap();
    let parts = partition_by_hash(&table, 0, 2).unwrap();
    let schemas = HashMap::from([("t".to_string(), schema_gv())]);
    let query = parse_query(
        "BASE DISTINCT g FROM t;
         MD COUNT(*) AS c, SUM(v) AS s WHERE b.g = r.g;
         MD COUNT(*) AS hi WHERE b.g = r.g AND r.v * b.c > b.s;",
        &schemas,
    )
    .unwrap();
    let wh =
        DistributedWarehouse::launch(catalogs_for(&parts.parts, "t"), CostModel::free()).unwrap();
    let serial = wh.execute(&DistPlan::unoptimized(query.clone())).unwrap().0;
    let parallel = wh
        .execute(&DistPlan::unoptimized(query).with_site_parallelism(4))
        .unwrap()
        .0;
    assert_eq!(serial.sorted(), parallel.sorted());
    wh.shutdown().unwrap();
}

/// Single-group degenerate case: grouping on a constant-valued column.
#[test]
fn single_group_query() {
    let rows: Vec<Vec<Value>> = (0..40)
        .map(|i| vec![Value::Int(7), Value::Int(i)])
        .collect();
    let table = Table::from_rows(schema_gv(), &rows).unwrap();
    let parts = partition_by_hash(&table, 0, 3).unwrap();
    let schemas = HashMap::from([("t".to_string(), schema_gv())]);
    let query = parse_query(
        "BASE DISTINCT g FROM t;
         MD COUNT(*) AS c, MIN(v) AS mn, MAX(v) AS mx WHERE b.g = r.g;",
        &schemas,
    )
    .unwrap();
    let wh =
        DistributedWarehouse::launch(catalogs_for(&parts.parts, "t"), CostModel::free()).unwrap();
    let dist = DistributionInfo::from_partitioning(&parts);
    let (plan, _) = plan_query(&query, &dist, OptFlags::all()).unwrap();
    let (result, _) = wh.execute(&plan).unwrap();
    assert_eq!(result.len(), 1);
    assert_eq!(
        result.row(0),
        &vec![Value::Int(7), Value::Int(40), Value::Int(0), Value::Int(39)]
    );
    wh.shutdown().unwrap();
}
