//! Differential property tests for the compiled kernel path.
//!
//! The vectorized kernels of `skalla_expr::compile` must agree with the
//! row-at-a-time interpreter *bit for bit* — including NULL propagation,
//! SQL three-valued logic, and `-0.0`/overflow edge cases — on arbitrary
//! expressions and data. Lanes the compiler flags as deferred errors are
//! exempt (production resolves them by re-running the interpreter), but a
//! non-error lane must match the interpreter exactly, and the whole-GMDJ
//! differential below requires the compiled evaluator and the interpreter
//! to return identical relations (or both to fail), mirroring the existing
//! `nested_loop_agrees_with_hash` test.

use proptest::prelude::*;

use skalla::expr::{eval, CompiledPred, CompiledScalar, Expr, ScalarLanes};
use skalla::gmdj::{eval_gmdj_full, EvalOptions};
use skalla::prelude::*;

fn detail_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([
        ("g", DataType::Int64),
        ("v", DataType::Int64),
        ("f", DataType::Float64),
        ("s", DataType::Utf8),
        ("b", DataType::Bool),
    ])
    .unwrap()
    .into_arc()
}

fn base_schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int64), ("w", DataType::Float64)])
        .unwrap()
        .into_arc()
}

type RowTuple = (i64, Option<i64>, Option<f64>, String, Option<bool>);

/// Detail rows with NULLs in every nullable column and float edge values.
fn arb_rows() -> impl Strategy<Value = Vec<RowTuple>> {
    prop::collection::vec(
        (
            -3i64..3,
            prop::option::of(-100i64..100),
            prop::option::of(prop_oneof![-100.0f64..100.0, Just(0.0f64), Just(-0.0f64),]),
            "[ab]{0,2}",
            prop::option::of(any::<bool>()),
        ),
        1..40,
    )
}

fn build_table(rows: &[RowTuple]) -> Table {
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(g, v, f, s, b)| {
            vec![
                Value::Int(*g),
                v.map_or(Value::Null, Value::Int),
                f.map_or(Value::Null, Value::Float),
                Value::str(s.as_str()),
                b.map_or(Value::Null, Value::Bool),
            ]
        })
        .collect();
    Table::from_rows(detail_schema(), &data).unwrap()
}

fn arb_base_row() -> impl Strategy<Value = Vec<Value>> {
    (prop::option::of(-5i64..5), prop::option::of(-10.0f64..10.0)).prop_map(|(k, w)| {
        vec![
            k.map_or(Value::Null, Value::Int),
            w.map_or(Value::Null, Value::Float),
        ]
    })
}

/// Arbitrary expressions over the detail schema (cols 0..5), the two base
/// columns, and literals of every type including NULL. Many draws are
/// ill-typed on purpose: the compiler must either refuse them or defer to
/// the interpreter, never silently diverge.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::lit),
        (-4.0f64..4.0).prop_map(Expr::lit),
        any::<bool>().prop_map(Expr::lit),
        Just(Expr::Lit(Value::Null)),
        "[ab]{0,2}".prop_map(|s| Expr::lit(s.as_str())),
        (0usize..5).prop_map(Expr::detail),
        (0usize..2).prop_map(Expr::base),
    ];
    leaf.prop_recursive(3, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..11).prop_map(|(a, b, k)| match k {
                0 => a.add(b),
                1 => a.sub(b),
                2 => a.mul(b),
                3 => a.div(b),
                4 => a.rem(b),
                5 => a.eq(b),
                6 => a.ne(b),
                7 => a.lt(b),
                8 => a.le(b),
                9 => a.gt(b),
                _ => a.ge(b),
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
            inner.clone().prop_map(|a| a.neg()),
            inner.clone().prop_map(|a| a.is_null()),
            (inner, prop::collection::vec(-5i64..5, 1..4))
                .prop_map(|(a, vs)| a.in_set(vs.into_iter().map(Value::Int))),
        ]
    })
}

/// Detail-only scalar expressions, used as aggregate arguments.
fn arb_agg_arg() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::lit),
        (-4.0f64..4.0).prop_map(Expr::lit),
        Just(Expr::detail(1)),
        Just(Expr::detail(2)),
    ];
    leaf.prop_recursive(2, 16, 2, |inner| {
        (inner.clone(), inner, 0usize..4).prop_map(|(a, b, k)| match k {
            0 => a.add(b),
            1 => a.sub(b),
            2 => a.mul(b),
            _ => a.div(b),
        })
    })
}

/// Assert that every non-error lane matches the interpreter exactly.
/// Error lanes are the compiler's explicit "ask the interpreter" signal,
/// so they carry no agreement obligation.
fn assert_scalar_lanes_agree(expr: &Expr, base_row: &[Value], table: &Table, lanes: &ScalarLanes) {
    assert_eq!(lanes.len(), table.len());
    for i in 0..table.len() {
        if lanes.is_err(i) {
            continue;
        }
        let row = table.row(i);
        let got = eval(expr, base_row, &row)
            .unwrap_or_else(|e| panic!("interpreter errored on non-error lane {i}: {e}"));
        if lanes.is_null(i) {
            assert_eq!(got, Value::Null, "lane {i} null mismatch for {expr}");
            continue;
        }
        match (lanes, &got) {
            (ScalarLanes::I64(l), Value::Int(v)) => assert_eq!(l.vals[i], *v, "lane {i}: {expr}"),
            (ScalarLanes::F64(l), Value::Float(v)) => assert_eq!(
                l.vals[i].to_bits(),
                v.to_bits(),
                "lane {i} not bit-identical for {expr}"
            ),
            (ScalarLanes::Str(l), Value::Str(v)) => {
                assert_eq!(&l.vals[i], v, "lane {i}: {expr}")
            }
            (ScalarLanes::Bool(l), Value::Bool(v)) => assert_eq!(l.vals[i], *v, "lane {i}: {expr}"),
            (_, other) => panic!("lane type mismatch for {expr}: interpreter produced {other}"),
        }
    }
}

proptest! {
    /// Compiled predicates agree with the interpreter on every non-error
    /// lane: same definite boolean, same NULLs (three-valued logic).
    #[test]
    fn compiled_pred_agrees_with_interpreter(
        rows in arb_rows(),
        base_row in arb_base_row(),
        expr in arb_expr(),
    ) {
        let table = build_table(&rows);
        if let Some(pred) = CompiledPred::compile(&expr, &base_schema(), &detail_schema()) {
            let batch = table.batch(0, table.len());
            let lanes = pred.eval_batch(&base_row, &batch);
            prop_assert_eq!(lanes.vals.len(), table.len());
            for i in 0..table.len() {
                if lanes.errs[i] {
                    continue;
                }
                let row = table.row(i);
                let got = eval(&expr, &base_row, &row)
                    .unwrap_or_else(|e| panic!("interpreter errored on non-error lane {i}: {e}"));
                if lanes.nulls[i] {
                    prop_assert_eq!(got, Value::Null, "lane {} of {}", i, &expr);
                } else {
                    prop_assert_eq!(got, Value::Bool(lanes.vals[i]), "lane {} of {}", i, &expr);
                }
            }
        }
    }

    /// Compiled scalar kernels agree with the interpreter bit-for-bit
    /// (floats compared by bit pattern, so `-0.0` vs `0.0` and NaN payloads
    /// count as differences).
    #[test]
    fn compiled_scalar_agrees_with_interpreter(
        rows in arb_rows(),
        base_row in arb_base_row(),
        expr in arb_expr(),
    ) {
        let table = build_table(&rows);
        if let Some(scalar) = CompiledScalar::compile(&expr, &base_schema(), &detail_schema()) {
            let batch = table.batch(0, table.len());
            let lanes = scalar.eval_batch(&base_row, &batch);
            assert_scalar_lanes_agree(&expr, &base_row, &table, &lanes);
        }
    }

    /// Whole-GMDJ differential: evaluating with the compiled path enabled
    /// and disabled yields identical results — or both paths fail. This is
    /// the end-to-end guarantee the per-kernel tests build toward.
    #[test]
    fn gmdj_compiled_agrees_with_interpreter(
        rows in arb_rows(),
        theta in arb_expr(),
        arg in arb_agg_arg(),
        func_pick in 0usize..5,
    ) {
        let table = build_table(&rows);
        let base = table.distinct_project(&[0]).unwrap();
        let agg = match func_pick {
            0 => AggSpec::sum(arg, "a").unwrap(),
            1 => AggSpec::avg(arg, "a").unwrap(),
            2 => AggSpec::min(arg, "a").unwrap(),
            3 => AggSpec::max(arg, "a").unwrap(),
            _ => AggSpec::count_star("a"),
        };
        // θ references base column 0 (the group key) plus arbitrary
        // structure; base column 1 does not exist here, so clamp it away.
        let theta = Expr::base(0).eq(Expr::detail(0)).or(theta);
        let op = GmdjOp::new(vec![GmdjBlock::new(
            vec![AggSpec::count_star("c"), agg],
            theta,
        )]);
        let schema = detail_schema();
        let compiled = eval_gmdj_full(&base, &table, &schema, &op, &EvalOptions::default());
        let interpreted = eval_gmdj_full(
            &base,
            &table,
            &schema,
            &op,
            &EvalOptions { compiled: false, ..Default::default() },
        );
        match (compiled, interpreted) {
            (Ok((a, _)), Ok((b, _))) => prop_assert_eq!(a.sorted(), b.sorted()),
            (Err(_), Err(_)) => {} // both reject (e.g. ill-typed θ): agreement
            (a, b) => panic!(
                "compiled and interpreted paths disagree on outcome: {:?} vs {:?}",
                a.map(|(r, _)| r),
                b.map(|(r, _)| r),
            ),
        }
    }
}
